//! X-family fixture: helpers reachable from the exec-scheduler roots
//! must not iterate unordered maps or capture shared mutable state.

use std::cell::RefCell;
use std::collections::HashMap;

pub struct Sched {
    busy: Vec<u64>,
}

impl Sched {
    pub fn run(&self) -> u64 {
        self.pick() + self.tally() + self.sanctioned()
    }

    fn pick(&self) -> u64 {
        let m: HashMap<u32, u64> = HashMap::new();
        m.values().sum::<u64>()
    }

    fn tally(&self) -> u64 {
        let c = RefCell::new(self.busy.len() as u64);
        let v = *c.borrow();
        v
    }

    fn sanctioned(&self) -> u64 {
        // detlint::allow(X001): fixture shows a justified unordered map (drained, never iterated)
        let m: HashMap<u32, u64> = HashMap::new();
        m.len() as u64
    }
}

pub fn unreachable_helper() -> usize {
    let m: HashMap<u32, u64> = HashMap::new();
    m.len()
}
