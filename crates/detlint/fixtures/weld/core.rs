//! W-family fixture: a "protocol" file inside the weld scope. Direct
//! IO touches (W001), transitive reaches (W002), module imports
//! (W003), and one governed suppression each.

use std::time::Instant;

pub fn read_clock() -> Instant {
    Instant::now()
}

pub fn caller_of_clock() -> u64 {
    let t = read_clock();
    t.elapsed().as_nanos() as u64
}

pub fn sanctioned_weld() {
    // detlint::allow(W001): fixture demonstrates a governed direct weld
    std::thread::sleep(std::time::Duration::from_millis(1));
}

// detlint::allow(W002): fixture demonstrates a governed transitive weld
pub fn sanctioned_caller() -> u64 {
    caller_of_clock()
}

pub fn pure_helper(x: u64) -> u64 {
    x.wrapping_mul(31)
}
