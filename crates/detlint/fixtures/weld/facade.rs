//! The sanctioned facade: the one place the weld scope may touch the
//! host environment. W rules never fire here.

use std::time::Instant;

pub fn now() -> Instant {
    Instant::now()
}

pub fn sleep_ms(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}
