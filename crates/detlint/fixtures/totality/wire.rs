//! T-family fixture: one designated wire enum with a healthy variant,
//! a dead variant, an untested variant, a wildcard handler arm, and a
//! governed suppression for each failure mode.

pub enum Payload {
    Ping,
    Pong,
    Gap,
    // detlint::allow(T001): reserved for the v2 wire format; nothing constructs it yet
    // detlint::allow(T003): reserved for the v2 wire format; untestable until constructed
    Reserved,
}

pub fn make_ping() -> Payload {
    Payload::Ping
}

pub fn make_gap() -> Payload {
    Payload::Gap
}

pub fn on_deliver(p: Payload) -> u32 {
    match p {
        Payload::Ping => 1,
        Payload::Gap => 2,
        _ => 0,
    }
}

pub fn on_direct(p: Payload) -> u32 {
    match p {
        Payload::Ping => 1,
        // detlint::allow(T002): fixture shows the governed catch-all escape hatch
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_roundtrips() {
        assert_eq!(on_deliver(Payload::Ping), 1);
    }
}
