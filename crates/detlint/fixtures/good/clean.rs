//! Fixture: idiomatic sim+protocol code that must produce zero
//! findings and zero directives.

use std::collections::BTreeMap;

fn on_message(input: Option<u32>, anomalies: &mut u64) -> Option<u32> {
    let Some(v) = input else {
        *anomalies += 1;
        return None;
    };
    Some(v + 1)
}

fn decode_word(buf: &[u8]) -> Option<u64> {
    let mut words = buf.chunks_exact(8).map(|c| {
        let mut w = [0u8; 8];
        w.copy_from_slice(c);
        u64::from_le_bytes(w)
    });
    words.next()
}

fn ordered() -> BTreeMap<u32, u64> {
    BTreeMap::new()
}

fn fast() -> FastHashMap<u32, u64> {
    FastHashMap::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_assert() {
        assert_eq!(on_message(Some(1), &mut 0).unwrap(), 2);
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
