//! Fixture: every way a suppression directive can go wrong. Scanned
//! with a sim role; the golden pins the expected (line, rule) pairs.

// detlint::allow(D001)
use std::time::Instant;

// detlint::allow(D404): no such rule exists
use std::time::SystemTime;

// detlint::allow(S002): S rules govern directives and cannot be allowed
fn nothing_here() {}

// detlint::allow(D002): justified but nothing on the next line draws entropy
fn quiet() -> u32 {
    7
}

// detlint::allow(D005):
fn empty_justification() {}

fn lively() -> u64 {
    // detlint::allow(D004): the justified-and-used happy path
    std::thread::sleep(Duration::from_millis(1));
    1
}
