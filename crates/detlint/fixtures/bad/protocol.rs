//! Fixture: one of every protocol-path panic hazard. Scanned with a
//! protocol role; the golden pins the expected (line, rule) pairs.

fn on_message(input: Option<u32>) -> u32 {
    input.unwrap()
}

fn on_deliver(input: Option<u32>) -> u32 {
    input.expect("always present")
}

fn on_timeout(state: u32) {
    if state > 3 {
        panic!("bad state");
    }
    match state {
        0 => {}
        _ => unreachable!(),
    }
}

fn decode_frame(buf: &[u8]) -> u32 {
    let len = buf[0];
    u32::from(buf[len as usize])
}

fn parse_header(buf: &[u8]) -> u16 {
    u16::from_le_bytes([buf[0], buf[1]])
}

fn checksum(buf: &[u8]) -> u8 {
    // Negative case: indexing outside a decode-named fn is not P004
    // (the fn name carries no decode marker).
    buf[0] ^ 0x5a
}

fn graceful_decode(buf: &[u8]) -> Option<u8> {
    // Negative case: `get` never panics, even inside a decode fn.
    buf.get(0).copied()
}
