//! Fixture: one of every determinism hazard. Scanned with a sim role;
//! the golden next to this file pins the expected (line, rule) pairs.

use std::time::Instant;
use std::time::SystemTime;
use std::collections::HashMap;
use std::collections::HashSet;

fn clock() -> u128 {
    Instant::now().elapsed().as_micros()
}

fn stamp() -> SystemTime {
    SystemTime::now()
}

fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn seeded() -> u64 {
    // Negative case: seed-derived randomness is the sanctioned pattern.
    let mut rng = StdRng::seed_from_u64(42);
    rng.gen()
}

fn mode() -> Option<String> {
    std::env::var("DYNASTAR_MODE").ok()
}

fn nap() {
    std::thread::sleep(Duration::from_millis(1));
}

fn counts() -> HashMap<u32, u64> {
    HashMap::new()
}

fn tags() -> HashSet<u64> {
    HashSet::new()
}

fn pinned() -> HashMap<u32, u64, BuildHasherDefault<FxHasher>> {
    // Negative case: an explicit hasher is deterministic.
    HashMap::with_hasher(BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hazards_in_test_code_are_fine() {
        // Negative case: rules skip test spans entirely.
        let t = Instant::now();
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(0, 0);
        assert!(t.elapsed().as_nanos() < u128::MAX && m.len() == 1);
    }
}
