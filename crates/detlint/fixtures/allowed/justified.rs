//! Fixture: real hazards, each silenced by a well-formed justified
//! directive. Must scan clean — and deleting any single directive must
//! make the scan fail (pinned by the suppression-deletion test).

// detlint::allow-file(D001): this fixture stands in for a wall-clock deployment module

use std::time::Instant;

fn clock() -> u128 {
    Instant::now().elapsed().as_micros()
}

fn mode() -> Option<String> {
    // detlint::allow(D003): diagnostic gate only; never feeds protocol state
    std::env::var("FIXTURE_TRACE").ok()
}

fn on_deliver(input: Option<u32>) -> u32 {
    // detlint::allow(P002): constructor-time invariant, documented panic contract
    input.expect("caller checked")
}

fn branch(state: u32) {
    match state {
        0 => {}
        // detlint::allow(P003): dispatcher matches this variant before calling; a silent drop would lose a command
        _ => unreachable!("caller dispatches on state"),
    }
}
