//! P-reachability fixture: with `protocol_entries` configured, P rules
//! fire only inside functions reachable from an entry point, and a
//! suppression outside that cone is flagged stale (S002) with a
//! reachability note.

pub fn on_message(v: Option<u8>) -> u8 {
    reachable_helper(v)
}

fn reachable_helper(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn start_only(v: Option<u8>) -> u8 {
    // detlint::allow(P001): startup path may assume config is present
    v.unwrap()
}
