//! X rules — exec-scheduler determinism.
//!
//! The PR 8 worker-pool scheduler must produce bit-identical
//! schedules on every replica: its decisions feed the golden
//! delivered-command hashes. Helpers reachable from the scheduler
//! roots (see `scheduler_roots` in detlint.toml) therefore must not:
//!
//! * **X001** — name an unordered hash container
//!   (`HashMap`/`HashSet`/`FastHashMap`/`FastHashSet`). Even the
//!   deterministic-hasher variants order their iteration by hash, so
//!   a scheduler decision derived from iteration order couples the
//!   schedule to incidental key history; ordered structures
//!   (`Vec`/`VecDeque`/`BTreeMap`) keep the coupling visible.
//! * **X002** — use shared-mutability primitives (`RefCell`, `Cell`,
//!   `Mutex`, `RwLock`, `UnsafeCell`, atomics, `static mut`,
//!   `thread_local`). Scheduler state must flow through `&mut self`
//!   so the simulator's single-threaded replay and a future threaded
//!   backend execute the same decision sequence.

use crate::callgraph::{self, CallGraph};
use crate::config::Config;
use crate::engine::Finding;
use crate::parser::ident_at;
use crate::rules;
use crate::symbols::{SourceFile, SymbolTable};

pub fn run(
    files: &[SourceFile],
    syms: &SymbolTable,
    graph: &CallGraph,
    config: &Config,
    out: &mut Vec<Finding>,
) {
    // Roots: scheduler_roots specs resolved within scheduler_scope.
    let mut roots = Vec::new();
    for spec in &config.scheduler_roots {
        for id in syms.resolve_spec(spec) {
            let path = files[syms.fns[id].file].path.as_str();
            if config.in_scheduler_scope(path) {
                roots.push(id);
            }
        }
    }
    if roots.is_empty() {
        return;
    }
    let seen = callgraph::reachable(graph, &roots);

    for (f, _) in syms.fns.iter().zip(&seen).filter(|&(f, &s)| s && !f.item.is_test) {
        let file = &files[f.file];
        let tokens = &file.lexed.tokens;
        for i in f.item.body.clone() {
            let Some(id) = ident_at(tokens, i) else { continue };
            let line = tokens[i].line;
            match id {
                "HashMap" | "HashSet" | "FastHashMap" | "FastHashSet" => {
                    push(
                        out,
                        &file.path,
                        line,
                        "X001",
                        format!(
                            "unordered container `{id}` in scheduler-reachable fn `{}`",
                            f.item.name
                        ),
                    );
                }
                "RefCell" | "Cell" | "Mutex" | "RwLock" | "UnsafeCell" | "thread_local" => {
                    push(
                        out,
                        &file.path,
                        line,
                        "X002",
                        format!(
                            "shared-mutability primitive `{id}` in scheduler-reachable fn `{}`",
                            f.item.name
                        ),
                    );
                }
                _ if id.starts_with("Atomic") => {
                    push(
                        out,
                        &file.path,
                        line,
                        "X002",
                        format!("atomic `{id}` in scheduler-reachable fn `{}`", f.item.name),
                    );
                }
                "static" if ident_at(tokens, i + 1) == Some("mut") => {
                    push(
                        out,
                        &file.path,
                        line,
                        "X002",
                        format!("`static mut` in scheduler-reachable fn `{}`", f.item.name),
                    );
                }
                _ => {}
            }
        }
    }
}

fn push(out: &mut Vec<Finding>, path: &str, line: u32, rule: &'static str, message: String) {
    let info = rules::rule(rule).expect("known rule id");
    out.push(Finding { file: path.to_string(), line, rule: info.id, message, hint: info.hint });
}
