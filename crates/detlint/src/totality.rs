//! T rules — protocol totality over the designated wire enums.
//!
//! A wire variant nobody constructs is dead protocol surface; a
//! handler match with a wildcard arm silently swallows variants added
//! later; a variant no test ever mentions has an uncovered decode
//! path. With the symbol table these become checkable:
//!
//! * **T001** — a declared variant of a designated wire enum has no
//!   qualified `Enum::Variant` mention anywhere in non-test code.
//! * **T002** — a match over a designated enum inside a designated
//!   handler function has a catch-all arm (`_` or a lowercase binding)
//!   — new variants would vanish into it instead of failing the
//!   build. Justified wildcards carry a governed suppression.
//! * **T003** — a declared variant has no mention anywhere in test
//!   code (`#[test]`/`#[cfg(test)]` spans or test-tree files).
//!
//! Mentions are counted as qualified paths only (`Payload::Exec`);
//! glob-imported bare variant names are invisible, which this
//! workspace's style (no enum glob imports on protocol paths) makes
//! acceptable.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::engine::Finding;
use crate::lexer::Token;
use crate::parser::{ident_at, is_punct, match_braces};
use crate::rules;
use crate::symbols::{SourceFile, SymbolTable};

pub fn run(files: &[SourceFile], syms: &SymbolTable, config: &Config, out: &mut Vec<Finding>) {
    // Designated enums: name → (file, line-per-variant).
    let mut variants: BTreeMap<&str, BTreeMap<&str, (usize, u32)>> = BTreeMap::new();
    for (fi, e) in &syms.enums {
        if e.is_test || !config.wire_enums.iter().any(|w| w == &e.name) {
            continue;
        }
        let entry = variants.entry(e.name.as_str()).or_default();
        for v in &e.variants {
            entry.entry(v.name.as_str()).or_insert((*fi, v.line));
        }
    }
    if variants.is_empty() {
        return;
    }

    // Count qualified `Enum::Variant` mentions, split live/test.
    let mut live: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    let mut test: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for file in files {
        let tokens = &file.lexed.tokens;
        for i in 0..tokens.len() {
            let Some((e, v)) = qualified_variant(tokens, i, &variants) else { continue };
            let bucket = if file.in_test(tokens[i].line) { &mut test } else { &mut live };
            *bucket.entry((e, v)).or_insert(0) += 1;
        }
    }

    for (enum_name, vs) in &variants {
        for (variant, &(fi, line)) in vs {
            let path = &files[fi].path;
            if live.get(&(enum_name, variant)).copied().unwrap_or(0) == 0 {
                push(
                    out,
                    path,
                    line,
                    "T001",
                    format!("wire variant `{enum_name}::{variant}` is never constructed or matched outside tests"),
                );
            }
            if test.get(&(enum_name, variant)).copied().unwrap_or(0) == 0 {
                push(
                    out,
                    path,
                    line,
                    "T003",
                    format!("wire variant `{enum_name}::{variant}` has no test coverage (decode/roundtrip path untested)"),
                );
            }
        }
    }

    // T002: wildcard arms in designated-handler matches over these enums.
    for f in &syms.fns {
        if f.item.is_test || !config.handler_fns.iter().any(|h| h == &f.item.name) {
            continue;
        }
        let file = &files[f.file];
        scan_handler_matches(
            &file.lexed.tokens,
            f.item.body.clone(),
            &variants,
            &file.path,
            &f.item.name,
            out,
        );
    }
}

fn push(out: &mut Vec<Finding>, path: &str, line: u32, rule: &'static str, message: String) {
    let info = rules::rule(rule).expect("known rule id");
    out.push(Finding { file: path.to_string(), line, rule: info.id, message, hint: info.hint });
}

/// `Enum::Variant` at token `i` when `Enum` is designated and
/// `Variant` is one of its declared variants.
fn qualified_variant<'a>(
    tokens: &[Token],
    i: usize,
    variants: &BTreeMap<&'a str, BTreeMap<&'a str, (usize, u32)>>,
) -> Option<(&'a str, &'a str)> {
    let e = ident_at(tokens, i)?;
    let (&ename, vs) = variants.get_key_value(e)?;
    if !is_punct(tokens, i + 1, "::") {
        return None;
    }
    // Skip turbofish generics: `Entry::<u64>::Noop` names the same
    // variant as `Entry::Noop`.
    let mut j = i + 2;
    if is_punct(tokens, j, "<") {
        let mut depth = 1usize;
        j += 1;
        while depth > 0 {
            if is_punct(tokens, j, "<") {
                depth += 1;
            } else if is_punct(tokens, j, ">") {
                depth -= 1;
            } else if j >= tokens.len() {
                return None;
            }
            j += 1;
        }
        if !is_punct(tokens, j, "::") {
            return None;
        }
        j += 1;
    }
    let v = ident_at(tokens, j)?;
    let (&vname, _) = vs.get_key_value(v)?;
    Some((ename, vname))
}

/// Finds every `match` in `body`; when any arm pattern names a
/// designated variant, catch-all arms in that match are T002 findings.
fn scan_handler_matches(
    tokens: &[Token],
    body: std::ops::Range<usize>,
    variants: &BTreeMap<&str, BTreeMap<&str, (usize, u32)>>,
    path: &str,
    handler: &str,
    out: &mut Vec<Finding>,
) {
    for i in body.clone() {
        if ident_at(tokens, i) != Some("match") {
            continue;
        }
        // Find the match-body `{` past the scrutinee (tracking only
        // (), [] — a bare struct literal cannot appear here). A `;`
        // first means this wasn't a match expression after all.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut opened = false;
        while j < body.end {
            if let crate::lexer::TokKind::Punct(p) = &tokens[j].kind {
                match p.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        opened = true;
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if !opened || j >= body.end {
            continue;
        }
        let end = match_braces(tokens, j).saturating_sub(1).min(body.end);
        let arms = parse_arms(tokens, j + 1, end);
        let designated = arms
            .iter()
            .any(|a| a.clone().any(|k| qualified_variant(tokens, k, variants).is_some()));
        if !designated {
            continue;
        }
        for arm in &arms {
            let Some(line) = wildcard_arm(tokens, arm.clone()) else { continue };
            push(
                out,
                path,
                line,
                "T002",
                format!("catch-all arm in a wire-enum match inside handler `{handler}`"),
            );
        }
    }
}

/// Splits a match body token range into arm-pattern ranges.
fn parse_arms(tokens: &[Token], start: usize, end: usize) -> Vec<std::ops::Range<usize>> {
    let mut arms = Vec::new();
    let mut i = start;
    while i < end {
        // Pattern: up to `=>` at depth 0.
        let pat_start = i;
        let mut depth = 0i32;
        let mut found = false;
        while i < end {
            if let crate::lexer::TokKind::Punct(p) = &tokens[i].kind {
                match p.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 && is_punct(tokens, i + 1, ">") => {
                        found = true;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        if !found {
            break;
        }
        arms.push(pat_start..i);
        i += 2;
        // Arm body: a block (then optional comma) or an expression up
        // to a depth-0 comma.
        if is_punct(tokens, i, "{") {
            i = match_braces(tokens, i);
            if is_punct(tokens, i, ",") {
                i += 1;
            }
        } else {
            let mut depth = 0i32;
            while i < end {
                if let crate::lexer::TokKind::Punct(p) = &tokens[i].kind {
                    match p.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                i += 1;
            }
        }
    }
    arms
}

/// When the arm pattern is a catch-all (`_`, or a bare lowercase
/// binding — Rust's convention separates `Noop` variants from `other`
/// bindings by case), the line to report; `None` otherwise.
fn wildcard_arm(tokens: &[Token], pat: std::ops::Range<usize>) -> Option<u32> {
    let idx: Vec<usize> = pat.collect();
    // Allow `mut other` as well as `other` / `_`.
    let names: Vec<&str> = idx.iter().filter_map(|&k| ident_at(tokens, k)).collect();
    if names.len() != idx.len() {
        return None; // pattern has structure (paths, tuples, literals)
    }
    let names: Vec<&str> = names.into_iter().filter(|n| *n != "mut" && *n != "ref").collect();
    if names.len() != 1 {
        return None;
    }
    let n = names[0];
    let catch_all = n == "_" || n.chars().next().is_some_and(|c| c.is_lowercase());
    if catch_all {
        Some(tokens[idx[0]].line)
    } else {
        None
    }
}
