//! W rules — the IO-weld boundary.
//!
//! The sans-IO refactor (ROADMAP) requires the protocol crates to
//! reach wall clocks, sockets, threads, channels, and entropy only
//! through the `runtime` facade. These rules enumerate every place
//! that contract is currently broken — the *weld map* — so the
//! refactor has a work-list and CI has a ratchet:
//!
//! * **W001** — a function in the weld scope touches an IO primitive
//!   directly (clock types, entropy sources, thread spawning/sleeping,
//!   sockets, filesystem/process access, channel construction).
//! * **W002** — a function in the weld scope transitively reaches a
//!   welded function through the call graph (propagated to a
//!   fixpoint; calls into the facade crates never propagate).
//! * **W003** — a weld-scope file imports an IO module wholesale
//!   (`std::{net,fs,process,thread}`, `mpsc`, `crossbeam`, or
//!   `std::time::{Instant,SystemTime}`).
//!
//! Every W finding — suppressed or not — is also exported as a
//! [`Weld`] entry for `results/weld_map.json`.

use std::collections::VecDeque;

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::engine::Finding;
use crate::parser::{ident_at, is_punct};
use crate::rules;
use crate::symbols::{SourceFile, SymbolTable};

/// One weld-map entry: a W finding plus its owning function and the
/// primitives (or call path / import) behind it.
#[derive(Debug, Clone)]
pub struct Weld {
    pub fn_name: String,
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub primitives: Vec<String>,
    /// Filled in after suppression resolution.
    pub suppressed: bool,
}

/// Runs W001/W002/W003. Returns the welds; the corresponding findings
/// are appended to `out` for the suppression pipeline.
pub fn run(
    files: &[SourceFile],
    syms: &SymbolTable,
    graph: &CallGraph,
    config: &Config,
    out: &mut Vec<Finding>,
) -> Vec<Weld> {
    let mut welds = Vec::new();
    let in_scope = |fid: usize| {
        let path = files[syms.fns[fid].file].path.as_str();
        config.in_weld_scope(path) && !config.is_weld_facade(path) && !syms.fns[fid].item.is_test
    };

    // W001: direct primitive touches, per function.
    let mut direct = vec![false; syms.fns.len()];
    for (fid, d) in direct.iter_mut().enumerate() {
        if !in_scope(fid) {
            continue;
        }
        let f = &syms.fns[fid];
        let file = &files[f.file];
        let hits = primitives_in(&file.lexed.tokens, f.item.body.clone());
        if hits.is_empty() {
            continue;
        }
        *d = true;
        let line = hits[0].1;
        let mut names: Vec<String> = Vec::new();
        for (n, _) in &hits {
            if !names.contains(n) {
                names.push(n.clone());
            }
        }
        let qualified = qualified_name(&f.item.owner, &f.item.name);
        push_weld(
            out,
            &mut welds,
            &qualified,
            &file.path,
            line,
            "W001",
            format!("fn `{qualified}` touches IO primitives directly ({})", names.join(", ")),
            names,
        );
    }

    // W002: transitive reach, propagated caller-ward to a fixpoint
    // along *confident* edges only — an ambiguous shared name must
    // not smear a weld from the wall-clock deployment into the sim
    // path. `via[f]` records the callee that welded f, for the
    // message.
    let mut welded = direct.clone();
    let mut via: Vec<Option<usize>> = vec![None; syms.fns.len()];
    let mut queue: VecDeque<usize> = (0..syms.fns.len()).filter(|&f| direct[f]).collect();
    while let Some(f) = queue.pop_front() {
        for &caller in &graph.callers_sure[f] {
            if !welded[caller] && in_scope(caller) {
                welded[caller] = true;
                via[caller] = Some(f);
                queue.push_back(caller);
            }
        }
    }
    for (v, f) in via.iter().zip(&syms.fns) {
        let Some(callee) = *v else { continue };
        let file = &files[f.file];
        let qualified = qualified_name(&f.item.owner, &f.item.name);
        let callee_name = qualified_name(&syms.fns[callee].item.owner, &syms.fns[callee].item.name);
        push_weld(
            out,
            &mut welds,
            &qualified,
            &file.path,
            f.item.line,
            "W002",
            format!("fn `{qualified}` reaches an IO weld via `{callee_name}`"),
            vec![format!("via {callee_name}")],
        );
    }

    // W003: IO-module imports, per use item.
    for file in files {
        if !config.in_weld_scope(&file.path) || config.is_weld_facade(&file.path) {
            continue;
        }
        for u in &file.parsed.uses {
            if file.in_test(u.line) {
                continue;
            }
            let Some(module) = io_import(&u.idents) else { continue };
            push_weld(
                out,
                &mut welds,
                "(use)",
                &file.path,
                u.line,
                "W003",
                format!("IO-module import (`{module}`) in weld scope"),
                vec![module],
            );
        }
    }

    welds
}

#[allow(clippy::too_many_arguments)]
fn push_weld(
    out: &mut Vec<Finding>,
    welds: &mut Vec<Weld>,
    fn_name: &str,
    file: &str,
    line: u32,
    rule: &'static str,
    message: String,
    primitives: Vec<String>,
) {
    let info = rules::rule(rule).expect("known rule id");
    out.push(Finding { file: file.to_string(), line, rule: info.id, message, hint: info.hint });
    welds.push(Weld {
        fn_name: fn_name.to_string(),
        file: file.to_string(),
        line,
        rule: info.id,
        primitives,
        suppressed: false,
    });
}

fn qualified_name(owner: &Option<String>, name: &str) -> String {
    match owner {
        Some(o) => format!("{o}::{name}"),
        None => name.to_string(),
    }
}

/// IO primitives mentioned in a body token range, as `(name, line)`,
/// in token order.
fn primitives_in(
    tokens: &[crate::lexer::Token],
    body: std::ops::Range<usize>,
) -> Vec<(String, u32)> {
    let mut hits = Vec::new();
    for i in body {
        let Some(id) = ident_at(tokens, i) else { continue };
        let line = tokens[i].line;
        match id {
            "Instant" | "SystemTime" | "TcpStream" | "TcpListener" | "UdpSocket" | "thread_rng"
            | "OsRng" | "from_entropy" | "getrandom" => {
                hits.push((id.to_string(), line));
            }
            "thread" if is_punct(tokens, i + 1, "::") => {
                if let Some(m @ ("spawn" | "sleep" | "Builder")) = ident_at(tokens, i + 2) {
                    hits.push((format!("thread::{m}"), line));
                }
            }
            "fs" | "process" | "mpsc" if is_punct(tokens, i + 1, "::") => {
                hits.push((format!("{id}::*"), line));
            }
            "unbounded" | "bounded" if is_punct(tokens, i + 1, "(") => {
                hits.push((format!("{id}() channel"), line));
            }
            "spawn" if i > 0 && is_punct(tokens, i - 1, ".") && is_punct(tokens, i + 1, "(") => {
                hits.push((".spawn()".to_string(), line));
            }
            _ => {}
        }
    }
    hits
}

/// When a flattened `use` ident list names an IO module, the module it
/// names (for the message); `None` otherwise.
fn io_import(idents: &[String]) -> Option<String> {
    let has = |n: &str| idents.iter().any(|i| i == n);
    if has("std") {
        for m in ["net", "fs", "process", "thread"] {
            if has(m) {
                return Some(format!("std::{m}"));
            }
        }
        if has("time") && (has("Instant") || has("SystemTime")) {
            return Some("std::time::Instant".to_string());
        }
    }
    if has("mpsc") {
        return Some("mpsc".to_string());
    }
    if has("crossbeam") {
        return Some("crossbeam".to_string());
    }
    None
}
