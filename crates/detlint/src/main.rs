//! detlint CLI.
//!
//! ```text
//! cargo run -p detlint                   # full cross-file scan, exit 1 on findings
//! cargo run -p detlint -- --format json  # machine-readable, for CI
//! cargo run -p detlint -- --paths crates/core/src/server.rs   # fast per-file scan
//! cargo run -p detlint -- --changed-only                      # fast scan of git-dirty files
//! cargo run -p detlint -- --weld-map results/weld_map.json    # write the weld map
//! cargo run -p detlint -- --ratchet results/weld_map.json     # enforce the weld ceiling
//! cargo run -p detlint -- --list-rules
//! ```
//!
//! `--paths`/`--changed-only` run the *per-file* engine only: D rules
//! and directive governance, in milliseconds, without re-lexing the
//! workspace. Cross-file families (P reachability, W/T/X) need the
//! whole symbol table, so partial scans skip them and keep S002 quiet
//! about directives those families own — the full CI scan is the
//! authority.
//!
//! Exit codes: 0 clean, 1 diagnostics reported (or ratchet exceeded),
//! 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{
    collect_files, config::glob_match, engine::analyze_partial, find_workspace_root, load_config,
    parse_config, report, rules, scan_sources, Stats,
};

const USAGE: &str = "\
detlint — workspace determinism & protocol-hygiene analyzer

USAGE:
    detlint [--root <dir>] [--config <file>] [--format human|json]
            [--paths <glob>[,<glob>…]] [--changed-only]
            [--weld-map <out.json>] [--ratchet <baseline.json>]
            [--list-rules]

OPTIONS:
    --root <dir>        workspace root (default: nearest ancestor with [workspace])
    --config <file>     detlint config (default: <root>/detlint.toml if present)
    --format <fmt>      output format: human (default) or json
    --paths <globs>     fast per-file scan of matching files only (D + governance;
                        repeatable, comma-separated; cross-file families skipped)
    --changed-only      fast per-file scan of files reported dirty by git
    --weld-map <out>    write results-style weld-map JSON after a full scan
    --ratchet <file>    fail (exit 1) when the scan's weld count exceeds the
                        committed baseline's `count`
    --list-rules        print the rule catalog and exit
    --help              this text
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("detlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format = "human".to_string();
    let mut paths: Vec<String> = Vec::new();
    let mut changed_only = false;
    let mut weld_map_out: Option<PathBuf> = None;
    let mut ratchet: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(next_value(&mut args, "--root")?.into()),
            "--config" => config_path = Some(next_value(&mut args, "--config")?.into()),
            "--format" => format = next_value(&mut args, "--format")?,
            "--paths" => paths.extend(
                next_value(&mut args, "--paths")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty()),
            ),
            "--changed-only" => changed_only = true,
            "--weld-map" => weld_map_out = Some(next_value(&mut args, "--weld-map")?.into()),
            "--ratchet" => ratchet = Some(next_value(&mut args, "--ratchet")?.into()),
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{}  {}\n      fix: {}", r.id, r.title, r.hint);
                }
                return Ok(true);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if format != "human" && format != "json" {
        return Err(format!("--format must be human or json, got {format:?}"));
    }
    let partial = changed_only || !paths.is_empty();
    if partial && (weld_map_out.is_some() || ratchet.is_some()) {
        return Err("--weld-map/--ratchet need a full scan, not --paths/--changed-only".into());
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd).ok_or_else(|| {
                "no [workspace] Cargo.toml above the current directory; pass --root".to_string()
            })?
        }
    };

    let config = match config_path {
        Some(p) => {
            let text = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            parse_config(&text, detlint::Config::default()).map_err(|e| e.to_string())?
        }
        None => load_config(&root)?,
    };

    if changed_only {
        paths.extend(git_dirty_files(&root)?);
        if paths.is_empty() {
            println!("detlint: clean — no changed .rs files");
            return Ok(true);
        }
    }

    let (findings, stats, clean) = if partial {
        let mut findings = Vec::new();
        let mut stats = Stats::default();
        for rel in collect_files(&root, &config).map_err(|e| e.to_string())? {
            if !paths.iter().any(|p| glob_match(p, &rel) || rel.starts_with(p.as_str())) {
                continue;
            }
            let src = std::fs::read_to_string(root.join(&rel)).map_err(|e| e.to_string())?;
            let fr = analyze_partial(&rel, &src, &config);
            stats.files_scanned += 1;
            stats.suppressed += fr.suppressed;
            stats.directives += fr.directives;
            findings.extend(fr.findings);
        }
        let clean = findings.is_empty();
        (findings, stats, clean)
    } else {
        let mut sources = Vec::new();
        for rel in collect_files(&root, &config).map_err(|e| e.to_string())? {
            let src = std::fs::read_to_string(root.join(&rel)).map_err(|e| e.to_string())?;
            sources.push((rel, src));
        }
        let scan = scan_sources(&sources, &config);
        if let Some(out) = &weld_map_out {
            std::fs::write(out, report::render_weld_map(&scan.welds))
                .map_err(|e| format!("{}: {e}", out.display()))?;
        }
        let mut clean = scan.clean();
        if let Some(baseline) = &ratchet {
            let text = std::fs::read_to_string(baseline)
                .map_err(|e| format!("{}: {e}", baseline.display()))?;
            let ceiling = report::weld_map_count(&text)
                .ok_or_else(|| format!("{}: no \"count\" field", baseline.display()))?;
            if scan.welds.len() > ceiling {
                eprintln!(
                    "detlint: weld ratchet FAILED — {} welds exceed the committed ceiling of {} \
                     (regenerate {} only when a weld is deliberately added)",
                    scan.welds.len(),
                    ceiling,
                    baseline.display(),
                );
                clean = false;
            } else {
                println!(
                    "detlint: weld ratchet ok — {} weld(s) within ceiling {}",
                    scan.welds.len(),
                    ceiling
                );
            }
        }
        (scan.findings, scan.stats, clean)
    };

    let rendered = match format.as_str() {
        "json" => report::render_json(&findings, stats),
        _ => report::render_human(&findings, stats),
    };
    print!("{rendered}");
    Ok(clean)
}

/// `.rs` files git reports as dirty (staged or not) relative to HEAD.
fn git_dirty_files(root: &std::path::Path) -> Result<Vec<String>, String> {
    let out = std::process::Command::new("git")
        .args(["diff", "--name-only", "HEAD"])
        .current_dir(root)
        .output()
        .map_err(|e| format!("git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only HEAD failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| l.ends_with(".rs"))
        .map(|l| l.trim().to_string())
        .collect())
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
}
