//! detlint CLI.
//!
//! ```text
//! cargo run -p detlint                   # human table, exit 1 on findings
//! cargo run -p detlint -- --format json  # machine-readable, for CI
//! cargo run -p detlint -- --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics reported, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{find_workspace_root, load_config, parse_config, report, rules, scan_workspace};

const USAGE: &str = "\
detlint — workspace determinism & protocol-hygiene analyzer

USAGE:
    detlint [--root <dir>] [--config <file>] [--format human|json] [--list-rules]

OPTIONS:
    --root <dir>      workspace root (default: nearest ancestor with [workspace])
    --config <file>   detlint config (default: <root>/detlint.toml if present)
    --format <fmt>    output format: human (default) or json
    --list-rules      print the rule catalog and exit
    --help            this text
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("detlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format = "human".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(next_value(&mut args, "--root")?.into()),
            "--config" => config_path = Some(next_value(&mut args, "--config")?.into()),
            "--format" => format = next_value(&mut args, "--format")?,
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{}  {}\n      fix: {}", r.id, r.title, r.hint);
                }
                return Ok(true);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if format != "human" && format != "json" {
        return Err(format!("--format must be human or json, got {format:?}"));
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd).ok_or_else(|| {
                "no [workspace] Cargo.toml above the current directory; pass --root".to_string()
            })?
        }
    };

    let config = match config_path {
        Some(p) => {
            let text = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            parse_config(&text, detlint::Config::default()).map_err(|e| e.to_string())?
        }
        None => load_config(&root)?,
    };

    let scan = scan_workspace(&root, &config).map_err(|e| e.to_string())?;
    let rendered = match format.as_str() {
        "json" => report::render_json(&scan.findings, scan.stats),
        _ => report::render_human(&scan.findings, scan.stats),
    };
    print!("{rendered}");
    Ok(scan.clean())
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
}
