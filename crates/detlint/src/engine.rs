//! The rule engine: token-sequence matching plus suppression
//! bookkeeping for a single file.
//!
//! Per-file analysis is staged so the cross-file pipeline in
//! [`crate::scan_sources`] can interleave:
//!
//! 1. **Test spans** ([`crate::parser::test_spans`]). Items under
//!    `#[test]` / `#[cfg(test)]` are excluded wholesale — test-only
//!    nondeterminism cannot perturb a replica, and test assertions
//!    legitimately panic.
//! 2. **Raw findings** ([`raw_findings`]). D rules run when the file
//!    is simulation-facing, P rules when it is on a protocol path
//!    (per [`Config::role`]).
//! 3. **Finalize** ([`finalize`]). Cross-file findings (W/T/X, and
//!    reachability-filtered P) are merged in by the caller, then
//!    `// detlint::allow(RULE): why` directives are parsed (malformed
//!    ones become S001/S003 findings), applied (line directives cover
//!    their own line when trailing, else the next code line;
//!    `allow-file` covers the whole file), and audited — every
//!    directive must justify itself *and* be used, or it is itself a
//!    finding (S001/S002).
//!
//! [`analyze`] composes the stages for a standalone single-file scan
//! (no symbol table, so P rules fire everywhere and W/T/X not at
//! all) — the mode fixtures and `--paths` pre-commit runs use.

use crate::config::{Config, FileRole};
use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::parser::{self, ident_at, is_punct, Span};
use crate::rules;

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    pub hint: &'static str,
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed findings, in line order (includes S findings).
    pub findings: Vec<Finding>,
    /// How many findings valid directives suppressed.
    pub suppressed: usize,
    /// How many well-formed directives the file carries.
    pub directives: usize,
    /// The findings the directives suppressed (the weld map still
    /// lists justified welds).
    pub suppressed_findings: Vec<Finding>,
}

/// One parsed, well-formed suppression directive.
#[derive(Debug)]
struct Directive {
    line: u32,
    /// Rules this directive may suppress.
    ids: Vec<&'static str>,
    /// Whole-file scope (`detlint::allow-file`).
    file_scope: bool,
    /// Line findings must be on for line-scoped directives.
    target_line: u32,
    /// Per-id usage, parallel to `ids`.
    used: Vec<bool>,
}

/// Hooks the cross-file pipeline threads into [`finalize`].
pub(crate) struct FinalizeOpts<'a> {
    /// Whether an *unused* directive for this rule id should fire
    /// S002. Partial scans (`--paths`) cannot judge families they did
    /// not run, so they pass a narrower predicate.
    pub s002_check: &'a dyn Fn(&str) -> bool,
    /// Extra explanation appended to an S002 message, given the
    /// directive's target line and the unused rule id (the pipeline
    /// notes e.g. that a P rule cannot fire in an unreachable fn).
    pub s002_note: &'a dyn Fn(u32, &str) -> Option<String>,
}

pub(crate) const FULL_OPTS: FinalizeOpts<'static> =
    FinalizeOpts { s002_check: &|_| true, s002_note: &|_, _| None };

/// Analyzes one file's source standalone. `path` is
/// workspace-relative with `/` separators; it selects the rule
/// families via `config` and prefixes every finding.
pub fn analyze(path: &str, src: &str, config: &Config) -> FileReport {
    let lexed = lex(src);
    let test_spans = parser::test_spans(&lexed.tokens);
    let raw = raw_findings(path, &lexed, config.role(path), config, &test_spans);
    finalize(path, &lexed, &test_spans, raw, &FULL_OPTS)
}

/// Analyzes one file in fast pre-commit mode (`--paths` /
/// `--changed-only`): D rules and directive governance only. P rules
/// are reachability-filtered in full scans, so flagging them per-file
/// here would contradict CI; W/T/X need the symbol table outright.
/// S002 accordingly stays quiet about directives those families own.
pub fn analyze_partial(path: &str, src: &str, config: &Config) -> FileReport {
    let lexed = lex(src);
    let test_spans = parser::test_spans(&lexed.tokens);
    let role = FileRole { sim: config.role(path).sim, protocol: false };
    let raw = raw_findings(path, &lexed, role, config, &test_spans);
    let opts =
        FinalizeOpts { s002_check: &|id: &str| id.starts_with('D'), s002_note: &|_, _| None };
    finalize(path, &lexed, &test_spans, raw, &opts)
}

/// Stage 2: the per-file token rules (D/P), unsuppressed.
pub(crate) fn raw_findings(
    path: &str,
    lexed: &Lexed,
    role: FileRole,
    config: &Config,
    test_spans: &[Span],
) -> Vec<Finding> {
    let in_test = |line: u32| test_spans.iter().any(|s| s.contains(line));
    let mut raw = Vec::new();
    if role.sim || role.protocol {
        scan_rules(path, lexed, role, config, &in_test, &mut raw);
    }
    raw
}

/// Stage 3: suppression resolution over the merged finding set.
pub(crate) fn finalize(
    path: &str,
    lexed: &Lexed,
    test_spans: &[Span],
    mut raw: Vec<Finding>,
    opts: &FinalizeOpts<'_>,
) -> FileReport {
    let in_test = |line: u32| test_spans.iter().any(|s| s.contains(line));
    // Two path prefixes can both flag e.g. `std::env::var` (once as
    // `std::env`, once as `env::var`): collapse to one per (rule, line).
    raw.sort_by_key(|f: &Finding| (f.line, f.rule));
    raw.dedup_by_key(|f| (f.line, f.rule));

    let mut report = FileReport::default();
    let mut directives = parse_directives(path, lexed, &in_test, &mut report.findings);
    report.directives = directives.len();

    // Apply suppressions: prefer a precise line directive, fall back to
    // file scope.
    for f in raw {
        let mut hit = false;
        for d in directives.iter_mut() {
            let scope_ok = d.file_scope || d.target_line == f.line || d.line == f.line;
            if !scope_ok {
                continue;
            }
            if let Some(i) = d.ids.iter().position(|id| *id == f.rule) {
                d.used[i] = true;
                hit = true;
                break;
            }
        }
        if hit {
            report.suppressed += 1;
            report.suppressed_findings.push(f);
        } else {
            report.findings.push(f);
        }
    }

    // Unused directives are findings themselves.
    for d in &directives {
        for (i, id) in d.ids.iter().enumerate() {
            if d.used[i] || !(opts.s002_check)(id) {
                continue;
            }
            let target = if d.file_scope { d.line } else { d.target_line };
            let mut message = format!("directive allows {id} but suppresses nothing");
            if let Some(note) = (opts.s002_note)(target, id) {
                message.push_str(&format!(" ({note})"));
            }
            push(&mut report.findings, path, d.line, "S002", message);
        }
    }

    report.findings.sort_by_key(|f| (f.line, f.rule));
    report.suppressed_findings.sort_by_key(|f| (f.line, f.rule));
    report
}

fn push(out: &mut Vec<Finding>, path: &str, line: u32, rule: &'static str, message: String) {
    let info = rules::rule(rule).expect("known rule id");
    out.push(Finding { file: path.to_string(), line, rule: info.id, message, hint: info.hint });
}

// ---------------------------------------------------------------------------
// Rule scanning.
// ---------------------------------------------------------------------------

fn scan_rules(
    path: &str,
    lexed: &Lexed,
    role: FileRole,
    config: &Config,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let tokens = &lexed.tokens;
    let decode_spans = if role.protocol { decode_fn_spans(tokens, config) } else { Vec::new() };

    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if in_test(line) {
            continue;
        }
        if role.sim {
            if let Some(id) = ident_at(tokens, i) {
                match id {
                    "Instant" | "SystemTime" => {
                        push(out, path, line, "D001", format!("`{id}` is wall-clock time"));
                    }
                    "thread_rng" | "OsRng" | "from_entropy" | "getrandom" => {
                        push(out, path, line, "D002", format!("`{id}` draws OS entropy"));
                    }
                    "std"
                        if is_punct(tokens, i + 1, "::")
                            && ident_at(tokens, i + 2) == Some("env") =>
                    {
                        push(out, path, line, "D003", "`std::env` read".to_string());
                    }
                    "env"
                        if is_punct(tokens, i + 1, "::")
                            && matches!(
                                ident_at(tokens, i + 2),
                                Some("var" | "var_os" | "vars" | "vars_os" | "args" | "args_os")
                            ) =>
                    {
                        push(out, path, line, "D003", "`env::*` read".to_string());
                    }
                    "thread"
                        if is_punct(tokens, i + 1, "::")
                            && ident_at(tokens, i + 2) == Some("sleep") =>
                    {
                        push(
                            out,
                            path,
                            line,
                            "D004",
                            "`thread::sleep` blocks on wall time".to_string(),
                        );
                    }
                    "HashMap" | "HashSet" if !randomstate_exempt(tokens, i) => {
                        push(
                            out,
                            path,
                            line,
                            "D005",
                            format!("`{id}` with default `RandomState` (iteration order varies per process)"),
                        );
                    }
                    _ => {}
                }
            }
        }
        if role.protocol {
            if is_punct(tokens, i, ".") && is_punct(tokens, i + 2, "(") {
                match ident_at(tokens, i + 1) {
                    Some("unwrap") => {
                        push(
                            out,
                            path,
                            line,
                            "P001",
                            "`.unwrap()` can panic a replica".to_string(),
                        );
                    }
                    Some("expect") => {
                        push(
                            out,
                            path,
                            line,
                            "P002",
                            "`.expect()` can panic a replica".to_string(),
                        );
                    }
                    _ => {}
                }
            }
            if let Some(id @ ("panic" | "unreachable" | "todo" | "unimplemented")) =
                ident_at(tokens, i)
            {
                if is_punct(tokens, i + 1, "!") {
                    push(out, path, line, "P003", format!("`{id}!` aborts the replica"));
                }
            }
            // Index expression: `[` directly preceded by a value-ish
            // token, inside a decode fn. (`vec![…]` and `#[…]` are not
            // index expressions: their `[` follows `!` / `#`.)
            let prev_is_value = i > 0
                && match &tokens[i - 1].kind {
                    TokKind::Ident(_) => true,
                    TokKind::Punct(p) => p == ")" || p == "]",
                    _ => false,
                };
            if is_punct(tokens, i, "[")
                && prev_is_value
                && decode_spans.iter().any(|s| s.contains(line))
            {
                push(
                    out,
                    path,
                    line,
                    "P004",
                    "indexing in a decode fn panics on short/garbled input".to_string(),
                );
            }
        }
    }
}

/// True when a `HashMap`/`HashSet` mention at `i` explicitly names a
/// hasher: a `<…>` with a third (map) / second (set) generic argument,
/// or a `with_hasher`-family constructor.
fn randomstate_exempt(tokens: &[Token], i: usize) -> bool {
    let is_set = ident_at(tokens, i) == Some("HashSet");
    // `HashMap::with_hasher(…)` / `with_capacity_and_hasher`.
    if is_punct(tokens, i + 1, "::") {
        if let Some(name) = ident_at(tokens, i + 2) {
            if name.contains("hasher") {
                return true;
            }
        }
    }
    // `HashMap<K, V, S>` / turbofish `HashMap::<K, V, S>`: count
    // top-level commas in the angle list.
    let angle_open = if is_punct(tokens, i + 1, "<") {
        i + 2
    } else if is_punct(tokens, i + 1, "::") && is_punct(tokens, i + 2, "<") {
        i + 3
    } else {
        return false;
    };
    let mut depth = 1i32;
    let mut commas = 0usize;
    let mut j = angle_open;
    let mut guard = 0usize;
    while j < tokens.len() && depth > 0 && guard < 256 {
        if let TokKind::Punct(p) = &tokens[j].kind {
            match p.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "(" | "[" => depth += 1, // tuples/arrays nest commas too
                ")" | "]" => depth -= 1,
                "," if depth == 1 => commas += 1,
                ";" => return false, // statement boundary: not a generic list
                _ => {}
            }
        }
        j += 1;
        guard += 1;
    }
    commas >= if is_set { 1 } else { 2 }
}

/// Line spans of functions whose name marks them as on-wire decoders.
fn decode_fn_spans(tokens: &[Token], config: &Config) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if ident_at(tokens, i) == Some("fn") {
            if let Some(name) = ident_at(tokens, i + 1) {
                if config.is_decode_fn(name) {
                    let start = tokens[i].line;
                    let end = parser::skip_item(tokens, i + 2);
                    let end_line =
                        tokens.get(end.saturating_sub(1)).map(|t| t.line).unwrap_or(u32::MAX);
                    spans.push(Span { start, end: end_line });
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

// ---------------------------------------------------------------------------
// Directives.
// ---------------------------------------------------------------------------

/// Parses every `detlint::allow` directive in the file's comments.
/// Malformed directives become S001/S003 findings immediately;
/// well-formed ones are returned for the suppression pass.
fn parse_directives(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // A directive must *lead* its comment (after doc-comment `/`/`!`
        // markers), so prose that merely mentions the syntax is inert.
        let body = c.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = body.strip_prefix("detlint::allow") else { continue };
        // Directives inside test spans govern nothing (the rules skip
        // test code), so ignore them entirely rather than calling them
        // unused.
        if in_test(c.line) {
            continue;
        }
        let (file_scope, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(open) = rest.find('(') else {
            push(findings, path, c.line, "S001", "directive is missing `(RULE, …)`".to_string());
            continue;
        };
        let Some(close) = rest[open..].find(')').map(|k| open + k) else {
            push(findings, path, c.line, "S001", "directive has an unclosed rule list".to_string());
            continue;
        };
        if rest[..open].trim() != "" {
            push(
                findings,
                path,
                c.line,
                "S001",
                "unexpected text before the rule list".to_string(),
            );
            continue;
        }
        let mut ids = Vec::new();
        let mut bad = false;
        for id in rest[open + 1..close].split(',') {
            let id = id.trim();
            match rules::rule(id) {
                Some(info) if rules::suppressible(info.id) => ids.push(info.id),
                Some(_) => {
                    push(
                        findings,
                        path,
                        c.line,
                        "S003",
                        format!("S rules cannot be suppressed ({id})"),
                    );
                    bad = true;
                }
                None => {
                    push(findings, path, c.line, "S003", format!("unknown rule id {id:?}"));
                    bad = true;
                }
            }
        }
        if bad {
            continue;
        }
        if ids.is_empty() {
            push(findings, path, c.line, "S001", "empty rule list".to_string());
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let justification = match after.strip_prefix(':') {
            Some(j) => j.trim(),
            None => {
                push(
                    findings,
                    path,
                    c.line,
                    "S001",
                    "missing `: <justification>` after the rule list".to_string(),
                );
                continue;
            }
        };
        if justification.is_empty() {
            push(findings, path, c.line, "S001", "empty justification".to_string());
            continue;
        }
        let target_line = if c.trailing { c.line } else { next_code_line(&lexed.tokens, c.line) };
        let used = vec![false; ids.len()];
        out.push(Directive { line: c.line, ids, file_scope, target_line, used });
    }
    out
}

/// The first line after `line` that carries a code token.
fn next_code_line(tokens: &[Token], line: u32) -> u32 {
    tokens.iter().map(|t| t.line).find(|&l| l > line).unwrap_or(u32::MAX)
}
