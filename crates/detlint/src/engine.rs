//! The rule engine: token-sequence matching plus suppression
//! bookkeeping for a single file.
//!
//! Analysis is four passes over the lexed file:
//!
//! 1. **Test spans.** Items under `#[test]` / `#[cfg(test)]` are
//!    located by brace-matching and excluded wholesale — test-only
//!    nondeterminism cannot perturb a replica, and test assertions
//!    legitimately panic.
//! 2. **Raw findings.** D rules run when the file is simulation-
//!    facing, P rules when it is on a protocol path (per
//!    [`Config::role`]).
//! 3. **Directives.** `// detlint::allow(RULE): why` comments are
//!    parsed; malformed ones become S001/S003 findings on the spot.
//! 4. **Suppression.** Line directives cover their own line (when
//!    trailing) or the next code line; `allow-file` directives cover
//!    the whole file. Every directive must justify itself *and* be
//!    used, or it is itself a finding (S001/S002).

use crate::config::{Config, FileRole};
use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::rules;

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    pub hint: &'static str,
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed findings, in line order (includes S findings).
    pub findings: Vec<Finding>,
    /// How many findings valid directives suppressed.
    pub suppressed: usize,
    /// How many well-formed directives the file carries.
    pub directives: usize,
}

/// An inclusive line range.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: u32,
    end: u32,
}

impl Span {
    fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// One parsed, well-formed suppression directive.
#[derive(Debug)]
struct Directive {
    line: u32,
    /// Rules this directive may suppress.
    ids: Vec<&'static str>,
    /// Whole-file scope (`detlint::allow-file`).
    file_scope: bool,
    /// Line findings must be on for line-scoped directives.
    target_line: u32,
    /// Per-id usage, parallel to `ids`.
    used: Vec<bool>,
}

/// Analyzes one file's source. `path` is workspace-relative with `/`
/// separators; it selects the rule families via `config` and prefixes
/// every finding.
pub fn analyze(path: &str, src: &str, config: &Config) -> FileReport {
    let lexed = lex(src);
    let role = config.role(path);
    let test_spans = test_spans(&lexed.tokens);
    let in_test = |line: u32| test_spans.iter().any(|s| s.contains(line));

    let mut raw = Vec::new();
    if role.sim || role.protocol {
        scan_rules(path, &lexed, role, config, &in_test, &mut raw);
    }
    // Two path prefixes can both flag e.g. `std::env::var` (once as
    // `std::env`, once as `env::var`): collapse to one per (rule, line).
    raw.sort_by_key(|f: &Finding| (f.line, f.rule));
    raw.dedup_by_key(|f| (f.line, f.rule));

    let mut report = FileReport::default();
    let mut directives = parse_directives(path, &lexed, &in_test, &mut report.findings);
    report.directives = directives.len();

    // Apply suppressions: prefer a precise line directive, fall back to
    // file scope.
    for f in raw {
        let mut hit = false;
        for d in directives.iter_mut() {
            let scope_ok = d.file_scope || d.target_line == f.line || d.line == f.line;
            if !scope_ok {
                continue;
            }
            if let Some(i) = d.ids.iter().position(|id| *id == f.rule) {
                d.used[i] = true;
                hit = true;
                break;
            }
        }
        if hit {
            report.suppressed += 1;
        } else {
            report.findings.push(f);
        }
    }

    // Unused directives are findings themselves.
    for d in &directives {
        for (i, id) in d.ids.iter().enumerate() {
            if !d.used[i] {
                push(
                    &mut report.findings,
                    path,
                    d.line,
                    "S002",
                    format!("directive allows {id} but suppresses nothing"),
                );
            }
        }
    }

    report.findings.sort_by_key(|f| (f.line, f.rule));
    report
}

fn push(out: &mut Vec<Finding>, path: &str, line: u32, rule: &'static str, message: String) {
    let info = rules::rule(rule).expect("known rule id");
    out.push(Finding { file: path.to_string(), line, rule: info.id, message, hint: info.hint });
}

// ---------------------------------------------------------------------------
// Pass 1: test spans.
// ---------------------------------------------------------------------------

/// Finds line spans of items annotated `#[test]`-ish (`#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, …))]`). An attribute mentioning
/// `not` is conservatively treated as non-test (`#[cfg(not(test))]`
/// guards production code).
fn test_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_punct(tokens, i, "#") || !is_punct(tokens, i + 1, "[") {
            i += 1;
            continue;
        }
        let attr_start_line = tokens[i].line;
        // Bracket-match the attribute body.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() && depth > 0 {
            match &tokens[j].kind {
                TokKind::Punct(p) if p == "[" => depth += 1,
                TokKind::Punct(p) if p == "]" => depth -= 1,
                TokKind::Ident(id) if id == "test" => has_test = true,
                TokKind::Ident(id) if id == "not" => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Skip any further stacked attributes, then brace-match the item.
        while is_punct(tokens, j, "#") && is_punct(tokens, j + 1, "[") {
            let mut depth = 1i32;
            j += 2;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokKind::Punct(p) if p == "[" => depth += 1,
                    TokKind::Punct(p) if p == "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        let end = skip_item(tokens, j);
        let end_line = tokens.get(end.saturating_sub(1)).map(|t| t.line).unwrap_or(u32::MAX);
        spans.push(Span { start: attr_start_line, end: end_line });
        i = end;
    }
    spans
}

/// Advances past one item starting at `i`: to the matching `}` of its
/// body, or past a terminating `;` for body-less items. Returns the
/// index just past the item.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    let mut paren = 0i32;
    while i < tokens.len() {
        if let TokKind::Punct(p) = &tokens[i].kind {
            match p.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => return i + 1,
                "{" if paren == 0 => {
                    let mut depth = 1i32;
                    i += 1;
                    while i < tokens.len() && depth > 0 {
                        if let TokKind::Punct(p) = &tokens[i].kind {
                            if p == "{" {
                                depth += 1;
                            } else if p == "}" {
                                depth -= 1;
                            }
                        }
                        i += 1;
                    }
                    return i;
                }
                _ => {}
            }
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Pass 2: rule scanning.
// ---------------------------------------------------------------------------

fn is_punct(tokens: &[Token], i: usize, p: &str) -> bool {
    matches!(tokens.get(i), Some(Token { kind: TokKind::Punct(q), .. }) if q == p)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i) {
        Some(Token { kind: TokKind::Ident(s), .. }) => Some(s.as_str()),
        _ => None,
    }
}

fn scan_rules(
    path: &str,
    lexed: &Lexed,
    role: FileRole,
    config: &Config,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let tokens = &lexed.tokens;
    let decode_spans = if role.protocol { decode_fn_spans(tokens, config) } else { Vec::new() };

    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if in_test(line) {
            continue;
        }
        if role.sim {
            if let Some(id) = ident_at(tokens, i) {
                match id {
                    "Instant" | "SystemTime" => {
                        push(out, path, line, "D001", format!("`{id}` is wall-clock time"));
                    }
                    "thread_rng" | "OsRng" | "from_entropy" | "getrandom" => {
                        push(out, path, line, "D002", format!("`{id}` draws OS entropy"));
                    }
                    "std"
                        if is_punct(tokens, i + 1, "::")
                            && ident_at(tokens, i + 2) == Some("env") =>
                    {
                        push(out, path, line, "D003", "`std::env` read".to_string());
                    }
                    "env"
                        if is_punct(tokens, i + 1, "::")
                            && matches!(
                                ident_at(tokens, i + 2),
                                Some("var" | "var_os" | "vars" | "vars_os" | "args" | "args_os")
                            ) =>
                    {
                        push(out, path, line, "D003", "`env::*` read".to_string());
                    }
                    "thread"
                        if is_punct(tokens, i + 1, "::")
                            && ident_at(tokens, i + 2) == Some("sleep") =>
                    {
                        push(
                            out,
                            path,
                            line,
                            "D004",
                            "`thread::sleep` blocks on wall time".to_string(),
                        );
                    }
                    "HashMap" | "HashSet" if !randomstate_exempt(tokens, i) => {
                        push(
                            out,
                            path,
                            line,
                            "D005",
                            format!("`{id}` with default `RandomState` (iteration order varies per process)"),
                        );
                    }
                    _ => {}
                }
            }
        }
        if role.protocol {
            if is_punct(tokens, i, ".") && is_punct(tokens, i + 2, "(") {
                match ident_at(tokens, i + 1) {
                    Some("unwrap") => {
                        push(
                            out,
                            path,
                            line,
                            "P001",
                            "`.unwrap()` can panic a replica".to_string(),
                        );
                    }
                    Some("expect") => {
                        push(
                            out,
                            path,
                            line,
                            "P002",
                            "`.expect()` can panic a replica".to_string(),
                        );
                    }
                    _ => {}
                }
            }
            if let Some(id @ ("panic" | "unreachable" | "todo" | "unimplemented")) =
                ident_at(tokens, i)
            {
                if is_punct(tokens, i + 1, "!") {
                    push(out, path, line, "P003", format!("`{id}!` aborts the replica"));
                }
            }
            // Index expression: `[` directly preceded by a value-ish
            // token, inside a decode fn. (`vec![…]` and `#[…]` are not
            // index expressions: their `[` follows `!` / `#`.)
            let prev_is_value = i > 0
                && match &tokens[i - 1].kind {
                    TokKind::Ident(_) => true,
                    TokKind::Punct(p) => p == ")" || p == "]",
                    _ => false,
                };
            if is_punct(tokens, i, "[")
                && prev_is_value
                && decode_spans.iter().any(|s| s.contains(line))
            {
                push(
                    out,
                    path,
                    line,
                    "P004",
                    "indexing in a decode fn panics on short/garbled input".to_string(),
                );
            }
        }
    }
}

/// True when a `HashMap`/`HashSet` mention at `i` explicitly names a
/// hasher: a `<…>` with a third (map) / second (set) generic argument,
/// or a `with_hasher`-family constructor.
fn randomstate_exempt(tokens: &[Token], i: usize) -> bool {
    let is_set = ident_at(tokens, i) == Some("HashSet");
    // `HashMap::with_hasher(…)` / `with_capacity_and_hasher`.
    if is_punct(tokens, i + 1, "::") {
        if let Some(name) = ident_at(tokens, i + 2) {
            if name.contains("hasher") {
                return true;
            }
        }
    }
    // `HashMap<K, V, S>` / turbofish `HashMap::<K, V, S>`: count
    // top-level commas in the angle list.
    let angle_open = if is_punct(tokens, i + 1, "<") {
        i + 2
    } else if is_punct(tokens, i + 1, "::") && is_punct(tokens, i + 2, "<") {
        i + 3
    } else {
        return false;
    };
    let mut depth = 1i32;
    let mut commas = 0usize;
    let mut j = angle_open;
    let mut guard = 0usize;
    while j < tokens.len() && depth > 0 && guard < 256 {
        if let TokKind::Punct(p) = &tokens[j].kind {
            match p.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "(" | "[" => depth += 1, // tuples/arrays nest commas too
                ")" | "]" => depth -= 1,
                "," if depth == 1 => commas += 1,
                ";" => return false, // statement boundary: not a generic list
                _ => {}
            }
        }
        j += 1;
        guard += 1;
    }
    commas >= if is_set { 1 } else { 2 }
}

/// Line spans of functions whose name marks them as on-wire decoders.
fn decode_fn_spans(tokens: &[Token], config: &Config) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if ident_at(tokens, i) == Some("fn") {
            if let Some(name) = ident_at(tokens, i + 1) {
                if config.is_decode_fn(name) {
                    let start = tokens[i].line;
                    let end = skip_item(tokens, i + 2);
                    let end_line =
                        tokens.get(end.saturating_sub(1)).map(|t| t.line).unwrap_or(u32::MAX);
                    spans.push(Span { start, end: end_line });
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

// ---------------------------------------------------------------------------
// Pass 3: directives.
// ---------------------------------------------------------------------------

/// Parses every `detlint::allow` directive in the file's comments.
/// Malformed directives become S001/S003 findings immediately;
/// well-formed ones are returned for the suppression pass.
fn parse_directives(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // A directive must *lead* its comment (after doc-comment `/`/`!`
        // markers), so prose that merely mentions the syntax is inert.
        let body = c.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = body.strip_prefix("detlint::allow") else { continue };
        // Directives inside test spans govern nothing (the rules skip
        // test code), so ignore them entirely rather than calling them
        // unused.
        if in_test(c.line) {
            continue;
        }
        let (file_scope, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(open) = rest.find('(') else {
            push(findings, path, c.line, "S001", "directive is missing `(RULE, …)`".to_string());
            continue;
        };
        let Some(close) = rest[open..].find(')').map(|k| open + k) else {
            push(findings, path, c.line, "S001", "directive has an unclosed rule list".to_string());
            continue;
        };
        if rest[..open].trim() != "" {
            push(
                findings,
                path,
                c.line,
                "S001",
                "unexpected text before the rule list".to_string(),
            );
            continue;
        }
        let mut ids = Vec::new();
        let mut bad = false;
        for id in rest[open + 1..close].split(',') {
            let id = id.trim();
            match rules::rule(id) {
                Some(info) if rules::suppressible(info.id) => ids.push(info.id),
                Some(_) => {
                    push(
                        findings,
                        path,
                        c.line,
                        "S003",
                        format!("S rules cannot be suppressed ({id})"),
                    );
                    bad = true;
                }
                None => {
                    push(findings, path, c.line, "S003", format!("unknown rule id {id:?}"));
                    bad = true;
                }
            }
        }
        if bad {
            continue;
        }
        if ids.is_empty() {
            push(findings, path, c.line, "S001", "empty rule list".to_string());
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let justification = match after.strip_prefix(':') {
            Some(j) => j.trim(),
            None => {
                push(
                    findings,
                    path,
                    c.line,
                    "S001",
                    "missing `: <justification>` after the rule list".to_string(),
                );
                continue;
            }
        };
        if justification.is_empty() {
            push(findings, path, c.line, "S001", "empty justification".to_string());
            continue;
        }
        let target_line = if c.trailing { c.line } else { next_code_line(&lexed.tokens, c.line) };
        let used = vec![false; ids.len()];
        out.push(Directive { line: c.line, ids, file_scope, target_line, used });
    }
    out
}

/// The first line after `line` that carries a code token.
fn next_code_line(tokens: &[Token], line: u32) -> u32 {
    tokens.iter().map(|t| t.line).find(|&l| l > line).unwrap_or(u32::MAX)
}
