//! Item-level parsing on top of the lexer: fn / enum / impl / trait /
//! use extraction, plus the test-span scanner shared with the engine.
//!
//! This is not a Rust parser — it is a linear scan that recovers just
//! enough structure for cross-file analysis: which functions exist
//! (with their impl/trait owner and body token range), which enums
//! declare which variants, and what each `use` item pulls in. The
//! token ranges let the call-graph and rule modules scan function
//! bodies without re-lexing, and the line spans let findings be
//! attributed to their enclosing function.
//!
//! Deliberate approximations (each safe for a lint with governed
//! suppressions): nested functions are recorded flat (the innermost
//! enclosing span wins for line attribution), function-pointer types
//! (`fn(u32) -> u32`) are skipped because no identifier follows `fn`,
//! and const-generic brace expressions in signatures are not handled
//! (none exist in this workspace).

use crate::lexer::{Lexed, TokKind, Token};

/// An inclusive line range.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// One function item (free fn, method, or trait fn with a default or
/// absent body).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` type the function belongs to, when any.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line span of the whole item (signature through closing brace).
    pub span: Span,
    /// Token index range of the body (inside the braces); empty for
    /// body-less trait fns.
    pub body: std::ops::Range<usize>,
    /// Whether the item sits inside a `#[test]`/`#[cfg(test)]` span.
    pub is_test: bool,
}

/// One variant of a declared enum.
#[derive(Debug, Clone)]
pub struct EnumVariant {
    pub name: String,
    pub line: u32,
}

/// One enum declaration.
#[derive(Debug, Clone)]
pub struct EnumItem {
    pub name: String,
    pub line: u32,
    pub variants: Vec<EnumVariant>,
    pub is_test: bool,
}

/// One `use` item, flattened to the identifiers it mentions (grouped
/// imports contribute every name in the group).
#[derive(Debug, Clone)]
pub struct UseItem {
    pub line: u32,
    pub idents: Vec<String>,
}

/// Everything item-level the parser recovers from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub enums: Vec<EnumItem>,
    pub uses: Vec<UseItem>,
}

impl ParsedFile {
    /// Index (into `fns`) of the innermost function whose span contains
    /// `line`.
    pub fn fn_at(&self, line: u32) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.span.contains(line))
            .min_by_key(|(_, f)| f.span.end - f.span.start)
            .map(|(i, _)| i)
    }
}

pub(crate) fn is_punct(tokens: &[Token], i: usize, p: &str) -> bool {
    matches!(tokens.get(i), Some(Token { kind: TokKind::Punct(q), .. }) if q == p)
}

pub(crate) fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i) {
        Some(Token { kind: TokKind::Ident(s), .. }) => Some(s.as_str()),
        _ => None,
    }
}

/// Parses the token stream into items. `test_spans` (from
/// [`test_spans`]) marks which items live in test code.
pub fn parse(lexed: &Lexed, test_spans: &[Span]) -> ParsedFile {
    let tokens = &lexed.tokens;
    let in_test = |line: u32| test_spans.iter().any(|s| s.contains(line));
    let mut out = ParsedFile::default();
    // Stack of (owner type, token index one past the impl/trait body).
    let mut owners: Vec<(String, usize)> = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        while let Some(&(_, end)) = owners.last() {
            if i >= end {
                owners.pop();
            } else {
                break;
            }
        }
        match ident_at(tokens, i) {
            Some("impl") | Some("trait") => {
                if let Some((owner, body)) = parse_owner_block(tokens, i) {
                    owners.push((owner, body.end));
                    i = body.start; // descend into the block
                    continue;
                }
            }
            Some("fn") => {
                if let Some(name) = ident_at(tokens, i + 1) {
                    let line = tokens[i].line;
                    let (body, end) = fn_body(tokens, i + 2);
                    let end_line =
                        tokens.get(end.saturating_sub(1)).map(|t| t.line).unwrap_or(line);
                    out.fns.push(FnItem {
                        name: name.to_string(),
                        owner: owners.last().map(|(o, _)| o.clone()),
                        line,
                        span: Span { start: line, end: end_line },
                        body,
                        is_test: in_test(line),
                    });
                    i += 2; // scan inside the body too (nested items)
                    continue;
                }
            }
            Some("enum") => {
                if let Some(item) = parse_enum(tokens, i, &in_test) {
                    let skip_to = item.1;
                    out.enums.push(item.0);
                    i = skip_to;
                    continue;
                }
            }
            Some("use") => {
                let line = tokens[i].line;
                let mut idents = Vec::new();
                let mut j = i + 1;
                while j < tokens.len() && !is_punct(tokens, j, ";") {
                    if let Some(id) = ident_at(tokens, j) {
                        idents.push(id.to_string());
                    }
                    j += 1;
                }
                out.uses.push(UseItem { line, idents });
                i = j + 1;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parses an `impl`/`trait` header starting at `i`; returns the owner
/// type name and the token range of the block body (inside the braces).
fn parse_owner_block(tokens: &[Token], i: usize) -> Option<(String, std::ops::Range<usize>)> {
    // Collect header tokens up to the opening `{` (at bracket depth 0).
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut names: Vec<&str> = Vec::new();
    let mut after_for: Option<usize> = None;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct(p) => match p.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" => depth -= 1,
                // `>` closes a generic list unless it is the tail of a
                // `->` arrow (Fn-trait bounds lex as `-` `>`).
                ">" if !(j > 0 && is_punct(tokens, j - 1, "-")) => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => return None, // e.g. `impl Trait for T;` — nothing to own
                _ => {}
            },
            TokKind::Ident(id) if depth == 0 => {
                if id == "for" {
                    after_for = Some(names.len());
                } else if id == "where" {
                    // `where` clause: type names after it are bounds, not
                    // the owner — stop collecting.
                    if after_for.is_none() {
                        after_for = None;
                    }
                    // Keep scanning for the `{` but collect no more names.
                    j += 1;
                    while j < tokens.len() && !is_punct(tokens, j, "{") {
                        j += 1;
                    }
                    break;
                } else {
                    names.push(id);
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    // `impl Trait for Type` → the segment after `for`; otherwise the last
    // path identifier before the brace (skipping generic parameter names
    // is unnecessary: the self type's final segment is always last).
    let owner = match after_for {
        Some(k) => tokens_name(&names[k..]),
        None => tokens_name(&names),
    }?;
    let end = match_braces(tokens, j);
    Some((owner, j + 1..end.saturating_sub(1)))
}

/// The owner name from collected header idents: the last identifier
/// (final path segment of the self type).
fn tokens_name(names: &[&str]) -> Option<String> {
    names.last().map(|s| s.to_string())
}

/// From a token just after `fn name`, finds the body token range
/// (inside braces; empty for `;`-terminated trait fns) and the index
/// one past the item.
fn fn_body(tokens: &[Token], mut i: usize) -> (std::ops::Range<usize>, usize) {
    let mut depth = 0i32;
    while i < tokens.len() {
        if let TokKind::Punct(p) = &tokens[i].kind {
            match p.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => return (i..i, i + 1),
                "{" if depth == 0 => {
                    let end = match_braces(tokens, i);
                    return (i + 1..end.saturating_sub(1), end);
                }
                _ => {}
            }
        }
        i += 1;
    }
    (i..i, i)
}

/// Index one past the `}` matching the `{` at `open`.
pub(crate) fn match_braces(tokens: &[Token], open: usize) -> usize {
    let mut depth = 1i32;
    let mut i = open + 1;
    while i < tokens.len() && depth > 0 {
        if let TokKind::Punct(p) = &tokens[i].kind {
            if p == "{" {
                depth += 1;
            } else if p == "}" {
                depth -= 1;
            }
        }
        i += 1;
    }
    i
}

/// Parses `enum Name { … }` at `i`; returns the item and the index one
/// past it.
fn parse_enum(
    tokens: &[Token],
    i: usize,
    in_test: &dyn Fn(u32) -> bool,
) -> Option<(EnumItem, usize)> {
    let name = ident_at(tokens, i + 1)?.to_string();
    let line = tokens[i].line;
    // Find the body brace (skip generics / where clause; no parens occur
    // before an enum body).
    let mut j = i + 2;
    while j < tokens.len() && !is_punct(tokens, j, "{") {
        if is_punct(tokens, j, ";") {
            return None; // not an enum declaration after all
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    let end = match_braces(tokens, j);
    let mut variants = Vec::new();
    let mut k = j + 1;
    let mut expect_variant = true;
    let mut depth = 0i32;
    while k + 1 < end.max(1) && k < tokens.len() {
        match &tokens[k].kind {
            TokKind::Punct(p) => match p.as_str() {
                "#" if depth == 0 && is_punct(tokens, k + 1, "[") => {
                    // Skip a variant attribute.
                    let mut d = 1i32;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if let TokKind::Punct(q) = &tokens[k].kind {
                            if q == "[" {
                                d += 1;
                            } else if q == "]" {
                                d -= 1;
                            }
                        }
                        k += 1;
                    }
                    continue;
                }
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "," if depth == 0 => expect_variant = true,
                _ => {}
            },
            TokKind::Ident(id) if depth == 0 && expect_variant => {
                variants.push(EnumVariant { name: id.clone(), line: tokens[k].line });
                expect_variant = false;
            }
            _ => {}
        }
        k += 1;
    }
    Some((EnumItem { name, line, variants, is_test: in_test(line) }, end))
}

// ---------------------------------------------------------------------------
// Test spans (moved here from the engine so the parser and the engine
// share one definition).
// ---------------------------------------------------------------------------

/// Finds line spans of items annotated `#[test]`-ish (`#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, …))]`). An attribute mentioning
/// `not` is conservatively treated as non-test (`#[cfg(not(test))]`
/// guards production code).
pub fn test_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_punct(tokens, i, "#") || !is_punct(tokens, i + 1, "[") {
            i += 1;
            continue;
        }
        let attr_start_line = tokens[i].line;
        // Bracket-match the attribute body.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() && depth > 0 {
            match &tokens[j].kind {
                TokKind::Punct(p) if p == "[" => depth += 1,
                TokKind::Punct(p) if p == "]" => depth -= 1,
                TokKind::Ident(id) if id == "test" => has_test = true,
                TokKind::Ident(id) if id == "not" => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Skip any further stacked attributes, then brace-match the item.
        while is_punct(tokens, j, "#") && is_punct(tokens, j + 1, "[") {
            let mut depth = 1i32;
            j += 2;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokKind::Punct(p) if p == "[" => depth += 1,
                    TokKind::Punct(p) if p == "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        let end = skip_item(tokens, j);
        let end_line = tokens.get(end.saturating_sub(1)).map(|t| t.line).unwrap_or(u32::MAX);
        spans.push(Span { start: attr_start_line, end: end_line });
        i = end;
    }
    spans
}

/// Advances past one item starting at `i`: to the matching `}` of its
/// body, or past a terminating `;` for body-less items. Returns the
/// index just past the item.
pub(crate) fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    let mut paren = 0i32;
    while i < tokens.len() {
        if let TokKind::Punct(p) = &tokens[i].kind {
            match p.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => return i + 1,
                "{" if paren == 0 => return match_braces(tokens, i),
                _ => {}
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let spans = test_spans(&lexed.tokens);
        parse(&lexed, &spans)
    }

    #[test]
    fn free_fns_and_methods_with_owners() {
        let p = parsed(
            "fn top() {}\n\
             impl<A: Clone> Server<A> {\n    fn absorb(&mut self) { self.top(); }\n}\n\
             impl fmt::Display for Ballot {\n    fn fmt(&self) {}\n}\n\
             trait Application {\n    fn classify() -> u32 { 0 }\n    fn locality();\n}\n",
        );
        let names: Vec<(String, Option<String>)> =
            p.fns.iter().map(|f| (f.name.clone(), f.owner.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("top".into(), None),
                ("absorb".into(), Some("Server".into())),
                ("fmt".into(), Some("Ballot".into())),
                ("classify".into(), Some("Application".into())),
                ("locality".into(), Some("Application".into())),
            ]
        );
        // Body-less trait fn has an empty body range.
        assert!(p.fns[4].body.is_empty());
        assert!(!p.fns[3].body.is_empty());
    }

    #[test]
    fn enums_with_all_variant_shapes() {
        let p = parsed(
            "pub enum Payload<A> {\n\
               Exec { cmd: A, attempt: u32 },\n\
               #[allow(dead_code)]\n\
               Plan(Vec<(u64, u32)>),\n\
               Noop,\n\
               Tagged = 3,\n\
             }\n",
        );
        assert_eq!(p.enums.len(), 1);
        let vs: Vec<&str> = p.enums[0].variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(vs, vec!["Exec", "Plan", "Noop", "Tagged"]);
    }

    #[test]
    fn uses_are_flattened() {
        let p = parsed("use std::time::{Duration, Instant};\nuse std::thread;\n");
        assert_eq!(p.uses.len(), 2);
        assert_eq!(p.uses[0].idents, vec!["std", "time", "Duration", "Instant"]);
        assert_eq!(p.uses[1].idents, vec!["std", "thread"]);
    }

    #[test]
    fn innermost_fn_wins_attribution() {
        let p = parsed("fn outer() {\n    fn inner() {\n        let x = 1;\n    }\n}\n");
        let idx = p.fn_at(3).unwrap();
        assert_eq!(p.fns[idx].name, "inner");
        assert_eq!(p.fns[p.fn_at(1).unwrap()].name, "outer");
    }

    #[test]
    fn test_items_are_marked() {
        let p = parsed("#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn live() {}\n");
        assert!(p.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
        assert!(!p.fns.iter().find(|f| f.name == "live").unwrap().is_test);
    }
}
