//! Scan configuration: which paths get which rule families.
//!
//! Defaults are compiled in and mirrored by `detlint.toml` at the
//! workspace root; the file (when present) *replaces* the matching
//! default list, so the checked-in config is the single source of
//! truth for reviewers. The parser is a deliberately tiny subset of
//! TOML — `key = "str"` and `key = [ "a", "b" ]` (arrays may span
//! lines), `#` comments — because the vendored-deps policy rules out
//! a real TOML crate and the config needs nothing more.

use std::fmt;

/// Path-glob driven scan configuration. All globs are matched against
/// `/`-separated paths relative to the workspace root.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files subject to determinism (D) rules: the simulation-facing
    /// crates whose behaviour must be a pure function of the seed.
    pub sim: Vec<String>,
    /// Files subject to protocol-hygiene (P) rules: message-delivery
    /// and on-wire decode paths.
    pub protocol: Vec<String>,
    /// Substrings of function names treated as on-wire decode
    /// functions (P004 applies inside them).
    pub decode_markers: Vec<String>,
    /// Files never scanned at all.
    pub skip: Vec<String>,
    /// Files subject to IO-weld (W) rules: the protocol crates the
    /// sans-IO refactor will carve out. Empty disables the family.
    pub weld_scope: Vec<String>,
    /// Files that *are* the IO facade: never welded, and calls into
    /// them do not propagate welds.
    pub weld_facade: Vec<String>,
    /// Names of the designated wire enums (T rules). Empty disables
    /// the family.
    pub wire_enums: Vec<String>,
    /// Exact names of handler functions whose wire-enum matches must
    /// be wildcard-free (T002).
    pub handler_fns: Vec<String>,
    /// Exact names of protocol entry-point functions. When non-empty,
    /// P rules fire only in functions reachable from an entry point
    /// (or a decode function) in a protocol file; empty keeps the
    /// per-file v1 behaviour of flagging everywhere.
    pub protocol_entries: Vec<String>,
    /// Root functions (`name` or `Owner::name`) of the exec-scheduler
    /// determinism (X) analysis. Empty disables the family.
    pub scheduler_roots: Vec<String>,
    /// Files the scheduler roots must be declared in.
    pub scheduler_scope: Vec<String>,
    /// Files that are wholly test code (integration-test trees) —
    /// exempt from D/P/W/X, and counted as coverage for T003.
    pub test_globs: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        Config {
            sim: v(&[
                "crates/runtime/src/**",
                "crates/core/src/**",
                "crates/paxos/src/**",
                "crates/amcast/src/**",
                "crates/partitioner/src/**",
                "crates/workloads/src/**",
            ]),
            protocol: v(&[
                "crates/amcast/src/member.rs",
                "crates/paxos/src/replica.rs",
                "crates/runtime/src/fifo.rs",
                "crates/runtime/src/dedup.rs",
                "crates/runtime/src/net.rs",
                "crates/core/src/server.rs",
                "crates/core/src/oracle.rs",
                "crates/core/src/client.rs",
                "crates/core/src/cluster.rs",
                "crates/core/src/payload.rs",
                "crates/core/src/threaded.rs",
            ]),
            decode_markers: v(&["decode", "parse", "from_bytes", "from_wire"]),
            skip: v(&[
                "target/**",
                "vendor/**",
                ".git/**",
                "results/**",
                "crates/detlint/fixtures/**",
            ]),
            weld_scope: v(&["crates/core/src/**", "crates/paxos/src/**", "crates/amcast/src/**"]),
            weld_facade: v(&["crates/runtime/src/**"]),
            wire_enums: v(&["Payload", "Direct", "Entry", "PaxosMsg"]),
            handler_fns: v(&["on_deliver", "on_direct", "on_message"]),
            protocol_entries: v(&[
                "on_message",
                "on_deliver",
                "on_direct",
                "on_start",
                "on_restart",
                "on_timer",
                "on_tick",
                "on_wake",
                "on_timeout",
                "tick",
                "receive",
                "absorb",
                "apply_effects",
                "handle_direct",
                "handle_recovery",
            ]),
            scheduler_roots: v(&[
                "Server::gate_for",
                "Server::admit_execution",
                "ExecScheduler::earliest_free_worker",
                "ExecScheduler::advance_busy",
                "ExecScheduler::prune",
                "ExecScheduler::note_stall",
            ]),
            scheduler_scope: v(&["crates/core/src/server.rs"]),
            test_globs: v(&["tests/**", "crates/*/tests/**", "crates/*/benches/**"]),
        }
    }
}

/// Which rule families apply to one file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileRole {
    pub sim: bool,
    pub protocol: bool,
}

impl Config {
    /// Role of the file at workspace-relative `path`.
    pub fn role(&self, path: &str) -> FileRole {
        FileRole {
            sim: self.sim.iter().any(|g| glob_match(g, path)),
            protocol: self.protocol.iter().any(|g| glob_match(g, path)),
        }
    }

    /// True when `path` must not be scanned.
    pub fn skipped(&self, path: &str) -> bool {
        self.skip.iter().any(|g| glob_match(g, path))
    }

    /// True when `fn_name` marks an on-wire decode function.
    pub fn is_decode_fn(&self, fn_name: &str) -> bool {
        self.decode_markers.iter().any(|m| fn_name.contains(m))
    }

    /// True when `path` is subject to W rules.
    pub fn in_weld_scope(&self, path: &str) -> bool {
        self.weld_scope.iter().any(|g| glob_match(g, path))
    }

    /// True when `path` is part of the IO facade.
    pub fn is_weld_facade(&self, path: &str) -> bool {
        self.weld_facade.iter().any(|g| glob_match(g, path))
    }

    /// True when `path` may declare scheduler roots.
    pub fn in_scheduler_scope(&self, path: &str) -> bool {
        self.scheduler_scope.iter().any(|g| glob_match(g, path))
    }

    /// True when `path` is wholly test code.
    pub fn is_test_file(&self, path: &str) -> bool {
        self.test_globs.iter().any(|g| glob_match(g, path))
    }
}

/// A config-file problem, reported with its line.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "detlint.toml:{}: {}", self.line, self.message)
    }
}

/// Parses `detlint.toml` content, overriding `base` list-by-list.
pub fn parse_config(text: &str, base: Config) -> Result<Config, ConfigError> {
    let mut cfg = base;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError {
                line: n + 1,
                message: format!("expected `key = value`, got {line:?}"),
            });
        };
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Arrays may span lines: keep consuming until the `]`.
        if value.starts_with('[') && !value.ends_with(']') {
            for (_, cont) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
                if value.ends_with(']') {
                    break;
                }
            }
        }
        let items = parse_value(&value).map_err(|message| ConfigError { line: n + 1, message })?;
        match key {
            "sim" => cfg.sim = items,
            "protocol" => cfg.protocol = items,
            "decode_markers" => cfg.decode_markers = items,
            "skip" => cfg.skip = items,
            "weld_scope" => cfg.weld_scope = items,
            "weld_facade" => cfg.weld_facade = items,
            "wire_enums" => cfg.wire_enums = items,
            "handler_fns" => cfg.handler_fns = items,
            "protocol_entries" => cfg.protocol_entries = items,
            "scheduler_roots" => cfg.scheduler_roots = items,
            "scheduler_scope" => cfg.scheduler_scope = items,
            "test_globs" => cfg.test_globs = items,
            other => {
                return Err(ConfigError {
                    line: n + 1,
                    message: format!(
                        "unknown key {other:?} (expected sim, protocol, decode_markers, skip, \
                         weld_scope, weld_facade, wire_enums, handler_fns, protocol_entries, \
                         scheduler_roots, scheduler_scope, test_globs)"
                    ),
                })
            }
        }
    }
    Ok(cfg)
}

/// Strips a `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"str"` or `[ "a", "b" ]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_string(part)?);
        }
        Ok(items)
    } else {
        Ok(vec![parse_string(value)?])
    }
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

fn parse_string(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|v| v.to_string())
        .ok_or_else(|| format!("expected a double-quoted string, got {s:?}"))
}

/// Glob matching over `/`-separated paths. `**` spans any number of
/// path segments (including zero); `*` and `?` match within one
/// segment.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            match_segments(&pat[1..], segs) || (!segs.is_empty() && match_segments(pat, &segs[1..]))
        }
        Some(p) => {
            !segs.is_empty() && match_one(p, segs[0]) && match_segments(&pat[1..], &segs[1..])
        }
    }
}

/// `*`/`?` matching within one segment.
fn match_one(pat: &str, text: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let t: Vec<char> = text.chars().collect();
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('*') => rec(&p[1..], t) || (!t.is_empty() && rec(p, &t[1..])),
            Some('?') => !t.is_empty() && rec(&p[1..], &t[1..]),
            Some(c) => !t.is_empty() && t[0] == *c && rec(&p[1..], &t[1..]),
        }
    }
    rec(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_basics() {
        assert!(glob_match("crates/core/src/**", "crates/core/src/server.rs"));
        assert!(glob_match("crates/core/src/**", "crates/core/src/tpcc/ops.rs"));
        assert!(!glob_match("crates/core/src/**", "crates/core/tests/x.rs"));
        assert!(glob_match("crates/*/src/*.rs", "crates/paxos/src/lib.rs"));
        assert!(!glob_match("crates/*/src/*.rs", "crates/paxos/src/a/b.rs"));
        assert!(glob_match("**/fixtures/**", "crates/detlint/fixtures/bad/a.rs"));
        assert!(glob_match("target/**", "target/debug/foo"));
        assert!(glob_match("a/**", "a"));
    }

    #[test]
    fn parse_minimal_toml() {
        let text = r#"
# comment
sim = ["crates/a/src/**", "crates/b/src/**"]
protocol = [
    "crates/a/src/wire.rs",  # trailing comment
]
decode_markers = "decode"
"#;
        let cfg = parse_config(text, Config::default()).unwrap();
        assert_eq!(cfg.sim, vec!["crates/a/src/**", "crates/b/src/**"]);
        assert_eq!(cfg.protocol, vec!["crates/a/src/wire.rs"]);
        assert_eq!(cfg.decode_markers, vec!["decode"]);
        // Untouched key keeps the default.
        assert!(cfg.skip.iter().any(|g| g == "vendor/**"));
    }

    #[test]
    fn bad_config_reports_line() {
        let err = parse_config("sim = [\"a\"]\nnot a kv line", Config::default()).unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_config("mystery = \"x\"", Config::default()).unwrap_err();
        assert!(err.message.contains("unknown key"));
    }

    #[test]
    fn roles_resolve() {
        let cfg = Config::default();
        let r = cfg.role("crates/core/src/server.rs");
        assert!(r.sim && r.protocol);
        let r = cfg.role("crates/core/src/command.rs");
        assert!(r.sim && !r.protocol);
        let r = cfg.role("crates/bench/src/lib.rs");
        assert!(!r.sim && !r.protocol);
        assert!(cfg.skipped("vendor/rand/src/lib.rs"));
        assert!(cfg.skipped("crates/detlint/fixtures/bad/x.rs"));
    }
}
