//! # detlint
//!
//! A workspace determinism & protocol-hygiene static analyzer for the
//! DynaStar reproduction — see DESIGN.md §6 for the full rationale and
//! rule catalog, and `detlint.toml` at the workspace root for the
//! scan scope.
//!
//! The analyzer is a hand-rolled lexer ([`lexer`]), an item-level
//! parser ([`parser`]), a workspace symbol table ([`symbols`]) with a
//! call graph ([`callgraph`]), and a rule engine ([`engine`]) — no
//! syn, no regex, no dependencies — so it builds in well under a
//! second and runs first in CI. Six rule families ([`rules`]):
//! **D** determinism hazards in simulation-facing crates, **P** panic
//! hazards on protocol message paths (reachability-filtered to
//! protocol entry points in full scans), **W** IO-weld boundary
//! violations feeding `results/weld_map.json` ([`weld`]), **T**
//! wire-enum totality ([`totality`]), **X** exec-scheduler
//! determinism ([`sched`]), and **S** suppression governance for
//! `// detlint::allow(RULE): why` directives.
//!
//! ```
//! use detlint::{analyze, Config};
//!
//! let cfg = Config::default();
//! let report = analyze(
//!     "crates/core/src/server.rs",
//!     "use std::time::Instant; // clock\n",
//!     &cfg,
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "D001");
//! ```

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sched;
pub mod symbols;
pub mod totality;
pub mod weld;

use std::path::{Path, PathBuf};

pub use config::{parse_config, Config};
pub use engine::{analyze, FileReport, Finding};
pub use report::{render_weld_map, weld_map_count, Stats};
pub use weld::Weld;

use symbols::{SourceFile, SymbolTable};

/// A whole-workspace scan result.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All unsuppressed findings, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    pub stats: Stats,
    /// Every W finding, suppressed or not — the weld map.
    pub welds: Vec<Weld>,
}

impl ScanReport {
    /// A scan is clean when nothing needs attention — the CI gate.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Recursively collects the workspace-relative paths of every `.rs`
/// file under `root`, honoring the config's skip globs. Entries are
/// sorted so the scan itself is deterministic regardless of how the
/// OS orders directories.
pub fn collect_files(root: &Path, config: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for path in entries {
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if config.skipped(&rel) || rel.starts_with('.') {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The cross-file pipeline over an in-memory `(path, source)` set:
/// parse everything, build the symbol table and call graph, run the
/// per-file D/P rules (P filtered to protocol-entry reachability when
/// `protocol_entries` is configured), run the cross-file W/T/X
/// families, then resolve suppressions per file so a directive can
/// govern any family's finding.
pub fn scan_sources(sources: &[(String, String)], config: &Config) -> ScanReport {
    let files: Vec<SourceFile> =
        sources.iter().map(|(p, s)| SourceFile::load(p, s, config)).collect();
    let syms = SymbolTable::build(&files);
    let graph = callgraph::CallGraph::build(&files, &syms);

    // Protocol-entry reachability for the P family.
    let p_reach = if config.protocol_entries.is_empty() {
        None
    } else {
        let mut roots = Vec::new();
        for (id, f) in syms.fns.iter().enumerate() {
            if !files[f.file].role.protocol || f.item.is_test {
                continue;
            }
            if config.protocol_entries.iter().any(|e| e == &f.item.name)
                || config.is_decode_fn(&f.item.name)
            {
                roots.push(id);
            }
        }
        Some(callgraph::reachable(&graph, &roots))
    };

    // Per-file raw findings, P-filtered.
    let mut per_file: Vec<Vec<Finding>> = Vec::with_capacity(files.len());
    for (fi, file) in files.iter().enumerate() {
        let mut raw =
            engine::raw_findings(&file.path, &file.lexed, file.role, config, &file.test_spans);
        if let Some(reach) = &p_reach {
            raw.retain(|f| {
                if !f.rule.starts_with('P') {
                    return true;
                }
                match syms.fn_at(fi, f.line) {
                    Some(fid) => reach[fid],
                    None => true, // outside any fn: keep
                }
            });
        }
        per_file.push(raw);
    }

    // Cross-file families.
    let mut cross = Vec::new();
    let welds = if config.weld_scope.is_empty() {
        Vec::new()
    } else {
        weld::run(&files, &syms, &graph, config, &mut cross)
    };
    if !config.wire_enums.is_empty() {
        totality::run(&files, &syms, config, &mut cross);
    }
    if !config.scheduler_roots.is_empty() {
        sched::run(&files, &syms, &graph, config, &mut cross);
    }
    let index_of: std::collections::BTreeMap<&str, usize> =
        files.iter().enumerate().map(|(i, f)| (f.path.as_str(), i)).collect();
    for f in cross {
        if let Some(&fi) = index_of.get(f.file.as_str()) {
            per_file[fi].push(f);
        }
    }

    // Finalize each file: suppression + governance, with reachability
    // notes on stale P directives.
    let mut report = ScanReport { welds, ..ScanReport::default() };
    let mut suppressed_at: Vec<(String, u32, &'static str)> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let note = |target_line: u32, rule: &str| -> Option<String> {
            if !rule.starts_with('P') || p_reach.is_none() {
                return None;
            }
            let fid = syms.fn_at(fi, target_line)?;
            if p_reach.as_ref().is_some_and(|r| !r[fid]) {
                let name = &syms.fns[fid].item.name;
                Some(format!(
                    "fn `{name}` is not reachable from any protocol entry point, so P rules cannot fire here"
                ))
            } else {
                None
            }
        };
        let opts = engine::FinalizeOpts { s002_check: &|_| true, s002_note: &note };
        let fr = engine::finalize(
            &file.path,
            &file.lexed,
            &file.test_spans,
            std::mem::take(&mut per_file[fi]),
            &opts,
        );
        report.stats.files_scanned += 1;
        report.stats.suppressed += fr.suppressed;
        report.stats.directives += fr.directives;
        for f in &fr.suppressed_findings {
            suppressed_at.push((f.file.clone(), f.line, f.rule));
        }
        report.findings.extend(fr.findings);
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    // Mark suppressed welds for the weld map.
    for w in &mut report.welds {
        w.suppressed =
            suppressed_at.iter().any(|(f, l, r)| f == &w.file && *l == w.line && *r == w.rule);
    }
    report.welds.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Scans the workspace rooted at `root` with `config`.
pub fn scan_workspace(root: &Path, config: &Config) -> std::io::Result<ScanReport> {
    let mut sources = Vec::new();
    for rel in collect_files(root, config)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        sources.push((rel, src));
    }
    Ok(scan_sources(&sources, config))
}

/// Loads `detlint.toml` from `root` when present, otherwise the
/// built-in defaults.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("detlint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => parse_config(&text, Config::default()).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Walks upward from `start` to the first directory whose
/// `Cargo.toml` declares `[workspace]` — how the CLI finds the scan
/// root without being told.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
