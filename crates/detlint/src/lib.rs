//! # detlint
//!
//! A workspace determinism & protocol-hygiene static analyzer for the
//! DynaStar reproduction — see DESIGN.md §6 for the full rationale and
//! rule catalog, and `detlint.toml` at the workspace root for the
//! scan scope.
//!
//! The analyzer is a hand-rolled lexer ([`lexer`]) plus a token-rule
//! engine ([`engine`]) — no syn, no regex, no dependencies — so it
//! builds in well under a second and runs first in CI. Three rule
//! families ([`rules`]): **D** determinism hazards in simulation-
//! facing crates, **P** panic hazards on protocol message paths,
//! **S** suppression governance for `// detlint::allow(RULE): why`
//! directives.
//!
//! ```
//! use detlint::{analyze, Config};
//!
//! let cfg = Config::default();
//! let report = analyze(
//!     "crates/core/src/server.rs",
//!     "use std::time::Instant; // clock\n",
//!     &cfg,
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "D001");
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::{parse_config, Config};
pub use engine::{analyze, FileReport, Finding};
pub use report::Stats;

/// A whole-workspace scan result.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All unsuppressed findings, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    pub stats: Stats,
}

impl ScanReport {
    /// A scan is clean when nothing needs attention — the CI gate.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Recursively collects the workspace-relative paths of every `.rs`
/// file under `root`, honoring the config's skip globs. Entries are
/// sorted so the scan itself is deterministic regardless of how the
/// OS orders directories.
pub fn collect_files(root: &Path, config: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for path in entries {
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if config.skipped(&rel) || rel.starts_with('.') {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans the workspace rooted at `root` with `config`.
pub fn scan_workspace(root: &Path, config: &Config) -> std::io::Result<ScanReport> {
    let mut report = ScanReport::default();
    for rel in collect_files(root, config)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let file = analyze(&rel, &src, config);
        report.stats.files_scanned += 1;
        report.stats.suppressed += file.suppressed;
        report.stats.directives += file.directives;
        report.findings.extend(file.findings);
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Loads `detlint.toml` from `root` when present, otherwise the
/// built-in defaults.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("detlint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => parse_config(&text, Config::default()).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Walks upward from `start` to the first directory whose
/// `Cargo.toml` declares `[workspace]` — how the CLI finds the scan
/// root without being told.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
