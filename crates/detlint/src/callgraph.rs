//! The call/use graph: which functions call which, resolved by name
//! with owner qualification when the call site provides one.
//!
//! Resolution is intentionally approximate — detlint has no type
//! information. Three call shapes are recognised in a function body:
//!
//! * `name(…)` — free call; resolves to every function named `name`.
//! * `recv.name(…)` — method call; same name-only resolution.
//! * `Owner::name(…)` — qualified; resolves to functions named `name`
//!   owned by `Owner` (with `Self` rewritten to the caller's owner),
//!   falling back to name-only resolution when the owner has none
//!   (generic calls like `A::classify(…)` dispatch to impls detlint
//!   cannot see through).
//!
//! Two dampers keep name-only resolution from drowning the graph in
//! false edges: a stoplist of ubiquitous std/collection method names,
//! and a fan-out cap — a bare name matching more than
//! [`NAME_FANOUT_CAP`] declarations resolves to nothing (too
//! ambiguous to be signal). Both make the graph an
//! *under*-approximation in places; rules built on it are lints with
//! governed suppressions, not soundness proofs.

use std::collections::VecDeque;

use crate::parser::{ident_at, is_punct};
use crate::symbols::{SourceFile, SymbolTable};

/// A bare call name matching more declarations than this resolves to
/// nothing.
pub const NAME_FANOUT_CAP: usize = 6;

/// Method/function names too common to carry call-graph signal.
const STOPLIST: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "back",
    "binary_search",
    "borrow",
    "borrow_mut",
    "chain",
    "checked_add",
    "checked_sub",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "default",
    "drain",
    "drop",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fmt",
    "fold",
    "from",
    "front",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "key",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "new",
    "next",
    "ok",
    "or_default",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "pop_back",
    "pop_front",
    "position",
    "push",
    "push_back",
    "push_front",
    "read",
    "recv",
    "remove",
    "replace",
    "reserve",
    "retain",
    "rev",
    "saturating_add",
    "saturating_sub",
    "send",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_at",
    "starts_with",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "value",
    "values",
    "with_capacity",
    "wrapping_add",
    "write",
    "zip",
];

/// Adjacency lists over the global fn id space.
///
/// `callees`/`callers` carry every resolved edge — right for
/// reachability questions, where missing an edge hides real findings.
/// `callers_sure` keeps only *confident* edges (owner-qualified, or a
/// name with exactly one declaration) — right for blame-propagating
/// analyses like W002, where an ambiguous name shared by unrelated
/// types would smear a weld across deployment boundaries.
pub struct CallGraph {
    pub callees: Vec<Vec<usize>>,
    pub callers: Vec<Vec<usize>>,
    pub callers_sure: Vec<Vec<usize>>,
}

impl CallGraph {
    pub fn build(files: &[SourceFile], syms: &SymbolTable) -> CallGraph {
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); syms.fns.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); syms.fns.len()];
        let mut callers_sure: Vec<Vec<usize>> = vec![Vec::new(); syms.fns.len()];
        for (id, f) in syms.fns.iter().enumerate() {
            let tokens = &files[f.file].lexed.tokens;
            let body = f.item.body.clone();
            for i in body {
                let Some(name) = ident_at(tokens, i) else { continue };
                if !is_punct(tokens, i + 1, "(") {
                    continue;
                }
                // Skip declarations (`fn name(…)`).
                if i > 0 && ident_at(tokens, i - 1) == Some("fn") {
                    continue;
                }
                let owner = if i >= 2 && is_punct(tokens, i - 1, "::") {
                    ident_at(tokens, i - 2)
                } else {
                    None
                };
                let (targets, sure) = resolve(syms, f.item.owner.as_deref(), owner, name);
                for target in targets {
                    if target == id {
                        continue;
                    }
                    if !callees[id].contains(&target) {
                        callees[id].push(target);
                        callers[target].push(id);
                    }
                    if sure && !callers_sure[target].contains(&id) {
                        callers_sure[target].push(id);
                    }
                }
            }
        }
        CallGraph { callees, callers, callers_sure }
    }
}

/// Resolves one call site to candidate fn ids, and whether the
/// resolution is confident.
fn resolve(
    syms: &SymbolTable,
    caller_owner: Option<&str>,
    owner: Option<&str>,
    name: &str,
) -> (Vec<usize>, bool) {
    if let Some(o) = owner {
        let o = if o == "Self" { caller_owner.unwrap_or(o) } else { o };
        if let Some(ids) = syms.by_name.get(name) {
            let qualified: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&id| syms.fns[id].item.owner.as_deref() == Some(o))
                .collect();
            if !qualified.is_empty() {
                return (qualified, true);
            }
        }
        // Fall through to name-only: generic/trait dispatch.
    }
    if STOPLIST.binary_search(&name).is_ok() {
        return (Vec::new(), false);
    }
    match syms.by_name.get(name) {
        Some(ids) if ids.len() <= NAME_FANOUT_CAP => {
            let sure = ids.len() == 1;
            (ids.clone(), sure)
        }
        _ => (Vec::new(), false),
    }
}

/// Forward BFS over `callees` from `roots`; returns a reachability
/// mask (roots included).
pub fn reachable(graph: &CallGraph, roots: &[usize]) -> Vec<bool> {
    let mut seen = vec![false; graph.callees.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if !seen[r] {
            seen[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        for &c in &graph.callees[f] {
            if !seen[c] {
                seen[c] = true;
                queue.push_back(c);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn world(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolTable) {
        let cfg = Config::default();
        let files: Vec<SourceFile> =
            srcs.iter().map(|(p, s)| SourceFile::load(p, s, &cfg)).collect();
        let syms = SymbolTable::build(&files);
        (files, syms)
    }

    fn id(syms: &SymbolTable, name: &str) -> usize {
        syms.by_name[name][0]
    }

    #[test]
    fn stoplist_is_sorted_for_binary_search() {
        assert!(STOPLIST.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn free_method_and_qualified_edges() {
        let (files, syms) = world(&[(
            "crates/a/src/lib.rs",
            "fn helper() {}\n\
             impl Sched { fn prune(&self) {} fn tickle(&self) { Self::prune(self); } }\n\
             fn root(s: &Sched) { helper(); s.tickle(); Sched::prune(s); }\n",
        )]);
        let g = CallGraph::build(&files, &syms);
        let root = id(&syms, "root");
        assert!(g.callees[root].contains(&id(&syms, "helper")));
        assert!(g.callees[root].contains(&id(&syms, "tickle")));
        assert!(g.callees[root].contains(&id(&syms, "prune")));
        // `Self::prune` inside `tickle` resolves via the caller's owner.
        assert!(g.callees[id(&syms, "tickle")].contains(&id(&syms, "prune")));
        let seen = reachable(&g, &[root]);
        assert!(seen.iter().all(|&b| b), "every fn is reachable from root");
        assert!(seen[id(&syms, "prune")]);
    }

    #[test]
    fn stoplist_and_macros_create_no_edges() {
        let (files, syms) = world(&[(
            "crates/a/src/lib.rs",
            "fn get() {}\nfn caller(v: Vec<u32>) { v.get(0); format!(\"x\"); }\n",
        )]);
        let g = CallGraph::build(&files, &syms);
        assert!(g.callees[id(&syms, "caller")].is_empty());
    }

    #[test]
    fn qualified_falls_back_to_name_only_for_generics() {
        let (files, syms) = world(&[(
            "crates/a/src/lib.rs",
            "impl Counters { fn classify(&self) {} }\nfn caller<A>() { A::classify(); }\n",
        )]);
        let g = CallGraph::build(&files, &syms);
        assert!(g.callees[id(&syms, "caller")].contains(&id(&syms, "classify")));
    }
}
