//! The workspace symbol table: every function and enum across the
//! scanned file set, indexed for cross-file resolution.
//!
//! [`SourceFile`] bundles one file's lexed tokens, parsed items, test
//! spans and config roles; [`SymbolTable`] flattens all files' items
//! into global id spaces so the call graph and rule modules can refer
//! to "function #17" regardless of which file declared it.

use std::collections::BTreeMap;

use crate::config::{Config, FileRole};
use crate::lexer::{lex, Lexed};
use crate::parser::{self, EnumItem, FnItem, Span};

/// One loaded source file, parsed and role-tagged.
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    pub lexed: Lexed,
    pub parsed: parser::ParsedFile,
    pub test_spans: Vec<Span>,
    pub role: FileRole,
    /// Whole file is test code (integration-test trees).
    pub is_test_file: bool,
}

impl SourceFile {
    pub fn load(path: &str, src: &str, config: &Config) -> SourceFile {
        let lexed = lex(src);
        let test_spans = parser::test_spans(&lexed.tokens);
        let parsed = parser::parse(&lexed, &test_spans);
        SourceFile {
            path: path.to_string(),
            role: config.role(path),
            is_test_file: config.is_test_file(path),
            lexed,
            parsed,
            test_spans,
        }
    }

    /// True when `line` is inside test code (a `#[test]`/`#[cfg(test)]`
    /// span, or anywhere in a test-tree file).
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file || self.test_spans.iter().any(|s| s.contains(line))
    }
}

/// One function in the global id space.
pub struct FnSym {
    /// Index into the scanned file list.
    pub file: usize,
    pub item: FnItem,
}

/// All symbols across the scanned files.
pub struct SymbolTable {
    pub fns: Vec<FnSym>,
    /// Function name → global fn ids (sorted map for determinism).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `(file index, enum item)` for every declared enum.
    pub enums: Vec<(usize, EnumItem)>,
    /// Per-file fn ids, parallel to the file list.
    per_file: Vec<Vec<usize>>,
}

impl SymbolTable {
    pub fn build(files: &[SourceFile]) -> SymbolTable {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut enums = Vec::new();
        let mut per_file = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let mut ids = Vec::new();
            for f in &file.parsed.fns {
                let mut item = f.clone();
                if file.is_test_file {
                    item.is_test = true;
                }
                let id = fns.len();
                by_name.entry(item.name.clone()).or_default().push(id);
                fns.push(FnSym { file: fi, item });
                ids.push(id);
            }
            per_file.push(ids);
            for e in &file.parsed.enums {
                let mut item = e.clone();
                if file.is_test_file {
                    item.is_test = true;
                }
                enums.push((fi, item));
            }
        }
        SymbolTable { fns, by_name, enums, per_file }
    }

    /// Global id of the innermost function containing `line` of file
    /// `file`.
    pub fn fn_at(&self, file: usize, line: u32) -> Option<usize> {
        self.per_file
            .get(file)?
            .iter()
            .copied()
            .filter(|&id| self.fns[id].item.span.contains(line))
            .min_by_key(|&id| {
                let s = self.fns[id].item.span;
                s.end - s.start
            })
    }

    /// Fn ids declared in file `file`.
    pub fn fns_in_file(&self, file: usize) -> &[usize] {
        self.per_file.get(file).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolves a `spec` of the form `name` or `Owner::name` to fn ids.
    pub fn resolve_spec(&self, spec: &str) -> Vec<usize> {
        match spec.split_once("::") {
            Some((owner, name)) => self
                .by_name
                .get(name)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| self.fns[id].item.owner.as_deref() == Some(owner))
                        .collect()
                })
                .unwrap_or_default(),
            None => self.by_name.get(spec).cloned().unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        let cfg = Config::default();
        srcs.iter().map(|(p, s)| SourceFile::load(p, s, &cfg)).collect()
    }

    #[test]
    fn flattens_and_resolves() {
        let fs = files(&[
            ("crates/a/src/lib.rs", "impl Server { fn pump(&self) {} }\nfn pump() {}\n"),
            ("crates/b/src/lib.rs", "fn other() {}\npub enum Wire { A, B }\n"),
        ]);
        let syms = SymbolTable::build(&fs);
        assert_eq!(syms.fns.len(), 3);
        assert_eq!(syms.by_name["pump"].len(), 2);
        assert_eq!(syms.resolve_spec("Server::pump").len(), 1);
        assert_eq!(syms.resolve_spec("pump").len(), 2);
        assert_eq!(syms.enums.len(), 1);
        assert_eq!(syms.enums[0].1.variants.len(), 2);
    }

    #[test]
    fn test_tree_files_mark_everything_test() {
        let fs = files(&[("crates/a/tests/it.rs", "fn helper() {}\n")]);
        let syms = SymbolTable::build(&fs);
        assert!(syms.fns[0].item.is_test);
        assert!(fs[0].in_test(1));
    }
}
