//! A minimal hand-rolled Rust lexer.
//!
//! detlint's rules match on token *sequences* (`. unwrap (`,
//! `std :: env`, `HashMap <`), so the lexer only needs to classify
//! tokens and attribute them to lines — no spans, no keywords, no
//! precedence. What it must get right is everything that would make a
//! naive regex scanner lie: comments (line, nested block), string
//! literals in all their forms (cooked, raw, byte, C), char literals
//! vs. lifetimes, and raw identifiers. A mention of `unwrap()` inside
//! a doc comment or a string must never produce a diagnostic.
//!
//! Comments are not discarded: suppression directives
//! (`// detlint::allow(...)`) live in them, so they are returned
//! alongside the token stream with a flag saying whether the comment
//! trails code on its own line.

/// What a token is; only as much classification as the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the engine doesn't care which).
    Ident(String),
    /// Punctuation. Single characters, except `::` which is fused so
    /// path rules can match `std :: env` in three tokens.
    Punct(String),
    /// Any string literal (cooked, raw, byte, C). Contents dropped.
    Str,
    /// A char literal.
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`).
    Life,
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub line: u32,
    pub kind: TokKind,
}

/// One comment (line or block) with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    /// Comment body, without the `//` / `/*` markers.
    pub text: String,
    /// True when code tokens precede the comment on the same line
    /// (a trailing comment suppresses findings on its own line;
    /// a standalone one suppresses the next code line).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`. Never fails: unterminated constructs simply run to end
/// of file — a file that far gone won't compile, and rustc owns that
/// diagnostic.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    // Line of the most recent token, to mark trailing comments.
    let mut last_tok_line = 0u32;

    let at = |i: usize| chars.get(i).copied();

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && at(i + 1) == Some('/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..j].iter().collect(),
                trailing: last_tok_line == line,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && at(i + 1) == Some('*') {
            let start_line = line;
            let trailing = last_tok_line == line;
            let start = i + 2;
            let mut j = start;
            let mut depth = 1u32;
            while j < chars.len() && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && at(j + 1) == Some('*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && at(j + 1) == Some('/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..end].iter().collect(),
                trailing,
            });
            i = j;
            continue;
        }
        // Cooked string literal (also reached for `b"…"` / `c"…"` via
        // the identifier branch below).
        if c == '"' {
            i = skip_cooked_string(&chars, i, &mut line);
            out.tokens.push(Token { line, kind: TokKind::Str });
            last_tok_line = line;
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let (j, kind) = lex_quote(&chars, i);
            out.tokens.push(Token { line, kind });
            last_tok_line = line;
            i = j;
            continue;
        }
        // Identifier — with raw-string / byte-string / raw-ident
        // lookahead for the `r` / `b` / `c` prefixes.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            let word: String = chars[i..j].iter().collect();
            match word.as_str() {
                // Raw string candidates: r"…", r#"…"#, br#"…"#, cr"…".
                "r" | "br" | "rb" | "cr" if matches!(at(j), Some('"') | Some('#')) => {
                    if let Some(end) = skip_raw_string(&chars, j, &mut line) {
                        out.tokens.push(Token { line, kind: TokKind::Str });
                        last_tok_line = line;
                        i = end;
                        continue;
                    }
                    // `r#ident`: fall through — push `r`, rescan from `#`,
                    // which the raw-ident arm below handles.
                    if word == "r" && at(j) == Some('#') {
                        // raw identifier r#foo
                        let mut k = j + 1;
                        if k < chars.len() && is_ident_start(chars[k]) {
                            while k < chars.len() && is_ident_continue(chars[k]) {
                                k += 1;
                            }
                            let raw: String = chars[j + 1..k].iter().collect();
                            out.tokens.push(Token { line, kind: TokKind::Ident(raw) });
                            last_tok_line = line;
                            i = k;
                            continue;
                        }
                    }
                    out.tokens.push(Token { line, kind: TokKind::Ident(word) });
                    last_tok_line = line;
                    i = j;
                    continue;
                }
                // Cooked byte / C strings: b"…", c"…".
                "b" | "c" if at(j) == Some('"') => {
                    i = skip_cooked_string(&chars, j, &mut line);
                    out.tokens.push(Token { line, kind: TokKind::Str });
                    last_tok_line = line;
                    continue;
                }
                // Byte char: b'x'.
                "b" if at(j) == Some('\'') => {
                    let (end, _) = lex_quote(&chars, j);
                    out.tokens.push(Token { line, kind: TokKind::Char });
                    last_tok_line = line;
                    i = end;
                    continue;
                }
                _ => {
                    out.tokens.push(Token { line, kind: TokKind::Ident(word) });
                    last_tok_line = line;
                    i = j;
                    continue;
                }
            }
        }
        // Number. Loose: consume alphanumerics/underscores, plus a
        // decimal point only when a digit follows (so `0..8` stays a
        // number and a range, and `1.x` method calls stay calls).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            loop {
                match at(j) {
                    Some(d) if d.is_alphanumeric() || d == '_' => j += 1,
                    Some('.')
                        if at(j + 1).map(|d| d.is_ascii_digit()).unwrap_or(false)
                            && at(j - 1) != Some('.') =>
                    {
                        j += 1
                    }
                    _ => break,
                }
            }
            out.tokens.push(Token { line, kind: TokKind::Num });
            last_tok_line = line;
            i = j;
            continue;
        }
        // Punctuation; fuse `::`.
        if c == ':' && at(i + 1) == Some(':') {
            out.tokens.push(Token { line, kind: TokKind::Punct("::".into()) });
            last_tok_line = line;
            i += 2;
            continue;
        }
        out.tokens.push(Token { line, kind: TokKind::Punct(c.to_string()) });
        last_tok_line = line;
        i += 1;
    }
    out
}

/// Skips a cooked string starting at the opening quote `chars[open]`;
/// returns the index just past the closing quote, bumping `line` for
/// embedded newlines.
fn skip_cooked_string(chars: &[char], open: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Tries to skip a raw string whose `#`s (possibly none) start at
/// `chars[from]`. Returns `None` if this isn't a raw string after all
/// (e.g. `r#ident`).
fn skip_raw_string(chars: &[char], from: usize, line: &mut u32) -> Option<usize> {
    let mut hashes = 0usize;
    let mut j = from;
    while j < chars.len() && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
        } else if chars[j] == '"' {
            let mut k = 0usize;
            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return Some(j + 1 + hashes);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    Some(j)
}

/// Disambiguates `'a'` (char), `'\n'` (char) and `'a` (lifetime),
/// starting at the quote. Returns (index past the token, kind).
fn lex_quote(chars: &[char], open: usize) -> (usize, TokKind) {
    let next = chars.get(open + 1).copied();
    match next {
        // Escape: definitely a char literal; scan to the closing quote.
        Some('\\') => {
            let mut j = open + 2;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => return (j + 1, TokKind::Char),
                    _ => j += 1,
                }
            }
            (j, TokKind::Char)
        }
        // Identifier-ish start: lifetime unless a quote immediately
        // follows the single character ('a' vs 'a).
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            if chars.get(open + 2) == Some(&'\'') {
                (open + 3, TokKind::Char)
            } else {
                let mut j = open + 2;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                (j, TokKind::Life)
            }
        }
        // Any other char followed by a quote: char literal like '('.
        Some(_) if chars.get(open + 2) == Some(&'\'') => (open + 3, TokKind::Char),
        // Lone quote (macro-land); emit as punctuation to keep going.
        _ => (open + 1, TokKind::Punct("'".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // unwrap() here is fine\n/* Instant */ let y = 2;");
        assert!(idents("let x = 1; // unwrap()").iter().all(|s| s != "unwrap"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing, "block comment starts its line");
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn strings_hide_their_contents() {
        for src in [
            "let s = \"unwrap() Instant\";",
            "let s = r#\"std::env \"quoted\"\"#;",
            "let s = b\"HashMap\";",
            "let s = cr#\"thread_rng\"#;",
        ] {
            let ids = idents(src);
            assert_eq!(ids, vec!["let", "s"], "leaked from {src:?}: {ids:?}");
        }
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l.tokens.iter().filter(|t| t.kind == TokKind::Life).count();
        let charlits = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(charlits, 2);
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
    }

    #[test]
    fn line_numbers_advance_through_multiline_strings() {
        let l = lex("let a = \"x\ny\";\nlet b = 1;");
        let b_line =
            l.tokens.iter().find(|t| t.kind == TokKind::Ident("b".into())).map(|t| t.line).unwrap();
        assert_eq!(b_line, 3);
    }

    #[test]
    fn double_colon_is_fused() {
        let l = lex("std::env::var");
        let puncts: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Punct(p) => Some(p.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["::", "::"]);
    }

    #[test]
    fn ranges_are_not_floats() {
        let l = lex("&blob[0..8]");
        let nums = l.tokens.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 2);
    }
}
