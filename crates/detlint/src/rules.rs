//! The rule catalog: ids, one-line titles, and fix hints.
//!
//! Three families (DESIGN.md §6 carries the long-form rationale):
//!
//! * **D — determinism hazards.** The simulation's correctness story
//!   (linearizability checks, the golden FNV-1a delivered-command
//!   hash, bit-identical parallel sweeps) requires every replica-side
//!   computation to be a pure function of the seed. Wall clocks, OS
//!   entropy, environment reads and randomly-keyed hash containers
//!   all smuggle per-process state into that function.
//! * **P — protocol-handler hygiene.** Message-delivery and on-wire
//!   decode paths run against peer-controlled input under the nemesis
//!   (crashes, replays, reordering). A `panic!` there takes down a
//!   replica; the protocol is designed to degrade by dropping and
//!   counting instead.
//! * **S — suppression governance.** Findings are silenced only by an
//!   inline `// detlint::allow(<rule>): <justification>` directive;
//!   the justification is mandatory and unused directives are errors,
//!   so suppressions cannot rot.

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub title: &'static str,
    pub hint: &'static str,
}

/// Every rule detlint knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        title: "wall-clock time (`Instant`/`SystemTime`) in simulation-facing code",
        hint: "use the simulated clock (`SimTime` via `Ctx`/`now`) so runs replay from the seed",
    },
    RuleInfo {
        id: "D002",
        title: "OS entropy (`thread_rng`/`OsRng`/`from_entropy`/`getrandom`) in simulation-facing code",
        hint: "derive randomness from the run seed (`StdRng::seed_from_u64`) threaded through config",
    },
    RuleInfo {
        id: "D003",
        title: "`std::env` read in simulation-facing code",
        hint: "route configuration through SimConfig/ClusterConfig so a run is fully described by its inputs",
    },
    RuleInfo {
        id: "D004",
        title: "`thread::sleep` in simulation-facing code",
        hint: "schedule a timer on the simulated clock instead of blocking the OS thread",
    },
    RuleInfo {
        id: "D005",
        title: "default-`RandomState` `HashMap`/`HashSet` in simulation-facing code",
        hint: "use `runtime::hash::{FastHashMap,FastHashSet}` or a `BTreeMap`, and sort before any effect-emitting iteration",
    },
    RuleInfo {
        id: "P001",
        title: "`.unwrap()` on a protocol message-delivery/decode path",
        hint: "degrade gracefully: drop the message, bump a counter, and let retransmission recover",
    },
    RuleInfo {
        id: "P002",
        title: "`.expect()` on a protocol message-delivery/decode path",
        hint: "degrade gracefully: drop the message, bump a counter, and let retransmission recover",
    },
    RuleInfo {
        id: "P003",
        title: "panic-family macro (`panic!`/`unreachable!`/`todo!`/`unimplemented!`) on a protocol path",
        hint: "return an error or drop-and-count; a replica must survive malformed or replayed input",
    },
    RuleInfo {
        id: "P004",
        title: "slice/array indexing inside an on-wire decode function",
        hint: "use `get(..)`/`split_at_checked`/`try_into` with an error path; wire input controls these offsets",
    },
    RuleInfo {
        id: "W001",
        title: "direct IO-primitive use in a protocol-crate function (weld to the host environment)",
        hint: "route clocks/spawning/channels/entropy through the runtime facade; this entry is on the sans-IO work-list in results/weld_map.json",
    },
    RuleInfo {
        id: "W002",
        title: "protocol-crate function transitively reaches an IO weld through the call graph",
        hint: "cut the weld in the named callee (see results/weld_map.json), or invert the dependency so IO stays behind the runtime facade",
    },
    RuleInfo {
        id: "W003",
        title: "IO-module import (`std::{net,fs,process,thread}`, `mpsc`, `crossbeam`, wall-clock types) in a protocol crate",
        hint: "import the runtime facade instead; IO types in signatures weld the protocol core to one host environment",
    },
    RuleInfo {
        id: "T001",
        title: "wire-enum variant never constructed or matched in non-test code",
        hint: "dead protocol surface: remove the variant or wire up its send path",
    },
    RuleInfo {
        id: "T002",
        title: "catch-all arm in a wire-enum match inside a designated handler",
        hint: "enumerate the remaining variants (drop-and-count each explicitly) so adding a variant fails the build instead of vanishing",
    },
    RuleInfo {
        id: "T003",
        title: "wire-enum variant with no test coverage",
        hint: "mention the variant in a test (decode/roundtrip or handler-path) so its wire path cannot silently rot",
    },
    RuleInfo {
        id: "X001",
        title: "unordered hash container in an exec-scheduler-reachable function",
        hint: "scheduler decisions must not depend on hash-iteration order; use Vec/VecDeque/BTreeMap",
    },
    RuleInfo {
        id: "X002",
        title: "shared-mutability primitive in an exec-scheduler-reachable function",
        hint: "thread scheduler state through &mut self; shared mutable state breaks replica bit-identity",
    },
    RuleInfo {
        id: "S001",
        title: "malformed `detlint::allow` directive or missing justification",
        hint: "write `// detlint::allow(RULE): why this occurrence is sound`",
    },
    RuleInfo {
        id: "S002",
        title: "unused `detlint::allow` directive",
        hint: "delete the directive; it no longer suppresses anything",
    },
    RuleInfo {
        id: "S003",
        title: "unknown rule id in `detlint::allow` directive",
        hint: "use an id from `detlint --list-rules`",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// True if `id` names a suppressible rule (S rules are about the
/// directives themselves and cannot be suppressed by one).
pub fn suppressible(id: &str) -> bool {
    rule(id).is_some() && !id.starts_with('S')
}
