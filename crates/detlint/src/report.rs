//! Rendering: a human-readable aligned table and a machine-readable
//! JSON document (both hand-rolled — the analyzer carries no deps).

use crate::engine::Finding;

/// Scan totals alongside the findings.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stats {
    pub files_scanned: usize,
    pub suppressed: usize,
    pub directives: usize,
}

/// Renders the human table: one `file:line  RULE  message` row per
/// finding plus an indented hint, then a summary line.
pub fn render_human(findings: &[Finding], stats: Stats) -> String {
    let mut out = String::new();
    let loc_width = findings.iter().map(|f| f.file.len() + 1 + digits(f.line)).max().unwrap_or(0);
    for f in findings {
        let loc = format!("{}:{}", f.file, f.line);
        out.push_str(&format!("{loc:<loc_width$}  {}  {}\n", f.rule, f.message));
        out.push_str(&format!("{:loc_width$}        hint: {}\n", "", f.hint));
    }
    let verdict = if findings.is_empty() { "clean" } else { "FAIL" };
    out.push_str(&format!(
        "detlint: {} — {} finding(s), {} suppressed by {} directive(s), {} file(s) scanned\n",
        verdict,
        findings.len(),
        stats.suppressed,
        stats.directives,
        stats.files_scanned,
    ));
    out
}

/// Renders the JSON document consumed by CI.
pub fn render_json(findings: &[Finding], stats: Stats) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
            json_str(f.hint),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"summary\": {{\"findings\": {}, \"suppressed\": {}, \"directives\": {}, \"files_scanned\": {}, \"clean\": {}}}\n}}\n",
        findings.len(),
        stats.suppressed,
        stats.directives,
        stats.files_scanned,
        findings.is_empty(),
    ));
    out
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            file: "crates/x/src/a.rs".into(),
            line: 7,
            rule: "D001",
            message: "`Instant` is wall-clock time".into(),
            hint: "use SimTime",
        }]
    }

    #[test]
    fn human_table_mentions_everything() {
        let s = render_human(&sample(), Stats { files_scanned: 3, suppressed: 1, directives: 2 });
        assert!(s.contains("crates/x/src/a.rs:7"));
        assert!(s.contains("D001"));
        assert!(s.contains("hint: use SimTime"));
        assert!(s.contains("FAIL"));
        let clean = render_human(&[], Stats::default());
        assert!(clean.contains("clean"));
    }

    #[test]
    fn json_escapes_and_reports_clean_flag() {
        let mut f = sample();
        f[0].message = "quote \" and \\ backslash".into();
        let s = render_json(&f, Stats::default());
        assert!(s.contains(r#"quote \" and \\ backslash"#));
        assert!(s.contains("\"clean\": false"));
        let s = render_json(&[], Stats::default());
        assert!(s.contains("\"clean\": true"));
    }
}
