//! Rendering: a human-readable aligned table, a machine-readable
//! JSON document, and the weld-map JSON (all hand-rolled — the
//! analyzer carries no deps).

use crate::engine::Finding;
use crate::weld::Weld;

/// Scan totals alongside the findings.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stats {
    pub files_scanned: usize,
    pub suppressed: usize,
    pub directives: usize,
}

/// Renders the human table: one `file:line  RULE  message` row per
/// finding plus an indented hint, then a summary line.
pub fn render_human(findings: &[Finding], stats: Stats) -> String {
    let mut out = String::new();
    let loc_width = findings.iter().map(|f| f.file.len() + 1 + digits(f.line)).max().unwrap_or(0);
    for f in findings {
        let loc = format!("{}:{}", f.file, f.line);
        out.push_str(&format!("{loc:<loc_width$}  {}  {}\n", f.rule, f.message));
        out.push_str(&format!("{:loc_width$}        hint: {}\n", "", f.hint));
    }
    let verdict = if findings.is_empty() { "clean" } else { "FAIL" };
    out.push_str(&format!(
        "detlint: {} — {} finding(s), {} suppressed by {} directive(s), {} file(s) scanned\n",
        verdict,
        findings.len(),
        stats.suppressed,
        stats.directives,
        stats.files_scanned,
    ));
    out
}

/// Renders the JSON document consumed by CI.
pub fn render_json(findings: &[Finding], stats: Stats) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
            json_str(f.hint),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"summary\": {{\"findings\": {}, \"suppressed\": {}, \"directives\": {}, \"files_scanned\": {}, \"clean\": {}}}\n}}\n",
        findings.len(),
        stats.suppressed,
        stats.directives,
        stats.files_scanned,
        findings.is_empty(),
    ));
    out
}

/// Renders `results/weld_map.json` — the work-list and ratchet for
/// the sans-IO refactor. Entries are sorted by (file, line, rule)
/// upstream so the file is byte-stable across runs; `count` includes
/// suppressed (justified) welds, because the ratchet bounds the total
/// IO surface, not just the unjustified part.
pub fn render_weld_map(welds: &[Weld]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"welds\": [");
    for (i, w) in welds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let prims: Vec<String> = w.primitives.iter().map(|p| json_str(p)).collect();
        out.push_str(&format!(
            "\n    {{\"fn\": {}, \"file\": {}, \"line\": {}, \"rule\": {}, \"primitives\": [{}], \"suppressed\": {}}}",
            json_str(&w.fn_name),
            json_str(&w.file),
            w.line,
            json_str(w.rule),
            prims.join(", "),
            w.suppressed,
        ));
    }
    if !welds.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", welds.len()));
    out
}

/// Extracts the `"count"` field from a weld-map JSON document — the
/// CI ratchet baseline. A tiny scan, not a JSON parser: the document
/// is machine-written by [`render_weld_map`].
pub fn weld_map_count(json: &str) -> Option<usize> {
    let k = json.rfind("\"count\"")?;
    let rest = json[k + 7..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            file: "crates/x/src/a.rs".into(),
            line: 7,
            rule: "D001",
            message: "`Instant` is wall-clock time".into(),
            hint: "use SimTime",
        }]
    }

    #[test]
    fn human_table_mentions_everything() {
        let s = render_human(&sample(), Stats { files_scanned: 3, suppressed: 1, directives: 2 });
        assert!(s.contains("crates/x/src/a.rs:7"));
        assert!(s.contains("D001"));
        assert!(s.contains("hint: use SimTime"));
        assert!(s.contains("FAIL"));
        let clean = render_human(&[], Stats::default());
        assert!(clean.contains("clean"));
    }

    #[test]
    fn weld_map_roundtrips_count() {
        let welds = vec![Weld {
            fn_name: "ThreadedCluster::start".into(),
            file: "crates/core/src/threaded.rs".into(),
            line: 42,
            rule: "W001",
            primitives: vec!["thread::spawn".into(), "Instant".into()],
            suppressed: true,
        }];
        let json = render_weld_map(&welds);
        assert!(json.contains("\"fn\": \"ThreadedCluster::start\""));
        assert!(json.contains("\"suppressed\": true"));
        assert_eq!(weld_map_count(&json), Some(1));
        assert_eq!(weld_map_count(&render_weld_map(&[])), Some(0));
    }

    #[test]
    fn json_escapes_and_reports_clean_flag() {
        let mut f = sample();
        f[0].message = "quote \" and \\ backslash".into();
        let s = render_json(&f, Stats::default());
        assert!(s.contains(r#"quote \" and \\ backslash"#));
        assert!(s.contains("\"clean\": false"));
        let s = render_json(&[], Stats::default());
        assert!(s.contains("\"clean\": true"));
    }
}
