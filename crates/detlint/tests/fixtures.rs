//! Fixture-driven acceptance tests for the analyzer, plus the
//! live-workspace gate.
//!
//! Each `fixtures/bad/*.rs` file pairs with a `.expected` golden of
//! `line rule` entries; drift in either direction fails with a diff
//! you can paste back into the golden. `fixtures/allowed/justified.rs`
//! additionally pins the suppression contract: it scans clean as
//! written, and deleting ANY single directive makes the scan fail —
//! the property the CI gate relies on.

use detlint::{analyze, parse_config, Config};

/// Fixture scan roles, mirroring how detlint.toml assigns the live
/// tree's roles. `clean.rs` and `justified.rs` get BOTH roles so they
/// prove cleanliness against every rule family at once.
fn fixture_config() -> Config {
    let toml = r#"
sim = [
    "fixtures/bad/determinism.rs",
    "fixtures/bad/suppress.rs",
    "fixtures/good/clean.rs",
    "fixtures/allowed/justified.rs",
]
protocol = [
    "fixtures/bad/protocol.rs",
    "fixtures/good/clean.rs",
    "fixtures/allowed/justified.rs",
]
skip = []
"#;
    parse_config(toml, Config::default()).expect("fixture config parses")
}

fn fixture_src(rel: &str) -> String {
    let path = format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn scan(rel: &str) -> detlint::FileReport {
    analyze(rel, &fixture_src(rel), &fixture_config())
}

fn check_golden(rel: &str) {
    let actual: Vec<String> =
        scan(rel).findings.iter().map(|f| format!("{} {}", f.line, f.rule)).collect();
    let golden_rel = rel.replace(".rs", ".expected");
    let expected: Vec<String> = fixture_src(&golden_rel)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    assert_eq!(
        actual,
        expected,
        "\n{rel} drifted from {golden_rel}; actual findings were:\n{}\n",
        actual.join("\n")
    );
}

#[test]
fn determinism_fixture_matches_golden() {
    check_golden("fixtures/bad/determinism.rs");
}

#[test]
fn protocol_fixture_matches_golden() {
    check_golden("fixtures/bad/protocol.rs");
}

#[test]
fn suppress_fixture_matches_golden() {
    check_golden("fixtures/bad/suppress.rs");
}

#[test]
fn clean_fixture_is_clean() {
    let report = scan("fixtures/good/clean.rs");
    assert!(report.findings.is_empty(), "unexpected findings: {:?}", report.findings);
    assert_eq!(report.directives, 0, "clean fixture must not need directives");
}

#[test]
fn justified_fixture_is_suppressed_clean() {
    let report = scan("fixtures/allowed/justified.rs");
    assert!(report.findings.is_empty(), "unexpected findings: {:?}", report.findings);
    assert!(report.suppressed >= 4, "expected several suppressed findings");
    assert_eq!(report.directives, 4);
}

/// The governance property end to end: every directive in the allowed
/// fixture is load-bearing. Deleting any ONE of them re-surfaces a
/// finding (or trips S002 on a now-dangling sibling), so a scan of the
/// edited file is non-clean — which is exit code 1 at the CLI.
#[test]
fn deleting_any_suppression_fails_the_scan() {
    let rel = "fixtures/allowed/justified.rs";
    let src = fixture_src(rel);
    let directive_lines: Vec<usize> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("// detlint::allow"))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(directive_lines.len(), 4, "fixture should carry 4 directives");
    for &del in &directive_lines {
        let edited: String = src
            .lines()
            .enumerate()
            .filter(|&(i, _)| i != del)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let report = analyze(rel, &edited, &fixture_config());
        assert!(
            !report.findings.is_empty(),
            "deleting the directive on line {} left the scan clean — \
             that suppression was not load-bearing",
            del + 1
        );
    }
}

/// The live tree must scan clean with the checked-in config — the same
/// gate CI runs via `cargo run -p detlint`. Running it as a test means
/// `cargo test` alone catches a regression.
#[test]
fn live_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/detlint")
        .to_path_buf();
    let config = detlint::load_config(&root).expect("detlint.toml loads");
    let scan = detlint::scan_workspace(&root, &config).expect("workspace scans");
    assert!(
        scan.clean(),
        "live workspace has {} detlint finding(s); run `cargo run -p detlint` for the report:\n{}",
        scan.findings.len(),
        scan.findings
            .iter()
            .map(|f| format!("  {}:{} {}", f.file, f.line, f.rule))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
