//! Fixture-driven acceptance tests for the analyzer, plus the
//! live-workspace gate.
//!
//! Each `fixtures/bad/*.rs` file pairs with a `.expected` golden of
//! `line rule` entries; drift in either direction fails with a diff
//! you can paste back into the golden. `fixtures/allowed/justified.rs`
//! additionally pins the suppression contract: it scans clean as
//! written, and deleting ANY single directive makes the scan fail —
//! the property the CI gate relies on.

use detlint::{analyze, parse_config, Config};

/// Fixture scan roles, mirroring how detlint.toml assigns the live
/// tree's roles. `clean.rs` and `justified.rs` get BOTH roles so they
/// prove cleanliness against every rule family at once.
fn fixture_config() -> Config {
    let toml = r#"
sim = [
    "fixtures/bad/determinism.rs",
    "fixtures/bad/suppress.rs",
    "fixtures/good/clean.rs",
    "fixtures/allowed/justified.rs",
]
protocol = [
    "fixtures/bad/protocol.rs",
    "fixtures/good/clean.rs",
    "fixtures/allowed/justified.rs",
]
skip = []
"#;
    parse_config(toml, Config::default()).expect("fixture config parses")
}

fn fixture_src(rel: &str) -> String {
    let path = format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn scan(rel: &str) -> detlint::FileReport {
    analyze(rel, &fixture_src(rel), &fixture_config())
}

fn check_golden(rel: &str) {
    let actual: Vec<String> =
        scan(rel).findings.iter().map(|f| format!("{} {}", f.line, f.rule)).collect();
    let golden_rel = rel.replace(".rs", ".expected");
    let expected: Vec<String> = fixture_src(&golden_rel)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    assert_eq!(
        actual,
        expected,
        "\n{rel} drifted from {golden_rel}; actual findings were:\n{}\n",
        actual.join("\n")
    );
}

#[test]
fn determinism_fixture_matches_golden() {
    check_golden("fixtures/bad/determinism.rs");
}

#[test]
fn protocol_fixture_matches_golden() {
    check_golden("fixtures/bad/protocol.rs");
}

#[test]
fn suppress_fixture_matches_golden() {
    check_golden("fixtures/bad/suppress.rs");
}

#[test]
fn clean_fixture_is_clean() {
    let report = scan("fixtures/good/clean.rs");
    assert!(report.findings.is_empty(), "unexpected findings: {:?}", report.findings);
    assert_eq!(report.directives, 0, "clean fixture must not need directives");
}

#[test]
fn justified_fixture_is_suppressed_clean() {
    let report = scan("fixtures/allowed/justified.rs");
    assert!(report.findings.is_empty(), "unexpected findings: {:?}", report.findings);
    assert!(report.suppressed >= 4, "expected several suppressed findings");
    assert_eq!(report.directives, 4);
}

/// The governance property end to end: every directive in the allowed
/// fixture is load-bearing. Deleting any ONE of them re-surfaces a
/// finding (or trips S002 on a now-dangling sibling), so a scan of the
/// edited file is non-clean — which is exit code 1 at the CLI.
#[test]
fn deleting_any_suppression_fails_the_scan() {
    let rel = "fixtures/allowed/justified.rs";
    let src = fixture_src(rel);
    let directive_lines: Vec<usize> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("// detlint::allow"))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(directive_lines.len(), 4, "fixture should carry 4 directives");
    for &del in &directive_lines {
        let edited: String = src
            .lines()
            .enumerate()
            .filter(|&(i, _)| i != del)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let report = analyze(rel, &edited, &fixture_config());
        assert!(
            !report.findings.is_empty(),
            "deleting the directive on line {} left the scan clean — \
             that suppression was not load-bearing",
            del + 1
        );
    }
}

// ---------------------------------------------------------------
// Cross-file rule families (W / T / X / P-reachability). Each family
// scans its own fixture set with a config that enables only that
// family, and pins a `file line rule` golden.
// ---------------------------------------------------------------

/// Scans a fixture set with a family-specific config. Keys absent from
/// the TOML keep their compiled-in defaults, so each family config
/// explicitly empties the lists that would enable the other families.
fn scan_set(rels: &[&str], toml: &str) -> detlint::ScanReport {
    let config = parse_config(toml, Config::default()).expect("family config parses");
    let sources: Vec<(String, String)> =
        rels.iter().map(|r| ((*r).to_string(), fixture_src(r))).collect();
    detlint::scan_sources(&sources, &config)
}

fn check_set_golden(report: &detlint::ScanReport, golden_rel: &str) {
    let actual: Vec<String> =
        report.findings.iter().map(|f| format!("{} {} {}", f.file, f.line, f.rule)).collect();
    let expected: Vec<String> = fixture_src(golden_rel)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    assert_eq!(
        actual,
        expected,
        "\nfixture set drifted from {golden_rel}; actual findings were:\n{}\n",
        actual.join("\n")
    );
}

const WELD_TOML: &str = r#"
sim = []
protocol = []
wire_enums = []
scheduler_roots = []
weld_scope = ["fixtures/weld/**"]
weld_facade = ["fixtures/weld/facade.rs"]
"#;

#[test]
fn weld_fixture_matches_golden() {
    let report = scan_set(&["fixtures/weld/core.rs", "fixtures/weld/facade.rs"], WELD_TOML);
    check_set_golden(&report, "fixtures/weld/set.expected");
    // Suppressed welds still land in the weld map (the ratchet bounds
    // the *total* IO surface), flagged as governed.
    let suppressed: Vec<&str> =
        report.welds.iter().filter(|w| w.suppressed).map(|w| w.rule).collect();
    assert_eq!(suppressed, ["W001", "W002"], "welds: {:?}", report.welds);
    assert!(report.welds.len() > suppressed.len(), "unsuppressed welds must also appear");
    assert!(
        report.welds.iter().all(|w| !w.file.contains("facade")),
        "facade files must never produce welds: {:?}",
        report.welds
    );
}

const TOTALITY_TOML: &str = r#"
sim = []
protocol = []
weld_scope = []
scheduler_roots = []
wire_enums = ["Payload"]
handler_fns = ["on_deliver", "on_direct"]
"#;

#[test]
fn totality_fixture_matches_golden() {
    let report = scan_set(&["fixtures/totality/wire.rs"], TOTALITY_TOML);
    check_set_golden(&report, "fixtures/totality/set.expected");
}

const SCHED_TOML: &str = r#"
sim = []
protocol = []
weld_scope = []
wire_enums = []
scheduler_roots = ["Sched::run"]
scheduler_scope = ["fixtures/sched/sched.rs"]
"#;

#[test]
fn sched_fixture_matches_golden() {
    let report = scan_set(&["fixtures/sched/sched.rs"], SCHED_TOML);
    check_set_golden(&report, "fixtures/sched/set.expected");
    assert!(
        !report.findings.iter().any(|f| f.line > 33),
        "helpers unreachable from the scheduler roots must not be flagged: {:?}",
        report.findings
    );
}

const REACH_TOML: &str = r#"
sim = []
weld_scope = []
wire_enums = []
scheduler_roots = []
protocol = ["fixtures/reach/proto.rs"]
protocol_entries = ["on_message"]
"#;

#[test]
fn reachability_fixture_matches_golden() {
    let report = scan_set(&["fixtures/reach/proto.rs"], REACH_TOML);
    check_set_golden(&report, "fixtures/reach/set.expected");
    let s002 = report
        .findings
        .iter()
        .find(|f| f.rule == "S002")
        .expect("the out-of-cone suppression must be flagged stale");
    assert!(
        s002.message.contains("not reachable"),
        "S002 should explain WHY the directive is stale: {}",
        s002.message
    );
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/detlint")
        .to_path_buf()
}

/// The live tree must scan clean with the checked-in config — the same
/// gate CI runs via `cargo run -p detlint`. Running it as a test means
/// `cargo test` alone catches a regression.
#[test]
fn live_workspace_is_clean() {
    let root = workspace_root();
    let config = detlint::load_config(&root).expect("detlint.toml loads");
    let scan = detlint::scan_workspace(&root, &config).expect("workspace scans");
    assert!(
        scan.clean(),
        "live workspace has {} detlint finding(s); run `cargo run -p detlint` for the report:\n{}",
        scan.findings.len(),
        scan.findings
            .iter()
            .map(|f| format!("  {}:{} {}", f.file, f.line, f.rule))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The committed `results/weld_map.json` must match what the tree
/// actually produces — it is the sans-IO work-list and the CI
/// ratchet's baseline, so drift in either direction is a failure.
/// Regenerate with `cargo run -p detlint -- --weld-map results/weld_map.json`.
#[test]
fn committed_weld_map_is_current() {
    let root = workspace_root();
    let config = detlint::load_config(&root).expect("detlint.toml loads");
    let scan = detlint::scan_workspace(&root, &config).expect("workspace scans");
    let rendered = detlint::render_weld_map(&scan.welds);
    let committed = std::fs::read_to_string(root.join("results/weld_map.json"))
        .expect("results/weld_map.json is committed");
    assert_eq!(
        rendered.trim(),
        committed.trim(),
        "results/weld_map.json is stale; regenerate with \
         `cargo run -p detlint -- --weld-map results/weld_map.json`"
    );
    let count = detlint::weld_map_count(&committed).expect("weld map carries a count");
    assert_eq!(count, scan.welds.len(), "committed count must match the weld list");
}
