//! Zipfian sampling.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipfian distribution over `{0, …, n-1}` with skew `theta`, sampled in
/// O(1) using the Gray et al. method (the same YCSB uses).
///
/// Rank 0 is the most popular element. The paper's social-network
/// experiments use ρ = 0.95.
///
/// # Example
///
/// ```
/// use dynastar_workloads::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(1000, 0.95);
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `{0, …, n-1}` with skew `theta ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf { n, theta, alpha, zetan, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n, Euler–Maclaurin approximation beyond.
        const EXACT: u64 = 10_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            let a = EXACT as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `{0, …, n-1}` (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Unused accessor kept for completeness of the distribution's
    /// parameters (`ζ(2, θ)`).
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(100, 0.95);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(10_000, 0.95);
        let mut rng = StdRng::seed_from_u64(1);
        let mut top10 = 0;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // With theta=0.95 over 10k elements, the top-10 should absorb a
        // large minority of all draws (~39% analytically).
        let frac = top10 as f64 / N as f64;
        assert!(frac > 0.25, "top-10 fraction {frac}");
    }

    #[test]
    fn lower_theta_is_less_skewed() {
        let hot = Zipf::new(1000, 0.95);
        let mild = Zipf::new(1000, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let count_hot: usize = (0..20_000).filter(|_| hot.sample(&mut rng) == 0).count();
        let count_mild: usize = (0..20_000).filter(|_| mild.sample(&mut rng) == 0).count();
        assert!(count_hot > count_mild * 2, "hot={count_hot} mild={count_mild}");
    }

    #[test]
    fn big_domain_uses_approximate_zeta() {
        let z = Zipf::new(10_000_000, 0.95);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_domain_rejected() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_rejected() {
        let _ = Zipf::new(10, 1.5);
    }
}
