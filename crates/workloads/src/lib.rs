//! # dynastar-workloads
//!
//! The two benchmarks the DynaStar paper evaluates with, plus the data
//! generators they need:
//!
//! * [`tpcc`] — an in-memory implementation of the TPC-C order-processing
//!   benchmark (9 tables, 5 transaction types at the standard 45/43/4/4/4
//!   mix), mapped onto DynaStar objects exactly as §5.3 describes: every
//!   district (with its orders and customers) and every warehouse (with its
//!   stock) is a workload-graph vertex.
//! * [`chirper`] — the paper's Twitter-like social network (§5.4): post,
//!   follow, unfollow and read-timeline commands over a per-user timeline.
//! * [`socialgraph`] — a Barabási–Albert preferential-attachment generator
//!   standing in for the Higgs Twitter dataset (see DESIGN.md for the
//!   substitution argument), plus celebrity injection for the dynamic
//!   workload experiment (Figure 6).
//! * [`zipf`] — the Zipfian sampler (ρ = 0.95 in the paper) used to pick
//!   active users.
//! * [`placement`] — initial-placement helpers: random (DynaStar's t=0
//!   state), aligned, and partitioner-optimized (S-SMR\*'s offline METIS
//!   step).
//! * [`scenarios`] — adversarial scenario generators for the robustness
//!   suite: flash crowds, diurnal hot-spot rotation, Zipf-parameter ramps
//!   and membership-churn nemesis presets.

#![forbid(unsafe_code)]

pub mod chirper;
pub mod placement;
pub mod scenarios;
pub mod socialgraph;
pub mod tpcc;
pub mod zipf;

pub use chirper::{Chirper, ChirperOp, ChirperReply, ChirperUser, ChirperWorkload};
pub use scenarios::{churn_nemesis, flash_crowd, DiurnalRotation, ScenarioWorkload, ZipfRamp};
pub use socialgraph::SocialGraph;
pub use zipf::Zipf;
