//! Chirper: the paper's Twitter-like social network service (§5.4).
//!
//! Every user is one DynaStar variable *and* one locality key (workload-
//! graph vertex), exactly as in the paper. Users post 140-character
//! messages; a post is written to the timeline of every follower, so posts
//! by well-followed users are multi-partition commands. Reading one's own
//! timeline touches only one's own variable and is always single-partition.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use dynastar_core::{AccessSets, Application, Command, CommandKind, LocKey, VarId, Workload};
use dynastar_runtime::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

use crate::socialgraph::SocialGraph;
use crate::zipf::Zipf;

/// Maximum posts retained per timeline.
pub const TIMELINE_CAP: usize = 50;

/// Maximum characters per post (like the original Twitter limit the paper
/// cites).
pub const POST_CAP: usize = 140;

/// One post: author and (truncated) text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Post {
    /// The author's user id.
    pub author: u64,
    /// The message (≤ 140 chars).
    pub text: String,
}

/// A user's replicated state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChirperUser {
    /// Posts from people this user follows (newest last), capped at
    /// [`TIMELINE_CAP`].
    pub timeline: VecDeque<Post>,
    /// Whom this user follows.
    pub follows: Vec<u64>,
    /// Who follows this user.
    pub followers: Vec<u64>,
}

/// Chirper operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChirperOp {
    /// Read own timeline (single-partition).
    GetTimeline {
        /// The reading user.
        user: u64,
    },
    /// Post to all followers' timelines (multi-partition when followers
    /// are spread out). The declared vars are the author plus the
    /// followers the *client* believes exist; the authoritative follower
    /// list at the author's variable is intersected with them.
    Post {
        /// The author.
        user: u64,
        /// The message (truncated to [`POST_CAP`]).
        text: String,
    },
    /// `follower` starts following `followee` (≤ 2 partitions).
    Follow {
        /// The follower.
        follower: u64,
        /// The followee.
        followee: u64,
    },
    /// `follower` stops following `followee`.
    Unfollow {
        /// The follower.
        follower: u64,
        /// The followee.
        followee: u64,
    },
}

/// Chirper replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChirperReply {
    /// The requested timeline (newest last).
    Timeline(Vec<Post>),
    /// Number of follower timelines the post reached.
    Posted(usize),
    /// Follow/unfollow acknowledged.
    FollowOk,
    /// The referenced user does not exist.
    NoSuchUser,
}

/// The Chirper application (implements [`Application`]).
#[derive(Debug, Clone, Copy)]
pub struct Chirper;

impl Chirper {
    /// The variable holding `user`'s state.
    pub fn var(user: u64) -> VarId {
        VarId(user)
    }

    /// The locality key of `user` (1:1 with the variable, as in the paper
    /// where each user is a graph vertex).
    pub fn key(user: u64) -> LocKey {
        LocKey(user)
    }
}

impl Application for Chirper {
    type Op = ChirperOp;
    /// `Arc`-wrapped so borrowing a user (shipping them to the target
    /// partition and back) is a refcount bump; mutation is copy-on-write.
    type Value = Arc<ChirperUser>;
    type Reply = ChirperReply;

    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }

    fn classify(op: &ChirperOp, vars: &[VarId]) -> AccessSets {
        match op {
            // Timelines are read in place: two reads never conflict, so
            // the dominant command in the paper's mixes parallelizes.
            ChirperOp::GetTimeline { .. } => AccessSets::read_only(vars),
            // A post reads the author's follower list and writes the
            // declared follower timelines. Timing misclassification is
            // harmless (state application stays FIFO), so we keep the
            // author read-only even though a self-follower would also be
            // written through the follower path.
            ChirperOp::Post { user, .. } => {
                let author = Chirper::var(*user);
                AccessSets {
                    reads: vec![author],
                    writes: vars.iter().copied().filter(|v| *v != author).collect(),
                }
            }
            // Follow/unfollow mutate both endpoints.
            ChirperOp::Follow { .. } | ChirperOp::Unfollow { .. } => AccessSets::write_all(vars),
        }
    }

    fn execute(
        op: &ChirperOp,
        vars: &mut std::collections::BTreeMap<VarId, Option<Arc<ChirperUser>>>,
    ) -> ChirperReply {
        match op {
            ChirperOp::GetTimeline { user } => match vars.get(&Chirper::var(*user)) {
                Some(Some(u)) => ChirperReply::Timeline(u.timeline.iter().cloned().collect()),
                _ => ChirperReply::NoSuchUser,
            },
            ChirperOp::Post { user, text } => {
                let mut text = text.clone();
                text.truncate(POST_CAP);
                let post = Post { author: *user, text };
                // Authoritative follower list lives at the author.
                let followers: Vec<u64> = match vars.get(&Chirper::var(*user)) {
                    Some(Some(u)) => u.followers.clone(),
                    _ => return ChirperReply::NoSuchUser,
                };
                let mut reached = 0;
                for f in followers {
                    // Only followers the client declared are writable.
                    if let Some(Some(fu)) = vars.get_mut(&Chirper::var(f)) {
                        let fu = Arc::make_mut(fu);
                        fu.timeline.push_back(post.clone());
                        if fu.timeline.len() > TIMELINE_CAP {
                            fu.timeline.pop_front();
                        }
                        reached += 1;
                    }
                }
                ChirperReply::Posted(reached)
            }
            ChirperOp::Follow { follower, followee } => {
                // Update both sides if both exist.
                let ok = matches!(vars.get(&Chirper::var(*follower)), Some(Some(_)))
                    && matches!(vars.get(&Chirper::var(*followee)), Some(Some(_)));
                if !ok {
                    return ChirperReply::NoSuchUser;
                }
                if let Some(Some(u)) = vars.get_mut(&Chirper::var(*follower)) {
                    let u = Arc::make_mut(u);
                    if !u.follows.contains(followee) {
                        u.follows.push(*followee);
                    }
                }
                if let Some(Some(u)) = vars.get_mut(&Chirper::var(*followee)) {
                    let u = Arc::make_mut(u);
                    if !u.followers.contains(follower) {
                        u.followers.push(*follower);
                    }
                }
                ChirperReply::FollowOk
            }
            ChirperOp::Unfollow { follower, followee } => {
                if let Some(Some(u)) = vars.get_mut(&Chirper::var(*follower)) {
                    Arc::make_mut(u).follows.retain(|v| v != followee);
                }
                if let Some(Some(u)) = vars.get_mut(&Chirper::var(*followee)) {
                    Arc::make_mut(u).followers.retain(|v| v != follower);
                }
                ChirperReply::FollowOk
            }
        }
    }
}

/// Command-mix weights for [`ChirperWorkload`], in percent.
#[derive(Debug, Clone, Copy)]
pub struct ChirperMix {
    /// Percentage of `GetTimeline` commands.
    pub timeline: u32,
    /// Percentage of `Post` commands.
    pub post: u32,
    /// Percentage of `Follow` commands.
    pub follow: u32,
    /// Percentage of `Unfollow` commands.
    pub unfollow: u32,
}

impl ChirperMix {
    /// The paper's "timeline only" workload.
    pub const TIMELINE_ONLY: ChirperMix =
        ChirperMix { timeline: 100, post: 0, follow: 0, unfollow: 0 };

    /// The paper's "mix" workload: 85% timeline, 15% post.
    pub const MIX: ChirperMix = ChirperMix { timeline: 85, post: 15, follow: 0, unfollow: 0 };

    fn total(&self) -> u32 {
        self.timeline + self.post + self.follow + self.unfollow
    }
}

/// A closed-loop Chirper client workload: picks an active user with a
/// Zipfian distribution and issues commands at the configured mix.
///
/// The follow graph is shared across all clients (wrapped in a mutex) so
/// that follower lists used to declare a post's variables stay coherent;
/// this mirrors a real client reading its social graph from the service.
pub struct ChirperWorkload {
    graph: Arc<Mutex<SocialGraph>>,
    zipf: Zipf,
    mix: ChirperMix,
    /// Optional command budget (`None` = unbounded).
    remaining: Option<u64>,
    /// Celebrity bias: with this probability (percent), a post/follow is
    /// redirected to the celebrity user (Figure 6's dynamic workload).
    celebrity: Option<(u64, u32)>,
    /// The celebrity only becomes active at this time.
    celebrity_after: Option<SimTime>,
    next_post_id: u64,
}

impl ChirperWorkload {
    /// Creates a workload over `graph` with the given user-selection skew
    /// and command mix.
    ///
    /// # Panics
    ///
    /// Panics if the mix percentages do not sum to 100.
    pub fn new(graph: Arc<Mutex<SocialGraph>>, theta: f64, mix: ChirperMix) -> Self {
        assert_eq!(mix.total(), 100, "mix must sum to 100");
        let users = graph.lock().unwrap().users() as u64;
        ChirperWorkload {
            graph,
            zipf: Zipf::new(users, theta),
            mix,
            remaining: None,
            celebrity: None,
            celebrity_after: None,
            next_post_id: 0,
        }
    }

    /// Caps the number of commands issued.
    pub fn with_budget(mut self, commands: u64) -> Self {
        self.remaining = Some(commands);
        self
    }

    /// Redirects `percent`% of post/follow activity to `user` — the
    /// "new celebrity" phase of the paper's dynamic experiment.
    pub fn with_celebrity(mut self, user: u64, percent: u32) -> Self {
        self.celebrity = Some((user, percent));
        self
    }

    /// Delays the celebrity phase until simulated time `at` (Figure 6
    /// introduces the celebrity at t = 200 s).
    pub fn with_celebrity_after(mut self, at: SimTime) -> Self {
        self.celebrity_after = Some(at);
        self
    }

    fn pick_user(&self, rng: &mut StdRng) -> u64 {
        self.zipf.sample(rng)
    }
}

impl Workload<Chirper> for ChirperWorkload {
    fn next_command(&mut self, now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Chirper>> {
        if let Some(rem) = self.remaining.as_mut() {
            if *rem == 0 {
                return None;
            }
            *rem -= 1;
        }
        let celebrity_active = match (self.celebrity, self.celebrity_after) {
            (Some(_), Some(at)) => now >= at,
            (Some(_), None) => true,
            _ => false,
        };
        let roll = rng.gen_range(0..100u32);
        let user = self.pick_user(rng);
        let mut mix = self.mix;
        if celebrity_active {
            // The celebrity phase adds follow traffic: users rush to
            // follow the new star (paper §6.4, dynamic workload).
            let follow_boost = mix.timeline.min(10);
            mix.timeline -= follow_boost;
            mix.follow += follow_boost;
        }
        if roll < mix.timeline {
            return Some(CommandKind::Access {
                op: ChirperOp::GetTimeline { user },
                vars: vec![Chirper::var(user)],
            });
        }
        if roll < mix.timeline + mix.post {
            // Celebrity redirection for the dynamic experiment.
            let author = match self.celebrity {
                Some((celeb, pct)) if celebrity_active && rng.gen_range(0..100u32) < pct => celeb,
                _ => user,
            };
            let graph = self.graph.lock().unwrap();
            let mut vars: Vec<VarId> = vec![Chirper::var(author)];
            vars.extend(graph.followers_of(author).iter().map(|&f| Chirper::var(f)));
            drop(graph);
            self.next_post_id += 1;
            return Some(CommandKind::Access {
                op: ChirperOp::Post { user: author, text: format!("post #{}", self.next_post_id) },
                vars,
            });
        }
        if roll < mix.timeline + mix.post + mix.follow {
            let mut graph = self.graph.lock().unwrap();
            let followee = match self.celebrity {
                Some((celeb, pct)) if celebrity_active && rng.gen_range(0..100u32) < pct => celeb,
                _ => {
                    let mut f = self.pick_user(rng);
                    if f == user {
                        f = (f + 1) % graph.users() as u64;
                    }
                    f
                }
            };
            // Keep the client-side graph coherent with the command we issue.
            graph.add_follow(user, followee);
            drop(graph);
            return Some(CommandKind::Access {
                op: ChirperOp::Follow { follower: user, followee },
                vars: vec![Chirper::var(user), Chirper::var(followee)],
            });
        }
        // Unfollow someone we follow (or no-op follow of ourselves → skip
        // to timeline if we follow nobody).
        let mut graph = self.graph.lock().unwrap();
        let follows = graph.follows_of(user).to_vec();
        if follows.is_empty() {
            drop(graph);
            return Some(CommandKind::Access {
                op: ChirperOp::GetTimeline { user },
                vars: vec![Chirper::var(user)],
            });
        }
        let followee = follows[rng.gen_range(0..follows.len())];
        graph.remove_follow(user, followee);
        drop(graph);
        Some(CommandKind::Access {
            op: ChirperOp::Unfollow { follower: user, followee },
            vars: vec![Chirper::var(user), Chirper::var(followee)],
        })
    }

    fn on_completed(
        &mut self,
        _now: SimTime,
        _cmd: &Command<Chirper>,
        _reply: Option<&ChirperReply>,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn state(users: &[u64]) -> BTreeMap<VarId, Option<Arc<ChirperUser>>> {
        users.iter().map(|&u| (Chirper::var(u), Some(Arc::new(ChirperUser::default())))).collect()
    }

    /// Test helper: mutable access to a user in the var map.
    fn user_mut(vars: &mut BTreeMap<VarId, Option<Arc<ChirperUser>>>, u: u64) -> &mut ChirperUser {
        Arc::make_mut(vars.get_mut(&Chirper::var(u)).unwrap().as_mut().unwrap())
    }

    #[test]
    fn post_reaches_declared_followers() {
        let mut vars = state(&[0, 1, 2]);
        // User 0 has followers 1 and 2.
        user_mut(&mut vars, 0).followers = vec![1, 2];
        let reply = Chirper::execute(&ChirperOp::Post { user: 0, text: "hi".into() }, &mut vars);
        assert_eq!(reply, ChirperReply::Posted(2));
        let t1 = &vars[&Chirper::var(1)].as_ref().unwrap().timeline;
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].author, 0);
    }

    #[test]
    fn post_truncates_to_140_chars() {
        let mut vars = state(&[0, 1]);
        user_mut(&mut vars, 0).followers = vec![1];
        let long = "x".repeat(500);
        Chirper::execute(&ChirperOp::Post { user: 0, text: long }, &mut vars);
        let t = &vars[&Chirper::var(1)].as_ref().unwrap().timeline;
        assert_eq!(t[0].text.len(), POST_CAP);
    }

    #[test]
    fn timeline_caps_at_limit() {
        let mut vars = state(&[0, 1]);
        user_mut(&mut vars, 0).followers = vec![1];
        for i in 0..(TIMELINE_CAP + 10) {
            Chirper::execute(&ChirperOp::Post { user: 0, text: format!("{i}") }, &mut vars);
        }
        let t = &vars[&Chirper::var(1)].as_ref().unwrap().timeline;
        assert_eq!(t.len(), TIMELINE_CAP);
        assert_eq!(t.back().unwrap().text, format!("{}", TIMELINE_CAP + 9));
    }

    #[test]
    fn follow_updates_both_sides() {
        let mut vars = state(&[0, 1]);
        let reply = Chirper::execute(&ChirperOp::Follow { follower: 0, followee: 1 }, &mut vars);
        assert_eq!(reply, ChirperReply::FollowOk);
        assert_eq!(vars[&Chirper::var(0)].as_ref().unwrap().follows, vec![1]);
        assert_eq!(vars[&Chirper::var(1)].as_ref().unwrap().followers, vec![0]);
        Chirper::execute(&ChirperOp::Unfollow { follower: 0, followee: 1 }, &mut vars);
        assert!(vars[&Chirper::var(1)].as_ref().unwrap().followers.is_empty());
    }

    #[test]
    fn missing_user_is_reported() {
        let mut vars = state(&[0]);
        vars.insert(Chirper::var(9), None);
        let reply = Chirper::execute(&ChirperOp::GetTimeline { user: 9 }, &mut vars);
        assert_eq!(reply, ChirperReply::NoSuchUser);
        let reply = Chirper::execute(&ChirperOp::Follow { follower: 0, followee: 9 }, &mut vars);
        assert_eq!(reply, ChirperReply::NoSuchUser);
    }

    #[test]
    fn workload_generates_valid_mixes() {
        let mut rng = StdRng::seed_from_u64(5);
        let graph = Arc::new(Mutex::new(SocialGraph::barabasi_albert(200, 3, &mut rng)));
        let mut w =
            ChirperWorkload::new(Arc::clone(&graph), 0.95, ChirperMix::MIX).with_budget(500);
        let mut timeline = 0;
        let mut posts = 0;
        while let Some(cmd) = w.next_command(SimTime::ZERO, &mut rng) {
            match cmd {
                CommandKind::Access { op: ChirperOp::GetTimeline { .. }, vars } => {
                    timeline += 1;
                    assert_eq!(vars.len(), 1);
                }
                CommandKind::Access { op: ChirperOp::Post { user, .. }, vars } => {
                    posts += 1;
                    // Declared vars = author + followers.
                    let g = graph.lock().unwrap();
                    assert_eq!(vars.len(), 1 + g.followers_of(user).len());
                }
                _ => {}
            }
        }
        assert_eq!(timeline + posts, 500);
        // Rough mix check (85/15 ± noise).
        assert!(posts > 40 && posts < 120, "posts = {posts}");
    }

    #[test]
    fn workload_budget_exhausts() {
        let mut rng = StdRng::seed_from_u64(6);
        let graph = Arc::new(Mutex::new(SocialGraph::barabasi_albert(50, 2, &mut rng)));
        let mut w = ChirperWorkload::new(graph, 0.5, ChirperMix::TIMELINE_ONLY).with_budget(3);
        assert!(w.next_command(SimTime::ZERO, &mut rng).is_some());
        assert!(w.next_command(SimTime::ZERO, &mut rng).is_some());
        assert!(w.next_command(SimTime::ZERO, &mut rng).is_some());
        assert!(w.next_command(SimTime::ZERO, &mut rng).is_none());
    }
}
