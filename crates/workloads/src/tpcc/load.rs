//! Initial TPC-C database population.

use std::sync::Arc;

use dynastar_core::{LocKey, VarId};

use super::schema::{
    customer_var, district_key, district_var, stock_var, warehouse_key, warehouse_var, CustomerRow,
    DistrictRow, StockRow, TpccScale, TpccValue, WarehouseRow, DISTRICTS_PER_WAREHOUSE,
};

/// All locality keys of a TPC-C database at `scale` (one per district and
/// one per warehouse — the paper's workload-graph vertices).
pub fn keys(scale: &TpccScale) -> Vec<LocKey> {
    let mut out = Vec::new();
    for w in 0..scale.warehouses {
        out.push(warehouse_key(w));
        for d in 0..DISTRICTS_PER_WAREHOUSE {
            out.push(district_key(w, d));
        }
    }
    out
}

/// All initial rows of a TPC-C database at `scale`.
pub fn rows(scale: &TpccScale) -> Vec<(VarId, Arc<TpccValue>)> {
    let mut out = Vec::new();
    for w in 0..scale.warehouses {
        out.push((warehouse_var(w), Arc::new(TpccValue::Warehouse(WarehouseRow::default()))));
        for item in 0..scale.items {
            out.push((stock_var(w, item), Arc::new(TpccValue::Stock(StockRow::default()))));
        }
        for d in 0..DISTRICTS_PER_WAREHOUSE {
            out.push((district_var(w, d), Arc::new(TpccValue::District(DistrictRow::default()))));
            for c in 0..scale.customers_per_district {
                out.push((
                    customer_var(w, d, c),
                    Arc::new(TpccValue::Customer(CustomerRow::default())),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::schema::locality;

    #[test]
    fn load_produces_expected_counts() {
        let scale = TpccScale { warehouses: 2, customers_per_district: 5, items: 10 };
        let ks = keys(&scale);
        assert_eq!(ks.len(), 2 * (1 + DISTRICTS_PER_WAREHOUSE as usize));
        let rs = rows(&scale);
        // Per warehouse: 1 warehouse + 10 stock + 10 districts * (1 + 5).
        assert_eq!(rs.len(), 2 * (1 + 10 + 10 * 6));
    }

    #[test]
    fn every_row_key_is_in_the_key_set() {
        let scale = TpccScale { warehouses: 1, customers_per_district: 2, items: 3 };
        let ks: std::collections::HashSet<LocKey> = keys(&scale).into_iter().collect();
        for (v, _) in rows(&scale) {
            assert!(ks.contains(&locality(v)), "row {v} has unlisted key");
        }
    }
}
