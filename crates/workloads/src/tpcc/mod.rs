//! The TPC-C benchmark (paper §5.3): 9 tables, 5 transaction types at the
//! standard 45/43/4/4/4 mix, mapped onto DynaStar objects at
//! district/warehouse locality granularity.
//!
//! * [`schema`] — rows, identifier packing, locality mapping, scale.
//! * [`ops`] — the five transactions as deterministic [`Application`] ops.
//! * [`load`] — initial database population.
//! * [`workload`] — the closed-loop terminal driver.
//!
//! [`Application`]: dynastar_core::Application

pub mod load;
pub mod ops;
pub mod schema;
pub mod workload;

pub use load::{keys, rows};
pub use ops::{LineRequest, Tpcc, TpccOp, TpccReply};
pub use schema::{TpccScale, TpccValue, DISTRICTS_PER_WAREHOUSE};
pub use workload::{order_tracker, OrderTracker, TpccWorkload, STANDARD_MIX};
