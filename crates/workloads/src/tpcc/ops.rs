//! The five TPC-C transactions as deterministic operations over declared
//! rows.

use std::collections::BTreeMap;
use std::sync::Arc;

use dynastar_core::{AccessSets, Application, LocKey, VarId};
use serde::{Deserialize, Serialize};

use super::schema::{
    self, customer_var, district_var, item_price_cents, stock_var, warehouse_var, Order, OrderLine,
    TpccValue, ORDER_RETENTION,
};

/// The TPC-C application marker (implements [`Application`]).
#[derive(Debug, Clone, Copy)]
pub struct Tpcc;

/// A requested order line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineRequest {
    /// The item ordered.
    pub item: u32,
    /// The supplying warehouse (1% remote in the standard mix).
    pub supply_w: u32,
    /// The quantity (1–10).
    pub qty: u32,
}

/// The five transaction types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TpccOp {
    /// NEW-ORDER (45% of the mix).
    NewOrder {
        /// Home warehouse.
        w: u32,
        /// Home district.
        d: u32,
        /// Ordering customer.
        c: u32,
        /// 5–15 order lines.
        lines: Vec<LineRequest>,
    },
    /// PAYMENT (43%).
    Payment {
        /// Warehouse receiving the payment.
        w: u32,
        /// District receiving the payment.
        d: u32,
        /// The customer's warehouse (15% remote).
        c_w: u32,
        /// The customer's district.
        c_d: u32,
        /// The paying customer.
        c: u32,
        /// Amount in cents.
        amount_cents: i64,
    },
    /// ORDER-STATUS (4%): read a customer's last order.
    OrderStatus {
        /// Warehouse.
        w: u32,
        /// District.
        d: u32,
        /// Customer.
        c: u32,
    },
    /// DELIVERY (4%), per district: deliver the oldest undelivered order.
    /// The expected customer is declared so the variable set is known
    /// up-front; a mismatch (rare race) skips the delivery.
    Delivery {
        /// Warehouse.
        w: u32,
        /// District.
        d: u32,
        /// Carrier id.
        carrier: u32,
        /// Customer expected to own the oldest undelivered order.
        expected_customer: u32,
    },
    /// STOCK-LEVEL (4%): count recently-sold items below a threshold.
    StockLevel {
        /// Warehouse.
        w: u32,
        /// District.
        d: u32,
        /// Items to inspect (client-sampled from recent orders).
        items: Vec<u32>,
        /// Low-stock threshold.
        threshold: i32,
    },
}

impl TpccOp {
    /// The variables this transaction reads/writes (what the client
    /// declares when issuing the command).
    pub fn vars(&self) -> Vec<VarId> {
        match self {
            TpccOp::NewOrder { w, d, c, lines } => {
                let mut vars = vec![district_var(*w, *d), customer_var(*w, *d, *c)];
                for l in lines {
                    let sv = stock_var(l.supply_w, l.item);
                    if !vars.contains(&sv) {
                        vars.push(sv);
                    }
                }
                vars
            }
            TpccOp::Payment { w, d, c_w, c_d, c, .. } => {
                vec![warehouse_var(*w), district_var(*w, *d), customer_var(*c_w, *c_d, *c)]
            }
            TpccOp::OrderStatus { w, d, c } => {
                vec![district_var(*w, *d), customer_var(*w, *d, *c)]
            }
            TpccOp::Delivery { w, d, expected_customer, .. } => {
                vec![district_var(*w, *d), customer_var(*w, *d, *expected_customer)]
            }
            TpccOp::StockLevel { w, d, items, .. } => {
                let mut vars = vec![district_var(*w, *d)];
                for &i in items {
                    let sv = stock_var(*w, i);
                    if !vars.contains(&sv) {
                        vars.push(sv);
                    }
                }
                vars
            }
        }
    }
}

/// Transaction results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TpccReply {
    /// NEW-ORDER succeeded: the assigned order id and total in cents.
    OrderPlaced {
        /// The new order's district-scoped id.
        order_id: u32,
        /// Order total in cents.
        total_cents: i64,
    },
    /// PAYMENT succeeded: the customer's new balance.
    Paid {
        /// Customer balance after the payment, in cents.
        balance_cents: i64,
    },
    /// ORDER-STATUS: the last order, if any.
    Status {
        /// Customer balance in cents.
        balance_cents: i64,
        /// `(order id, delivered?)` of the last order.
        last_order: Option<(u32, bool)>,
    },
    /// DELIVERY outcome.
    Delivered {
        /// The delivered order id, or `None` if nothing was undelivered or
        /// the expected customer raced.
        order_id: Option<u32>,
    },
    /// STOCK-LEVEL: items below the threshold.
    StockLow {
        /// Number of inspected items below the threshold.
        count: u32,
    },
    /// A declared row was missing (should not happen in a loaded system).
    MissingRow,
}

impl Application for Tpcc {
    type Op = TpccOp;
    /// Values travel behind `Arc` so borrowing a row (which ships it to
    /// the target partition and back) costs a refcount bump, not a deep
    /// copy; executions mutate via copy-on-write.
    type Value = Arc<TpccValue>;
    type Reply = TpccReply;

    fn locality(var: VarId) -> LocKey {
        schema::locality(var)
    }

    fn classify(op: &TpccOp, vars: &[VarId]) -> AccessSets {
        match op {
            // The two read-only transactions of the standard mix (4% each).
            TpccOp::OrderStatus { .. } | TpccOp::StockLevel { .. } => AccessSets::read_only(vars),
            // NEW-ORDER, PAYMENT and DELIVERY mutate every declared row.
            _ => AccessSets::write_all(vars),
        }
    }

    fn execute(op: &TpccOp, vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>) -> TpccReply {
        match op {
            TpccOp::NewOrder { w, d, c, lines } => new_order(*w, *d, *c, lines, vars),
            TpccOp::Payment { w, d, c_w, c_d, c, amount_cents } => {
                payment(*w, *d, *c_w, *c_d, *c, *amount_cents, vars)
            }
            TpccOp::OrderStatus { w, d, c } => order_status(*w, *d, *c, vars),
            TpccOp::Delivery { w, d, carrier, expected_customer } => {
                delivery(*w, *d, *carrier, *expected_customer, vars)
            }
            TpccOp::StockLevel { w, d, items, threshold } => {
                stock_level(*w, *d, items, *threshold, vars)
            }
        }
    }
}

fn district_mut(
    vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>,
    w: u32,
    d: u32,
) -> Option<&mut schema::DistrictRow> {
    match vars.get_mut(&district_var(w, d)) {
        Some(Some(arc)) => match Arc::make_mut(arc) {
            TpccValue::District(row) => Some(row),
            _ => None,
        },
        _ => None,
    }
}

fn customer_mut(
    vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>,
    w: u32,
    d: u32,
    c: u32,
) -> Option<&mut schema::CustomerRow> {
    match vars.get_mut(&customer_var(w, d, c)) {
        Some(Some(arc)) => match Arc::make_mut(arc) {
            TpccValue::Customer(row) => Some(row),
            _ => None,
        },
        _ => None,
    }
}

fn stock_mut(
    vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>,
    w: u32,
    item: u32,
) -> Option<&mut schema::StockRow> {
    match vars.get_mut(&stock_var(w, item)) {
        Some(Some(arc)) => match Arc::make_mut(arc) {
            TpccValue::Stock(row) => Some(row),
            _ => None,
        },
        _ => None,
    }
}

fn warehouse_mut(
    vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>,
    w: u32,
) -> Option<&mut schema::WarehouseRow> {
    match vars.get_mut(&warehouse_var(w)) {
        Some(Some(arc)) => match Arc::make_mut(arc) {
            TpccValue::Warehouse(row) => Some(row),
            _ => None,
        },
        _ => None,
    }
}

fn new_order(
    w: u32,
    d: u32,
    c: u32,
    lines: &[LineRequest],
    vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>,
) -> TpccReply {
    // Build the order lines, updating stock.
    let mut order_lines = Vec::with_capacity(lines.len());
    let mut total = 0i64;
    for l in lines {
        let Some(stock) = stock_mut(vars, l.supply_w, l.item) else {
            return TpccReply::MissingRow;
        };
        stock.quantity -= l.qty as i32;
        if stock.quantity < 10 {
            stock.quantity += 91; // spec's restock rule
        }
        stock.ytd += l.qty as u64;
        stock.order_count += 1;
        if l.supply_w != w {
            stock.remote_count += 1;
        }
        let amount = item_price_cents(l.item) * l.qty as i64;
        total += amount;
        order_lines.push(OrderLine {
            item: l.item,
            supply_w: l.supply_w,
            qty: l.qty,
            amount_cents: amount,
        });
    }
    let Some(district) = district_mut(vars, w, d) else { return TpccReply::MissingRow };
    let order_id = district.next_o_id;
    district.next_o_id += 1;
    district.orders.push_back(Arc::new(Order {
        id: order_id,
        customer: c,
        carrier: None,
        lines: order_lines,
    }));
    district.new_orders.push_back(order_id);
    // Prune old delivered orders to bound the row size.
    while district.orders.len() > ORDER_RETENTION {
        if district.orders.front().map(|o| o.carrier.is_some()).unwrap_or(false) {
            district.orders.pop_front();
        } else {
            break;
        }
    }
    let Some(customer) = customer_mut(vars, w, d, c) else { return TpccReply::MissingRow };
    customer.last_order = Some(order_id);
    TpccReply::OrderPlaced { order_id, total_cents: total }
}

fn payment(
    w: u32,
    d: u32,
    c_w: u32,
    c_d: u32,
    c: u32,
    amount: i64,
    vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>,
) -> TpccReply {
    let Some(wh) = warehouse_mut(vars, w) else {
        return TpccReply::MissingRow;
    };
    wh.ytd_cents += amount;
    let Some(district) = district_mut(vars, w, d) else { return TpccReply::MissingRow };
    district.ytd_cents += amount;
    district.history_count += 1;
    let Some(customer) = customer_mut(vars, c_w, c_d, c) else { return TpccReply::MissingRow };
    customer.balance_cents -= amount;
    customer.ytd_payment_cents += amount;
    customer.payment_count += 1;
    TpccReply::Paid { balance_cents: customer.balance_cents }
}

fn order_status(
    w: u32,
    d: u32,
    c: u32,
    vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>,
) -> TpccReply {
    let (balance, last) = match vars.get(&customer_var(w, d, c)).map(|o| o.as_deref()) {
        Some(Some(TpccValue::Customer(row))) => (row.balance_cents, row.last_order),
        _ => return TpccReply::MissingRow,
    };
    let last_order = match (last, vars.get(&district_var(w, d)).map(|o| o.as_deref())) {
        (Some(oid), Some(Some(TpccValue::District(row)))) => {
            row.orders.iter().find(|o| o.id == oid).map(|o| (o.id, o.carrier.is_some()))
        }
        _ => None,
    };
    TpccReply::Status { balance_cents: balance, last_order }
}

fn delivery(
    w: u32,
    d: u32,
    carrier: u32,
    expected_customer: u32,
    vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>,
) -> TpccReply {
    let Some(district) = district_mut(vars, w, d) else { return TpccReply::MissingRow };
    let Some(&oldest) = district.new_orders.front() else {
        return TpccReply::Delivered { order_id: None };
    };
    let Some(order) = district.orders.iter_mut().find(|o| o.id == oldest) else {
        district.new_orders.pop_front();
        return TpccReply::Delivered { order_id: None };
    };
    if order.customer != expected_customer {
        // The client's view of the oldest order raced with another
        // delivery; skip rather than touch an undeclared customer row.
        return TpccReply::Delivered { order_id: None };
    }
    // Copy-on-write at the order level: only the delivered order is
    // cloned (if still shared), never the rest of the book.
    let order = Arc::make_mut(order);
    order.carrier = Some(carrier);
    let total: i64 = order.lines.iter().map(|l| l.amount_cents).sum();
    district.new_orders.pop_front();
    let Some(customer) = customer_mut(vars, w, d, expected_customer) else {
        return TpccReply::MissingRow;
    };
    customer.balance_cents += total;
    customer.delivery_count += 1;
    TpccReply::Delivered { order_id: Some(oldest) }
}

fn stock_level(
    w: u32,
    _d: u32,
    items: &[u32],
    threshold: i32,
    vars: &mut BTreeMap<VarId, Option<Arc<TpccValue>>>,
) -> TpccReply {
    let mut count = 0;
    for &i in items {
        if let Some(Some(TpccValue::Stock(stock))) =
            vars.get(&stock_var(w, i)).map(|o| o.as_deref())
        {
            if stock.quantity < threshold {
                count += 1;
            }
        }
    }
    TpccReply::StockLow { count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::schema::{CustomerRow, DistrictRow, StockRow, WarehouseRow};

    fn loaded_vars(op: &TpccOp) -> BTreeMap<VarId, Option<Arc<TpccValue>>> {
        op.vars()
            .into_iter()
            .map(|v| {
                let val = match schema::table_of(v) {
                    schema::Table::Warehouse => TpccValue::Warehouse(WarehouseRow::default()),
                    schema::Table::District => TpccValue::District(DistrictRow::default()),
                    schema::Table::Customer => TpccValue::Customer(CustomerRow::default()),
                    schema::Table::Stock => TpccValue::Stock(StockRow::default()),
                };
                (v, Some(Arc::new(val)))
            })
            .collect()
    }

    fn line(item: u32, supply_w: u32, qty: u32) -> LineRequest {
        LineRequest { item, supply_w, qty }
    }

    #[test]
    fn new_order_assigns_ids_and_updates_stock() {
        let op = TpccOp::NewOrder { w: 0, d: 0, c: 1, lines: vec![line(5, 0, 3), line(9, 0, 2)] };
        let mut vars = loaded_vars(&op);
        let r1 = Tpcc::execute(&op, &mut vars);
        let TpccReply::OrderPlaced { order_id, total_cents } = r1 else { panic!("{r1:?}") };
        assert_eq!(order_id, 1);
        assert_eq!(total_cents, item_price_cents(5) * 3 + item_price_cents(9) * 2);
        let r2 = Tpcc::execute(&op, &mut vars);
        let TpccReply::OrderPlaced { order_id, .. } = r2 else { panic!("{r2:?}") };
        assert_eq!(order_id, 2, "order ids are sequential");
        // Stock decremented (with restock rule).
        let Some(Some(TpccValue::Stock(s))) = vars.get(&stock_var(0, 5)).map(|o| o.as_deref())
        else {
            panic!()
        };
        assert_eq!(s.ytd, 6);
        assert_eq!(s.order_count, 2);
    }

    #[test]
    fn new_order_remote_line_counts_remote() {
        let op = TpccOp::NewOrder { w: 0, d: 0, c: 1, lines: vec![line(5, 3, 1)] };
        let mut vars = loaded_vars(&op);
        Tpcc::execute(&op, &mut vars);
        let Some(Some(TpccValue::Stock(s))) = vars.get(&stock_var(3, 5)).map(|o| o.as_deref())
        else {
            panic!()
        };
        assert_eq!(s.remote_count, 1);
    }

    #[test]
    fn stock_restocks_below_ten() {
        let op = TpccOp::NewOrder { w: 0, d: 0, c: 1, lines: vec![line(5, 0, 10)] };
        let mut vars = loaded_vars(&op);
        for _ in 0..12 {
            Tpcc::execute(&op, &mut vars);
        }
        let Some(Some(TpccValue::Stock(s))) = vars.get(&stock_var(0, 5)).map(|o| o.as_deref())
        else {
            panic!()
        };
        assert!(s.quantity >= 10, "quantity = {}", s.quantity);
    }

    #[test]
    fn payment_flows_through_warehouse_district_customer() {
        let op = TpccOp::Payment { w: 0, d: 1, c_w: 0, c_d: 1, c: 7, amount_cents: 1234 };
        let mut vars = loaded_vars(&op);
        let r = Tpcc::execute(&op, &mut vars);
        assert_eq!(r, TpccReply::Paid { balance_cents: -1234 });
        let Some(Some(TpccValue::Warehouse(w))) = vars.get(&warehouse_var(0)).map(|o| o.as_deref())
        else {
            panic!()
        };
        assert_eq!(w.ytd_cents, 1234);
        let Some(Some(TpccValue::District(d))) =
            vars.get(&district_var(0, 1)).map(|o| o.as_deref())
        else {
            panic!()
        };
        assert_eq!(d.ytd_cents, 1234);
        assert_eq!(d.history_count, 1);
    }

    #[test]
    fn order_status_reports_last_order() {
        let no = TpccOp::NewOrder { w: 0, d: 0, c: 1, lines: vec![line(2, 0, 1)] };
        let mut vars = loaded_vars(&no);
        Tpcc::execute(&no, &mut vars);
        let os = TpccOp::OrderStatus { w: 0, d: 0, c: 1 };
        let r = Tpcc::execute(&os, &mut vars);
        assert_eq!(r, TpccReply::Status { balance_cents: 0, last_order: Some((1, false)) });
    }

    #[test]
    fn delivery_processes_oldest_order() {
        let no = TpccOp::NewOrder { w: 0, d: 0, c: 1, lines: vec![line(2, 0, 1)] };
        let mut vars = loaded_vars(&no);
        Tpcc::execute(&no, &mut vars);
        let del = TpccOp::Delivery { w: 0, d: 0, carrier: 3, expected_customer: 1 };
        let r = Tpcc::execute(&del, &mut vars);
        assert_eq!(r, TpccReply::Delivered { order_id: Some(1) });
        // Customer credited with the order total.
        let Some(Some(TpccValue::Customer(c))) =
            vars.get(&customer_var(0, 0, 1)).map(|o| o.as_deref())
        else {
            panic!()
        };
        assert_eq!(c.balance_cents, item_price_cents(2));
        assert_eq!(c.delivery_count, 1);
        // Nothing left to deliver.
        let r = Tpcc::execute(&del, &mut vars);
        assert_eq!(r, TpccReply::Delivered { order_id: None });
    }

    #[test]
    fn delivery_with_wrong_expected_customer_skips() {
        let no = TpccOp::NewOrder { w: 0, d: 0, c: 1, lines: vec![line(2, 0, 1)] };
        let mut vars = loaded_vars(&no);
        Tpcc::execute(&no, &mut vars);
        let del = TpccOp::Delivery { w: 0, d: 0, carrier: 3, expected_customer: 2 };
        let mut vars2 = vars.clone();
        vars2
            .insert(customer_var(0, 0, 2), Some(Arc::new(TpccValue::Customer(Default::default()))));
        let r = Tpcc::execute(&del, &mut vars2);
        assert_eq!(r, TpccReply::Delivered { order_id: None });
    }

    #[test]
    fn stock_level_counts_low_items() {
        let op = TpccOp::StockLevel { w: 0, d: 0, items: vec![1, 2, 3], threshold: 101 };
        let mut vars = loaded_vars(&op);
        // Default quantity is 100 < 101 → all three count.
        let r = Tpcc::execute(&op, &mut vars);
        assert_eq!(r, TpccReply::StockLow { count: 3 });
        let r = Tpcc::execute(
            &TpccOp::StockLevel { w: 0, d: 0, items: vec![1, 2, 3], threshold: 50 },
            &mut vars,
        );
        assert_eq!(r, TpccReply::StockLow { count: 0 });
    }

    #[test]
    fn vars_cover_all_touched_rows() {
        let op = TpccOp::NewOrder { w: 0, d: 2, c: 5, lines: vec![line(1, 0, 1), line(1, 0, 2)] };
        let vars = op.vars();
        assert!(vars.contains(&district_var(0, 2)));
        assert!(vars.contains(&customer_var(0, 2, 5)));
        assert!(vars.contains(&stock_var(0, 1)));
        assert_eq!(vars.len(), 3, "duplicate stock vars must merge");
        let op = TpccOp::Payment { w: 0, d: 0, c_w: 1, c_d: 2, c: 3, amount_cents: 1 };
        assert_eq!(op.vars().len(), 3);
    }

    #[test]
    fn missing_row_is_reported() {
        let op = TpccOp::Payment { w: 0, d: 0, c_w: 0, c_d: 0, c: 0, amount_cents: 5 };
        let mut vars: BTreeMap<VarId, Option<Arc<TpccValue>>> =
            op.vars().into_iter().map(|v| (v, None)).collect();
        assert_eq!(Tpcc::execute(&op, &mut vars), TpccReply::MissingRow);
    }
}
