//! The closed-loop TPC-C terminal driver.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use dynastar_core::{Command, CommandKind, Workload};
use dynastar_runtime::hash::FastHashMap;
use dynastar_runtime::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

use super::ops::{LineRequest, Tpcc, TpccOp, TpccReply};
use super::schema::{TpccScale, DISTRICTS_PER_WAREHOUSE};

/// Shared knowledge of undelivered orders per (warehouse, district),
/// maintained from NEW-ORDER completions so DELIVERY transactions can
/// declare the customer they will credit.
pub type OrderTracker = Arc<Mutex<FastHashMap<(u32, u32), VecDeque<(u32, u32)>>>>;

/// Creates an empty order tracker shared between terminals.
pub fn order_tracker() -> OrderTracker {
    Arc::new(Mutex::new(FastHashMap::default()))
}

/// Standard transaction mix in percent (NEW-ORDER, PAYMENT, ORDER-STATUS,
/// DELIVERY, STOCK-LEVEL).
pub const STANDARD_MIX: [u32; 5] = [45, 43, 4, 4, 4];

/// TPC-C's non-uniform random distribution (clause 2.1.6): hot-spots a
/// subset of customers/items the way real order books do. `a` is 1023 for
/// customers and 8191 for items in the spec.
pub fn nurand(rng: &mut StdRng, a: u64, x: u64, y: u64) -> u64 {
    // The spec's constant C; any fixed value is permitted per run.
    let c = a / 2;
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// A TPC-C terminal bound to a home warehouse, issuing the standard mix.
pub struct TpccWorkload {
    scale: TpccScale,
    home_w: u32,
    tracker: OrderTracker,
    mix: [u32; 5],
    /// Percent of order lines supplied by a remote warehouse (spec: 1%).
    pub remote_line_pct: u32,
    /// Percent of payments by a remote customer (spec: 15%).
    pub remote_payment_pct: u32,
    remaining: Option<u64>,
}

impl TpccWorkload {
    /// Creates a terminal for `home_w` at `scale`, sharing `tracker` with
    /// the other terminals.
    ///
    /// # Panics
    ///
    /// Panics if `home_w` is out of range.
    pub fn new(scale: TpccScale, home_w: u32, tracker: OrderTracker) -> Self {
        assert!(home_w < scale.warehouses, "warehouse {home_w} out of range");
        TpccWorkload {
            scale,
            home_w,
            tracker,
            mix: STANDARD_MIX,
            remote_line_pct: 1,
            remote_payment_pct: 15,
            remaining: None,
        }
    }

    /// Caps the number of transactions issued.
    pub fn with_budget(mut self, commands: u64) -> Self {
        self.remaining = Some(commands);
        self
    }

    /// Overrides the transaction mix (percent, must sum to 100).
    ///
    /// # Panics
    ///
    /// Panics if the mix does not sum to 100.
    pub fn with_mix(mut self, mix: [u32; 5]) -> Self {
        assert_eq!(mix.iter().sum::<u32>(), 100, "mix must sum to 100");
        self.mix = mix;
        self
    }

    fn other_warehouse(&self, rng: &mut StdRng) -> u32 {
        if self.scale.warehouses == 1 {
            return self.home_w;
        }
        loop {
            let w = rng.gen_range(0..self.scale.warehouses);
            if w != self.home_w {
                return w;
            }
        }
    }

    fn pick_customer(&self, rng: &mut StdRng) -> u32 {
        nurand(rng, 1023, 0, self.scale.customers_per_district as u64 - 1) as u32
    }

    fn pick_item(&self, rng: &mut StdRng) -> u32 {
        nurand(rng, 8191, 0, self.scale.items as u64 - 1) as u32
    }

    fn new_order(&self, rng: &mut StdRng) -> TpccOp {
        let d = rng.gen_range(0..DISTRICTS_PER_WAREHOUSE);
        let c = self.pick_customer(rng);
        let n_lines = rng.gen_range(5..=15);
        let lines = (0..n_lines)
            .map(|_| {
                let supply_w = if rng.gen_range(0..100u32) < self.remote_line_pct {
                    self.other_warehouse(rng)
                } else {
                    self.home_w
                };
                LineRequest { item: self.pick_item(rng), supply_w, qty: rng.gen_range(1..=10) }
            })
            .collect();
        TpccOp::NewOrder { w: self.home_w, d, c, lines }
    }

    fn payment(&self, rng: &mut StdRng) -> TpccOp {
        let d = rng.gen_range(0..DISTRICTS_PER_WAREHOUSE);
        let (c_w, c_d) = if rng.gen_range(0..100u32) < self.remote_payment_pct {
            (self.other_warehouse(rng), rng.gen_range(0..DISTRICTS_PER_WAREHOUSE))
        } else {
            (self.home_w, d)
        };
        TpccOp::Payment {
            w: self.home_w,
            d,
            c_w,
            c_d,
            c: self.pick_customer(rng),
            amount_cents: rng.gen_range(100..=500_000),
        }
    }

    fn order_status(&self, rng: &mut StdRng) -> TpccOp {
        TpccOp::OrderStatus {
            w: self.home_w,
            d: rng.gen_range(0..DISTRICTS_PER_WAREHOUSE),
            c: self.pick_customer(rng),
        }
    }

    fn delivery(&self, rng: &mut StdRng) -> TpccOp {
        // Deliver the oldest tracked order of some district, if any.
        let mut tracker = self.tracker.lock().unwrap();
        for d in 0..DISTRICTS_PER_WAREHOUSE {
            if let Some(q) = tracker.get_mut(&(self.home_w, d)) {
                if let Some((_, customer)) = q.pop_front() {
                    return TpccOp::Delivery {
                        w: self.home_w,
                        d,
                        carrier: rng.gen_range(1..=10),
                        expected_customer: customer,
                    };
                }
            }
        }
        drop(tracker);
        // Nothing to deliver yet: read something instead.
        self.order_status(rng)
    }

    fn stock_level(&self, rng: &mut StdRng) -> TpccOp {
        let items = (0..10).map(|_| self.pick_item(rng)).collect();
        TpccOp::StockLevel {
            w: self.home_w,
            d: rng.gen_range(0..DISTRICTS_PER_WAREHOUSE),
            items,
            threshold: rng.gen_range(10..=100),
        }
    }
}

impl Workload<Tpcc> for TpccWorkload {
    fn next_command(&mut self, _now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Tpcc>> {
        if let Some(rem) = self.remaining.as_mut() {
            if *rem == 0 {
                return None;
            }
            *rem -= 1;
        }
        let roll = rng.gen_range(0..100u32);
        // Cumulative mix thresholds: roll < t[i] selects transaction i.
        let t1 = self.mix[0];
        let t2 = t1 + self.mix[1];
        let t3 = t2 + self.mix[2];
        let t4 = t3 + self.mix[3];
        let op = if roll < t1 {
            self.new_order(rng)
        } else if roll < t2 {
            self.payment(rng)
        } else if roll < t3 {
            self.order_status(rng)
        } else if roll < t4 {
            self.delivery(rng)
        } else {
            self.stock_level(rng)
        };
        let vars = op.vars();
        Some(CommandKind::Access { op, vars })
    }

    fn on_completed(&mut self, _now: SimTime, cmd: &Command<Tpcc>, reply: Option<&TpccReply>) {
        // Track fresh orders so deliveries can name their customer.
        if let (
            CommandKind::Access { op: TpccOp::NewOrder { w, d, c, .. }, .. },
            Some(TpccReply::OrderPlaced { order_id, .. }),
        ) = (&cmd.kind, reply)
        {
            self.tracker.lock().unwrap().entry((*w, *d)).or_default().push_back((*order_id, *c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn scale() -> TpccScale {
        TpccScale { warehouses: 4, customers_per_district: 10, items: 50 }
    }

    #[test]
    fn mix_roughly_matches_standard() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = TpccWorkload::new(scale(), 0, order_tracker()).with_budget(2000);
        let mut counts = [0u32; 5];
        while let Some(CommandKind::Access { op, .. }) = w.next_command(SimTime::ZERO, &mut rng) {
            let idx = match op {
                TpccOp::NewOrder { .. } => 0,
                TpccOp::Payment { .. } => 1,
                TpccOp::OrderStatus { .. } => 2,
                TpccOp::Delivery { .. } => 3,
                TpccOp::StockLevel { .. } => 4,
            };
            counts[idx] += 1;
        }
        assert!((800..1000).contains(&counts[0]), "new-order {}", counts[0]);
        assert!((760..960).contains(&counts[1]), "payment {}", counts[1]);
        // With an empty tracker deliveries fall back to order-status.
        assert!(counts[2] >= 60, "order-status {}", counts[2]);
        assert!(counts[4] >= 40, "stock-level {}", counts[4]);
    }

    #[test]
    fn delivery_uses_tracked_orders() {
        let mut rng = StdRng::seed_from_u64(2);
        let tracker = order_tracker();
        tracker.lock().unwrap().entry((0, 3)).or_default().push_back((17, 4));
        let w = TpccWorkload::new(scale(), 0, tracker);
        let op = w.delivery(&mut rng);
        assert_eq!(
            op,
            TpccOp::Delivery {
                w: 0,
                d: 3,
                carrier: match op {
                    TpccOp::Delivery { carrier, .. } => carrier,
                    _ => 0,
                },
                expected_customer: 4
            }
        );
    }

    #[test]
    fn completion_tracks_new_orders() {
        use dynastar_amcast::MsgId;
        use dynastar_runtime::NodeId;
        let tracker = order_tracker();
        let mut w = TpccWorkload::new(scale(), 0, Arc::clone(&tracker));
        let op = TpccOp::NewOrder { w: 0, d: 2, c: 5, lines: Vec::new() };
        let cmd = Command::<Tpcc> {
            id: MsgId::new(1, 0),
            client: NodeId::from_raw(0),
            kind: CommandKind::Access { vars: op.vars(), op },
        };
        w.on_completed(
            SimTime::ZERO,
            &cmd,
            Some(&TpccReply::OrderPlaced { order_id: 9, total_cents: 1 }),
        );
        assert_eq!(tracker.lock().unwrap()[&(0, 2)], VecDeque::from([(9, 5)]));
    }

    #[test]
    fn nurand_stays_in_range_and_is_nonuniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            let v = nurand(&mut rng, 1023, 0, 99);
            assert!(v < 100);
            counts[v as usize] += 1;
        }
        // Non-uniform: the most-hit value should far exceed the uniform
        // expectation of 200.
        let max = counts.iter().max().copied().unwrap();
        assert!(max > 320, "max bucket {max} looks uniform");
    }

    #[test]
    fn remote_lines_respect_percentage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = TpccWorkload::new(scale(), 0, order_tracker()).with_mix([100, 0, 0, 0, 0]);
        w.remote_line_pct = 50;
        let mut remote = 0;
        let mut total = 0;
        for _ in 0..200 {
            if let Some(CommandKind::Access { op: TpccOp::NewOrder { lines, .. }, .. }) =
                w.next_command(SimTime::ZERO, &mut rng)
            {
                for l in lines {
                    total += 1;
                    if l.supply_w != 0 {
                        remote += 1;
                    }
                }
            }
        }
        let frac = remote as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "remote fraction {frac}");
    }
}
