//! TPC-C schema: row types, identifier packing, scale parameters.
//!
//! Mapping onto DynaStar objects follows the paper's §5.3: each row is an
//! object; the oracle models the workload at district/warehouse
//! granularity, so the locality key of district-scoped rows (district,
//! customers, orders) is their district, and of warehouse-scoped rows
//! (warehouse, stock) their warehouse. Orders, order-lines, new-orders and
//! history live *inside* their district row, which both matches the paper's
//! "objects that belong to a district are considered part of the district"
//! and lets clients declare a transaction's variables without knowing the
//! next order id.
//!
//! The immutable `ITEM` catalog is not materialized as objects: item
//! prices/names are a deterministic function of the item id that every
//! client and replica computes locally (documented in DESIGN.md). This
//! preserves the contended access pattern (stock, district, customer) while
//! avoiding 100k read-only rows per replica.

use std::collections::VecDeque;
use std::sync::Arc;

use dynastar_core::{LocKey, VarId};
use serde::{Deserialize, Serialize};

/// Districts per warehouse (TPC-C specifies 10).
pub const DISTRICTS_PER_WAREHOUSE: u32 = 10;

/// Orders retained per district before old delivered orders are pruned.
/// Kept small: the district row travels whole when borrowed by a remote
/// transaction, so its order book bounds the per-transaction copy cost.
pub const ORDER_RETENTION: usize = 24;

/// Scale parameters (defaults are laptop-sized; the access *pattern*
/// matches the spec).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TpccScale {
    /// Number of warehouses.
    pub warehouses: u32,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u32,
    /// Catalog size (spec: 100_000).
    pub items: u32,
}

impl Default for TpccScale {
    fn default() -> Self {
        TpccScale { warehouses: 4, customers_per_district: 60, items: 500 }
    }
}

/// Row-type tags packed into the high bits of a [`VarId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table {
    /// The warehouse row (YTD amount).
    Warehouse,
    /// The district row, including its order book.
    District,
    /// One customer row.
    Customer,
    /// One stock row per (warehouse, item).
    Stock,
}

const TAG_SHIFT: u64 = 60;
const W_SHIFT: u64 = 36;
const D_SHIFT: u64 = 28;

/// Variable id of a warehouse row.
pub fn warehouse_var(w: u32) -> VarId {
    VarId((0u64 << TAG_SHIFT) | ((w as u64) << W_SHIFT))
}

/// Variable id of a district row.
pub fn district_var(w: u32, d: u32) -> VarId {
    VarId((1u64 << TAG_SHIFT) | ((w as u64) << W_SHIFT) | ((d as u64) << D_SHIFT))
}

/// Variable id of a customer row.
pub fn customer_var(w: u32, d: u32, c: u32) -> VarId {
    VarId((2u64 << TAG_SHIFT) | ((w as u64) << W_SHIFT) | ((d as u64) << D_SHIFT) | c as u64)
}

/// Variable id of a stock row.
pub fn stock_var(w: u32, item: u32) -> VarId {
    VarId((3u64 << TAG_SHIFT) | ((w as u64) << W_SHIFT) | item as u64)
}

/// Decodes the table of a variable id.
pub fn table_of(var: VarId) -> Table {
    match var.0 >> TAG_SHIFT {
        0 => Table::Warehouse,
        1 => Table::District,
        2 => Table::Customer,
        _ => Table::Stock,
    }
}

/// Decodes the warehouse of a variable id.
pub fn warehouse_of(var: VarId) -> u32 {
    ((var.0 >> W_SHIFT) & 0xFF_FFFF) as u32
}

/// Decodes the district of a district/customer variable id.
pub fn district_of(var: VarId) -> u32 {
    ((var.0 >> D_SHIFT) & 0xFF) as u32
}

/// Locality keys: districts occupy the low key space, warehouses a high
/// base, so they never collide.
const WAREHOUSE_KEY_BASE: u64 = 1 << 40;

/// Locality key of a district (the workload-graph vertex of §5.3).
pub fn district_key(w: u32, d: u32) -> LocKey {
    LocKey(w as u64 * DISTRICTS_PER_WAREHOUSE as u64 + d as u64)
}

/// Locality key of a warehouse.
pub fn warehouse_key(w: u32) -> LocKey {
    LocKey(WAREHOUSE_KEY_BASE + w as u64)
}

/// Locality of any TPC-C variable (used as `Application::locality`).
pub fn locality(var: VarId) -> LocKey {
    match table_of(var) {
        Table::Warehouse | Table::Stock => warehouse_key(warehouse_of(var)),
        Table::District | Table::Customer => district_key(warehouse_of(var), district_of(var)),
    }
}

/// Deterministic item price in cents (replaces the read-only ITEM table).
pub fn item_price_cents(item: u32) -> i64 {
    let h = (item as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
    100 + (h % 9_900) as i64
}

/// One order line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderLine {
    /// The ordered item.
    pub item: u32,
    /// Supplying warehouse (≠ home warehouse for remote lines).
    pub supply_w: u32,
    /// Quantity.
    pub qty: u32,
    /// Line amount in cents.
    pub amount_cents: i64,
}

/// One order, stored inside its district row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Order {
    /// District-scoped order id.
    pub id: u32,
    /// The ordering customer.
    pub customer: u32,
    /// Carrier assigned on delivery.
    pub carrier: Option<u32>,
    /// The order lines.
    pub lines: Vec<OrderLine>,
}

/// The warehouse row.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarehouseRow {
    /// Year-to-date payment total in cents.
    pub ytd_cents: i64,
}

/// The district row with its order book.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistrictRow {
    /// Year-to-date payment total in cents.
    pub ytd_cents: i64,
    /// Next order id.
    pub next_o_id: u32,
    /// Recent orders (pruned to [`ORDER_RETENTION`] delivered ones).
    ///
    /// Orders sit behind `Arc` so the copy-on-write clone a replica makes
    /// before mutating a shared district row copies one deque of pointers,
    /// not every order book and its line vectors — district rows are the
    /// hottest rows in the workload, and deep-cloning ~[`ORDER_RETENTION`]
    /// orders per write dominated the simulator's allocation profile.
    pub orders: VecDeque<Arc<Order>>,
    /// Ids of undelivered orders, oldest first (the NEW-ORDER table).
    pub new_orders: VecDeque<u32>,
    /// History record count (the HISTORY table, insert-only).
    pub history_count: u64,
}

impl Default for DistrictRow {
    fn default() -> Self {
        DistrictRow {
            ytd_cents: 0,
            next_o_id: 1,
            orders: VecDeque::new(),
            new_orders: VecDeque::new(),
            history_count: 0,
        }
    }
}

/// One customer row.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CustomerRow {
    /// Balance in cents.
    pub balance_cents: i64,
    /// Year-to-date payments in cents.
    pub ytd_payment_cents: i64,
    /// Payments made.
    pub payment_count: u32,
    /// Deliveries received.
    pub delivery_count: u32,
    /// Most recent order id, if any.
    pub last_order: Option<u32>,
}

/// One stock row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StockRow {
    /// Quantity on hand.
    pub quantity: i32,
    /// Year-to-date quantity sold.
    pub ytd: u64,
    /// Orders served.
    pub order_count: u32,
    /// Remote orders served.
    pub remote_count: u32,
}

impl Default for StockRow {
    fn default() -> Self {
        StockRow { quantity: 100, ytd: 0, order_count: 0, remote_count: 0 }
    }
}

/// Any TPC-C row value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TpccValue {
    /// A warehouse row.
    Warehouse(WarehouseRow),
    /// A district row.
    District(DistrictRow),
    /// A customer row.
    Customer(CustomerRow),
    /// A stock row.
    Stock(StockRow),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_ids_are_unique_across_tables() {
        let ids = [warehouse_var(1), district_var(1, 0), customer_var(1, 0, 0), stock_var(1, 0)];
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn encoding_roundtrips() {
        let v = customer_var(7, 3, 42);
        assert_eq!(table_of(v), Table::Customer);
        assert_eq!(warehouse_of(v), 7);
        assert_eq!(district_of(v), 3);
        let s = stock_var(9, 1234);
        assert_eq!(table_of(s), Table::Stock);
        assert_eq!(warehouse_of(s), 9);
    }

    #[test]
    fn localities_follow_the_paper() {
        // District-scoped rows share the district key.
        assert_eq!(locality(district_var(2, 5)), locality(customer_var(2, 5, 9)));
        // Warehouse-scoped rows share the warehouse key.
        assert_eq!(locality(warehouse_var(2)), locality(stock_var(2, 77)));
        // Districts of the same warehouse are distinct vertices.
        assert_ne!(locality(district_var(2, 5)), locality(district_var(2, 6)));
        // Warehouse and district keys never collide.
        assert_ne!(locality(warehouse_var(0)), locality(district_var(0, 0)));
    }

    #[test]
    fn item_prices_are_deterministic_and_positive() {
        assert_eq!(item_price_cents(42), item_price_cents(42));
        for i in 0..1000 {
            let p = item_price_cents(i);
            assert!((100..=10_000).contains(&p), "price {p}");
        }
    }
}
