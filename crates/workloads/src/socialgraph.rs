//! Synthetic social graphs.
//!
//! The paper evaluates Chirper on the Higgs Twitter dataset (456k users,
//! 14M follow edges) — a heavy-tailed directed graph we cannot redistribute
//! offline. [`SocialGraph::barabasi_albert`] generates a preferential-
//! attachment graph with the same qualitative property that drives the
//! paper's results: a power-law follower distribution where a few
//! "celebrities" have enormous follower counts, making their posts
//! multi-partition commands.

use std::io::BufRead;

use rand::rngs::StdRng;
use rand::Rng;

/// A directed follow graph: `follows[u]` is whom `u` follows,
/// `followers[u]` who follows `u`.
#[derive(Debug, Clone, Default)]
pub struct SocialGraph {
    follows: Vec<Vec<u64>>,
    followers: Vec<Vec<u64>>,
}

impl SocialGraph {
    /// Creates an empty graph with `n` users and no edges.
    pub fn new(n: usize) -> Self {
        SocialGraph { follows: vec![Vec::new(); n], followers: vec![Vec::new(); n] }
    }

    /// Generates a Barabási–Albert preferential-attachment graph: users
    /// join one at a time and follow `m` existing users chosen
    /// proportionally to their current follower counts (plus one), giving
    /// a power-law follower distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `m == 0`.
    pub fn barabasi_albert(n: usize, m: usize, rng: &mut StdRng) -> Self {
        assert!(n >= 2, "need at least two users");
        assert!(m >= 1, "each user must follow someone");
        let mut g = SocialGraph::new(n);
        // Repeated-endpoint list: every follower edge adds its followee
        // once, approximating preferential attachment in O(1) per draw.
        let mut endpoints: Vec<u64> = vec![0];
        g.add_follow(1, 0);
        endpoints.push(1); // keep early users drawable
        for u in 2..n as u64 {
            let picks = m.min(u as usize);
            let mut chosen: Vec<u64> = Vec::with_capacity(picks);
            let mut guard = 0;
            while chosen.len() < picks && guard < 100 * picks {
                guard += 1;
                // Mix preferential attachment with uniform choice so new
                // users are reachable too.
                let v = if rng.gen_bool(0.8) {
                    endpoints[rng.gen_range(0..endpoints.len())]
                } else {
                    rng.gen_range(0..u)
                };
                if v != u && !chosen.contains(&v) {
                    chosen.push(v);
                }
            }
            for v in chosen {
                g.add_follow(u, v);
                endpoints.push(v);
            }
            endpoints.push(u);
        }
        g
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.follows.len()
    }

    /// Total number of follow edges.
    pub fn edges(&self) -> usize {
        self.follows.iter().map(|f| f.len()).sum()
    }

    /// Adds user ids up to `user` if absent, then the follow edge
    /// `follower → followee`. Duplicate edges are ignored.
    pub fn add_follow(&mut self, follower: u64, followee: u64) {
        let needed = (follower.max(followee) + 1) as usize;
        if self.follows.len() < needed {
            self.follows.resize(needed, Vec::new());
            self.followers.resize(needed, Vec::new());
        }
        if follower != followee && !self.follows[follower as usize].contains(&followee) {
            self.follows[follower as usize].push(followee);
            self.followers[followee as usize].push(follower);
        }
    }

    /// Removes the follow edge if present.
    pub fn remove_follow(&mut self, follower: u64, followee: u64) {
        if let Some(f) = self.follows.get_mut(follower as usize) {
            f.retain(|&v| v != followee);
        }
        if let Some(f) = self.followers.get_mut(followee as usize) {
            f.retain(|&v| v != follower);
        }
    }

    /// Whom `user` follows.
    pub fn follows_of(&self, user: u64) -> &[u64] {
        &self.follows[user as usize]
    }

    /// Who follows `user`.
    pub fn followers_of(&self, user: u64) -> &[u64] {
        &self.followers[user as usize]
    }

    /// Adds a brand-new user and returns their id.
    pub fn add_user(&mut self) -> u64 {
        self.follows.push(Vec::new());
        self.followers.push(Vec::new());
        (self.follows.len() - 1) as u64
    }

    /// The co-access edges a workload over this graph induces (user ↔ each
    /// follower), for offline partitioner-optimized placement (S-SMR\*).
    pub fn coaccess_edges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.follows.iter().enumerate().flat_map(|(u, fs)| fs.iter().map(move |&v| (u as u64, v)))
    }

    /// The user with the most followers (the natural "celebrity").
    pub fn most_followed(&self) -> Option<u64> {
        (0..self.users() as u64).max_by_key(|&u| self.followers_of(u).len())
    }

    /// Parses a SNAP-style edge list (`follower followee` per line, `#`
    /// comments ignored) — the format of the paper's Higgs Twitter
    /// dataset. Node ids are compacted to a dense `0..n` range in first-
    /// appearance order.
    ///
    /// # Errors
    ///
    /// Returns an error if a line is malformed or ids fail to parse.
    pub fn from_edge_list<R: BufRead>(reader: R) -> Result<Self, String> {
        let mut g = SocialGraph::default();
        let mut ids: dynastar_runtime::hash::FastHashMap<u64, u64> = Default::default();
        let mut intern = |raw: u64, g: &mut SocialGraph| -> u64 {
            *ids.entry(raw).or_insert_with(|| g.add_user())
        };
        for (lineno, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| format!("read error at line {}: {e}", lineno + 1))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (a, b) = match (it.next(), it.next()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(format!("line {}: expected two node ids", lineno + 1)),
            };
            let a: u64 =
                a.parse().map_err(|e| format!("line {}: bad id {a:?}: {e}", lineno + 1))?;
            let b: u64 =
                b.parse().map_err(|e| format!("line {}: bad id {b:?}: {e}", lineno + 1))?;
            let (fa, fb) = (intern(a, &mut g), intern(b, &mut g));
            g.add_follow(fa, fb);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ba_graph_has_expected_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = SocialGraph::barabasi_albert(1000, 5, &mut rng);
        assert_eq!(g.users(), 1000);
        // Roughly m edges per user after the first few.
        assert!(g.edges() > 4_000, "edges = {}", g.edges());
        assert!(g.edges() < 5_100, "edges = {}", g.edges());
    }

    #[test]
    fn ba_graph_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = SocialGraph::barabasi_albert(2000, 4, &mut rng);
        let mut counts: Vec<usize> =
            (0..g.users() as u64).map(|u| g.followers_of(u).len()).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top1pct: usize = counts.iter().take(g.users() / 100).sum();
        // The top 1% of users should hold a disproportionate share (>10%)
        // of all follower edges — the "celebrity" effect.
        assert!(top1pct * 10 > total, "top1% = {top1pct} of {total}");
    }

    #[test]
    fn follow_unfollow_roundtrip() {
        let mut g = SocialGraph::new(3);
        g.add_follow(0, 1);
        g.add_follow(2, 1);
        assert_eq!(g.followers_of(1), &[0, 2]);
        assert_eq!(g.follows_of(0), &[1]);
        g.remove_follow(0, 1);
        assert_eq!(g.followers_of(1), &[2]);
    }

    #[test]
    fn duplicate_and_self_follows_ignored() {
        let mut g = SocialGraph::new(2);
        g.add_follow(0, 1);
        g.add_follow(0, 1);
        g.add_follow(0, 0);
        assert_eq!(g.edges(), 1);
    }

    #[test]
    fn add_user_extends_graph() {
        let mut g = SocialGraph::new(2);
        let u = g.add_user();
        assert_eq!(u, 2);
        g.add_follow(u, 0);
        assert_eq!(g.followers_of(0), &[2]);
    }

    #[test]
    fn most_followed_finds_celebrity() {
        let mut g = SocialGraph::new(5);
        for u in 1..5 {
            g.add_follow(u, 0);
        }
        assert_eq!(g.most_followed(), Some(0));
    }

    #[test]
    fn edge_list_parses_snap_format() {
        let input = "# the Higgs dataset uses this format\n1 2\n3 1\n\n2 3\n";
        let g = SocialGraph::from_edge_list(std::io::Cursor::new(input)).unwrap();
        assert_eq!(g.users(), 3);
        assert_eq!(g.edges(), 3);
        // raw 1 -> dense 0, raw 2 -> dense 1, raw 3 -> dense 2.
        assert_eq!(g.follows_of(0), &[1]);
        assert_eq!(g.followers_of(0), &[2]);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(SocialGraph::from_edge_list(std::io::Cursor::new("1\n")).is_err());
        assert!(SocialGraph::from_edge_list(std::io::Cursor::new("a b\n")).is_err());
    }

    #[test]
    fn coaccess_edges_cover_follow_edges() {
        let mut g = SocialGraph::new(3);
        g.add_follow(0, 1);
        g.add_follow(2, 0);
        let edges: Vec<(u64, u64)> = g.coaccess_edges().collect();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 0)));
    }
}
