//! Initial-placement strategies for benchmark state.
//!
//! * [`random`] — DynaStar's starting condition in the paper's Figures 2
//!   and 6 (objects scattered uniformly).
//! * [`round_robin`] — a deterministic balanced baseline.
//! * [`optimized`] — the offline METIS step that gives S-SMR its `*`:
//!   partition the co-access graph with the multilevel partitioner before
//!   the run, so the static system starts from the best placement the
//!   workload allows.

use std::collections::BTreeMap;

use dynastar_core::{LocKey, PartitionId};
use dynastar_partitioner::{partition, GraphBuilder, PartitionConfig};
use rand::rngs::StdRng;
use rand::Rng;

/// Scatters `keys` uniformly at random over `partitions`.
///
/// # Panics
///
/// Panics if `partitions` is zero.
pub fn random(
    keys: impl IntoIterator<Item = LocKey>,
    partitions: u32,
    rng: &mut StdRng,
) -> BTreeMap<LocKey, PartitionId> {
    assert!(partitions > 0, "need at least one partition");
    keys.into_iter().map(|k| (k, PartitionId(rng.gen_range(0..partitions)))).collect()
}

/// Assigns `keys` round-robin in iteration order.
///
/// # Panics
///
/// Panics if `partitions` is zero.
pub fn round_robin(
    keys: impl IntoIterator<Item = LocKey>,
    partitions: u32,
) -> BTreeMap<LocKey, PartitionId> {
    assert!(partitions > 0, "need at least one partition");
    keys.into_iter().enumerate().map(|(i, k)| (k, PartitionId((i as u32) % partitions))).collect()
}

/// Computes a partitioner-optimized placement from a co-access edge list
/// over locality keys (the S-SMR\* offline METIS run, §5.5/§6.4).
///
/// Keys never mentioned in `edges` must still appear in `keys`.
///
/// # Panics
///
/// Panics if `partitions` is zero.
pub fn optimized(
    keys: impl IntoIterator<Item = LocKey>,
    edges: impl IntoIterator<Item = (LocKey, LocKey, u64)>,
    partitions: u32,
    seed: u64,
) -> BTreeMap<LocKey, PartitionId> {
    assert!(partitions > 0, "need at least one partition");
    let keys: Vec<LocKey> = {
        let mut ks: Vec<LocKey> = keys.into_iter().collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    };
    let index: BTreeMap<LocKey, u32> =
        keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
    let mut b = GraphBuilder::new();
    if !keys.is_empty() {
        b.add_vertex(keys.len() as u32 - 1);
    }
    for (x, y, w) in edges {
        if let (Some(&ix), Some(&iy)) = (index.get(&x), index.get(&y)) {
            b.add_edge(ix, iy, w);
        }
    }
    let g = b.build();
    let p = partition(&g, partitions, &PartitionConfig::default().seed(seed));
    keys.iter().enumerate().map(|(i, &k)| (k, PartitionId(p.part_of(i as u32)))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn keys(n: u64) -> Vec<LocKey> {
        (0..n).map(LocKey).collect()
    }

    #[test]
    fn random_covers_all_partitions() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = random(keys(1000), 4, &mut rng);
        assert_eq!(p.len(), 1000);
        for part in 0..4 {
            assert!(p.values().any(|&x| x == PartitionId(part)));
        }
    }

    #[test]
    fn round_robin_is_balanced() {
        let p = round_robin(keys(12), 4);
        let mut counts = [0; 4];
        for &part in p.values() {
            counts[part.0 as usize] += 1;
        }
        assert_eq!(counts, [3, 3, 3, 3]);
    }

    #[test]
    fn optimized_colocates_clusters() {
        // Two tight clusters of 5 keys each.
        let mut edges = Vec::new();
        for c in 0..2u64 {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((LocKey(c * 5 + i), LocKey(c * 5 + j), 10));
                }
            }
        }
        edges.push((LocKey(0), LocKey(5), 1)); // weak link
        let p = optimized(keys(10), edges, 2, 1);
        for c in 0..2u64 {
            let first = p[&LocKey(c * 5)];
            for i in 1..5 {
                assert_eq!(p[&LocKey(c * 5 + i)], first, "cluster {c} split");
            }
        }
        assert_ne!(p[&LocKey(0)], p[&LocKey(5)]);
    }

    #[test]
    fn optimized_places_isolated_keys() {
        let p = optimized(keys(8), Vec::new(), 4, 2);
        assert_eq!(p.len(), 8);
    }
}
