//! Adversarial scenario generators.
//!
//! The robustness suite stresses DynaStar's repartitioning loop with the
//! access patterns that hurt a dynamic partitioner most:
//!
//! * **Flash crowd** ([`flash_crowd`]) — a "celebrity post" moment: a large
//!   share of post/follow traffic suddenly concentrates on one user,
//!   yanking the workload graph's hot spot to a single vertex.
//! * **Diurnal rotation** ([`DiurnalRotation`]) — the hot region of the
//!   keyspace rotates on a fixed period, like follow-the-sun traffic; every
//!   rotation invalidates the previous plan's locality.
//! * **Zipf ramp** ([`ZipfRamp`]) — the skew parameter itself drifts over
//!   time, flattening or sharpening the popularity curve under the
//!   partitioner's feet.
//! * **Membership churn** ([`churn_nemesis`]) — repeated crash-restart
//!   waves plus asymmetric degraded links, timed to overlap state
//!   migration.
//! * **Migration brownout** ([`migration_brownout`]) — every link between
//!   two replica groups degrades for one window, starving staged chunk
//!   transfers of acks until sources give up and revert mid-chain.
//!
//! [`DiurnalRotation`] and [`ZipfRamp`] implement [`AccessPattern`]; wrap
//! one in a [`ScenarioWorkload`] together with a command factory to drive
//! any [`Application`]. Everything here is deterministic given the
//! workload RNG the simulator hands out.

use std::sync::{Arc, Mutex};

use dynastar_core::{Application, CommandKind, Workload};
use dynastar_runtime::nemesis::{LinkFaultEvent, NemesisConfig, NemesisPlan};
use dynastar_runtime::{NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;

use crate::chirper::{ChirperMix, ChirperWorkload};
use crate::socialgraph::SocialGraph;
use crate::zipf::Zipf;

/// A time-varying popularity distribution over `{0, …, n-1}`.
pub trait AccessPattern {
    /// Draws the next accessed rank at simulated time `now`.
    fn next_rank(&mut self, now: SimTime, rng: &mut StdRng) -> u64;

    /// The domain size.
    fn domain(&self) -> u64;
}

/// A static Zipfian pattern (the non-adversarial baseline).
impl AccessPattern for Zipf {
    fn next_rank(&mut self, _now: SimTime, rng: &mut StdRng) -> u64 {
        self.sample(rng)
    }

    fn domain(&self) -> u64 {
        Zipf::domain(self)
    }
}

/// Diurnal access rotation: Zipf-popular ranks stay Zipf-popular, but the
/// identity of the hot keys shifts by `stride` every `period` — the whole
/// popularity curve "rotates" through the keyspace like timezone-driven
/// daily load. Each rotation instantly obsoletes the locality the previous
/// plan optimized for.
#[derive(Debug, Clone)]
pub struct DiurnalRotation {
    zipf: Zipf,
    period: SimDuration,
    stride: u64,
}

impl DiurnalRotation {
    /// Creates a rotation over `{0, …, n-1}` with skew `theta`, shifting
    /// the hot spot by `stride` keys every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the rotation count would be undefined)
    /// or the underlying Zipf parameters are invalid.
    pub fn new(n: u64, theta: f64, period: SimDuration, stride: u64) -> Self {
        assert!(period > SimDuration::ZERO, "rotation period must be positive");
        DiurnalRotation { zipf: Zipf::new(n, theta), period, stride }
    }

    /// The rotation offset in effect at `now`.
    pub fn offset_at(&self, now: SimTime) -> u64 {
        let rotations = now.as_micros() / self.period.as_micros().max(1);
        rotations.wrapping_mul(self.stride) % self.zipf.domain()
    }
}

impl AccessPattern for DiurnalRotation {
    fn next_rank(&mut self, now: SimTime, rng: &mut StdRng) -> u64 {
        (self.zipf.sample(rng) + self.offset_at(now)) % self.zipf.domain()
    }

    fn domain(&self) -> u64 {
        self.zipf.domain()
    }
}

/// A linear ramp of the Zipf skew parameter from `theta0` at `t0` to
/// `theta1` at `t1`: the popularity curve sharpens (or flattens) while the
/// run is in progress. The effective theta is quantized to steps of 0.01
/// and clamped into `(0.01, 0.99)` so the sampler is rebuilt at most ~100
/// times per run and its `(0, 1)` precondition always holds.
#[derive(Debug, Clone)]
pub struct ZipfRamp {
    n: u64,
    theta0: f64,
    theta1: f64,
    t0: SimTime,
    t1: SimTime,
    /// The sampler for the currently effective quantized theta.
    cached: (f64, Zipf),
}

impl ZipfRamp {
    /// Quantization step for the effective theta.
    const STEP: f64 = 0.01;

    fn clamp_quantize(theta: f64) -> f64 {
        let q = (theta / Self::STEP).round() * Self::STEP;
        q.clamp(Self::STEP, 1.0 - Self::STEP)
    }

    /// Creates a ramp over `{0, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `t1 <= t0`.
    pub fn new(n: u64, theta0: f64, theta1: f64, t0: SimTime, t1: SimTime) -> Self {
        assert!(t1 > t0, "ramp needs a positive duration");
        let q = Self::clamp_quantize(theta0);
        ZipfRamp { n, theta0, theta1, t0, t1, cached: (q, Zipf::new(n, q)) }
    }

    /// The quantized skew in effect at `now`.
    pub fn theta_at(&self, now: SimTime) -> f64 {
        let frac = if now <= self.t0 {
            0.0
        } else if now >= self.t1 {
            1.0
        } else {
            now.saturating_duration_since(self.t0).as_micros() as f64
                / self.t1.saturating_duration_since(self.t0).as_micros() as f64
        };
        Self::clamp_quantize(self.theta0 + (self.theta1 - self.theta0) * frac)
    }
}

impl AccessPattern for ZipfRamp {
    fn next_rank(&mut self, now: SimTime, rng: &mut StdRng) -> u64 {
        let theta = self.theta_at(now);
        if (theta - self.cached.0).abs() >= Self::STEP / 2.0 {
            self.cached = (theta, Zipf::new(self.n, theta));
        }
        self.cached.1.sample(rng)
    }

    fn domain(&self) -> u64 {
        self.n
    }
}

/// A closed-loop workload that draws ranks from an [`AccessPattern`] and
/// turns each into a command via a factory — the glue that lets any
/// pattern drive any [`Application`].
pub struct ScenarioWorkload<A: Application, P, F>
where
    P: AccessPattern + 'static,
    F: FnMut(u64, &mut StdRng) -> CommandKind<A> + 'static,
{
    pattern: P,
    make: F,
    remaining: Option<u64>,
}

impl<A: Application, P, F> ScenarioWorkload<A, P, F>
where
    P: AccessPattern + 'static,
    F: FnMut(u64, &mut StdRng) -> CommandKind<A> + 'static,
{
    /// Creates a workload: `make(rank, rng)` builds the command for each
    /// drawn rank.
    pub fn new(pattern: P, make: F) -> Self {
        ScenarioWorkload { pattern, make, remaining: None }
    }

    /// Caps the number of commands issued.
    pub fn with_budget(mut self, commands: u64) -> Self {
        self.remaining = Some(commands);
        self
    }
}

impl<A: Application, P, F> Workload<A> for ScenarioWorkload<A, P, F>
where
    P: AccessPattern + 'static,
    F: FnMut(u64, &mut StdRng) -> CommandKind<A> + 'static,
{
    fn next_command(&mut self, now: SimTime, rng: &mut StdRng) -> Option<CommandKind<A>> {
        if let Some(rem) = self.remaining.as_mut() {
            if *rem == 0 {
                return None;
            }
            *rem -= 1;
        }
        let rank = self.pattern.next_rank(now, rng);
        Some((self.make)(rank, rng))
    }
}

/// The "celebrity post" flash crowd: a Chirper workload whose post/follow
/// traffic redirects to `celebrity` with probability `percent`% starting
/// at `at`. Before `at` the workload is the plain Zipf/`mix` baseline, so
/// one run contains its own before/after comparison.
pub fn flash_crowd(
    graph: Arc<Mutex<SocialGraph>>,
    theta: f64,
    mix: ChirperMix,
    celebrity: u64,
    percent: u32,
    at: SimTime,
) -> ChirperWorkload {
    ChirperWorkload::new(graph, theta, mix)
        .with_celebrity(celebrity, percent)
        .with_celebrity_after(at)
}

/// Partition-membership churn tuned to overlap state migration: repeated
/// synchronized crash-restart waves plus asymmetric degraded links, on top
/// of the base random fault schedule. `waves` crash waves and `waves`
/// link-degradation windows are spread across `[start, end)`.
pub fn churn_nemesis(seed: u64, start: SimTime, end: SimTime, waves: u32) -> NemesisConfig {
    NemesisConfig {
        seed,
        start,
        end,
        crash_waves: waves,
        wave_downtime: SimDuration::from_secs(2),
        link_faults: waves,
        link_extra_delay: SimDuration::from_millis(5),
        link_loss_pm: 100_000,
        ..NemesisConfig::default()
    }
}

/// A *migration brownout*: for one `[start, end)` window, every directed
/// link between the replicas of group `a` and the replicas of group `b` is
/// degraded by `extra_delay` of one-way latency and `loss_pm` of loss —
/// both directions, all replica pairs.
///
/// Staged migration fans each chunk out from every source replica to every
/// destination replica (and acks fan back the same way), so the single
/// random directed edge a [`NemesisConfig::link_faults`] window degrades
/// can never starve a transfer of acks. The brownout closes that gap: with
/// the whole inter-group mesh lossy, chunk retries escalate into give-up
/// reverts exactly while later plans keep re-routing the same keys. No
/// node goes down and every edge repairs at `end`, so runs converge after
/// the window.
pub fn migration_brownout(
    a: &[NodeId],
    b: &[NodeId],
    start: SimTime,
    end: SimTime,
    extra_delay: SimDuration,
    loss_pm: u32,
) -> NemesisPlan {
    assert!(end > start, "brownout window is empty");
    let mut link_events = Vec::new();
    for &x in a {
        for &y in b {
            for (from, to) in [(x, y), (y, x)] {
                link_events.push(LinkFaultEvent {
                    from,
                    to,
                    at: start,
                    repair_at: end,
                    extra_delay,
                    loss_pm,
                });
            }
        }
    }
    link_events.sort_by_key(|e| (e.at, e.from.as_raw(), e.to.as_raw()));
    NemesisPlan { events: Vec::new(), link_events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn diurnal_rotation_moves_the_hot_spot() {
        let mut rot = DiurnalRotation::new(1_000, 0.95, SimDuration::from_secs(10), 250);
        let mut rng = StdRng::seed_from_u64(1);
        let hot_at = |rot: &mut DiurnalRotation, rng: &mut StdRng, t: SimTime| {
            let mut counts = [0u32; 4];
            for _ in 0..2_000 {
                counts[(rot.next_rank(t, rng) / 250) as usize] += 1;
            }
            counts.iter().enumerate().max_by_key(|&(_, c)| c).map(|(i, _)| i).unwrap()
        };
        // At t=0 the hot quarter is ranks 0..250; one period later the
        // offset advances by exactly one quarter.
        assert_eq!(rot.offset_at(SimTime::ZERO), 0);
        assert_eq!(rot.offset_at(SimTime::from_secs(10)), 250);
        let q0 = hot_at(&mut rot, &mut rng, SimTime::ZERO);
        let q1 = hot_at(&mut rot, &mut rng, SimTime::from_secs(10));
        assert_eq!(q0, 0);
        assert_eq!(q1, 1, "hot region must rotate with the period");
    }

    #[test]
    fn zipf_ramp_interpolates_and_clamps() {
        let ramp = ZipfRamp::new(100, 0.2, 0.9, SimTime::from_secs(10), SimTime::from_secs(20));
        assert_eq!(ramp.theta_at(SimTime::ZERO), 0.2, "flat before t0");
        assert_eq!(ramp.theta_at(SimTime::from_secs(30)), 0.9, "flat after t1");
        let mid = ramp.theta_at(SimTime::from_secs(15));
        assert!((mid - 0.55).abs() < 1e-9, "midpoint ≈ 0.55, got {mid}");
        // Extreme endpoints stay inside Zipf's (0, 1) precondition.
        let wild = ZipfRamp::new(100, -3.0, 7.0, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(wild.theta_at(SimTime::ZERO), 0.01);
        assert_eq!(wild.theta_at(SimTime::from_secs(5)), 0.99);
    }

    #[test]
    fn zipf_ramp_sharpens_over_time() {
        let mut ramp = ZipfRamp::new(1_000, 0.1, 0.95, SimTime::ZERO, SimTime::from_secs(10));
        let mut rng = StdRng::seed_from_u64(2);
        let top10 = |ramp: &mut ZipfRamp, rng: &mut StdRng, t: SimTime| {
            (0..5_000).filter(|_| ramp.next_rank(t, rng) < 10).count()
        };
        let early = top10(&mut ramp, &mut rng, SimTime::ZERO);
        let late = top10(&mut ramp, &mut rng, SimTime::from_secs(10));
        assert!(late > early * 2, "skew must grow along the ramp: {early} → {late}");
    }

    #[test]
    fn scenario_workload_budget_and_domain() {
        struct App;
        impl Application for App {
            type Op = ();
            type Value = u64;
            type Reply = ();
            fn locality(var: dynastar_core::VarId) -> dynastar_core::LocKey {
                dynastar_core::LocKey(var.0)
            }
            fn execute(
                _: &(),
                _: &mut std::collections::BTreeMap<dynastar_core::VarId, Option<u64>>,
            ) {
            }
        }
        let pattern = DiurnalRotation::new(50, 0.5, SimDuration::from_secs(1), 10);
        let mut w = ScenarioWorkload::<App, _, _>::new(pattern, |rank, _| CommandKind::Access {
            op: (),
            vars: vec![dynastar_core::VarId(rank)],
        })
        .with_budget(3);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3 {
            let Some(CommandKind::Access { vars, .. }) = w.next_command(SimTime::ZERO, &mut rng)
            else {
                panic!("expected an access command")
            };
            assert!(vars[0].0 < 50);
        }
        assert!(w.next_command(SimTime::ZERO, &mut rng).is_none());
    }

    #[test]
    fn migration_brownout_degrades_the_full_intergroup_mesh() {
        let a: Vec<NodeId> = (0..3).map(NodeId::from_raw).collect();
        let b: Vec<NodeId> = (3..6).map(NodeId::from_raw).collect();
        let plan = migration_brownout(
            &a,
            &b,
            SimTime::from_secs(4),
            SimTime::from_secs(9),
            SimDuration::from_millis(2),
            900_000,
        );
        // 3x3 pairs, both directions; no node-level faults.
        assert_eq!(plan.link_fault_count(), 18);
        assert_eq!(plan.events.len(), 0);
        for l in &plan.link_events {
            let forward = a.contains(&l.from) && b.contains(&l.to);
            let reverse = b.contains(&l.from) && a.contains(&l.to);
            assert!(forward || reverse, "edge must cross the two groups");
            assert_eq!(l.at, SimTime::from_secs(4));
            assert_eq!(l.repair_at, SimTime::from_secs(9));
            assert_eq!(l.loss_pm, 900_000);
        }
        assert_eq!(plan.last_repair(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn churn_nemesis_preset_schedules_waves_and_link_faults() {
        let cfg = churn_nemesis(9, SimTime::from_secs(2), SimTime::from_secs(30), 3);
        assert_eq!(cfg.crash_waves, 3);
        assert_eq!(cfg.link_faults, 3);
        // Three 3-replica groups (2 partitions + oracle), like the bench
        // fixtures.
        let groups: Vec<Vec<dynastar_runtime::NodeId>> = (0..3)
            .map(|g| (0..3).map(|r| dynastar_runtime::NodeId::from_raw(g * 3 + r)).collect())
            .collect();
        let plan = dynastar_runtime::nemesis::NemesisPlan::generate(&cfg, &groups);
        assert!(plan.crash_count() >= 3, "waves must schedule crashes");
        assert_eq!(plan.link_fault_count(), 3);
    }
}
