//! Bounded-memory deduplication sets and maps.
//!
//! Long simulations process millions of messages; exact-forever dedup sets
//! and reply caches would dominate memory. [`RotatingSet`] and
//! [`RotatingMap`] keep the most recent ~`2 × capacity` entries using the
//! classic two-generation rotation: inserts go to the young generation;
//! when it fills, the old generation is dropped and the generations swap.
//! An entry is therefore remembered for at least `capacity` subsequent
//! inserts — far longer than any protocol-level duplicate can lag in
//! practice.

use std::hash::Hash;

use crate::hash::{FastHashMap, FastHashSet};

/// A set that remembers at least the last `capacity` inserted elements.
#[derive(Debug, Clone)]
pub struct RotatingSet<T> {
    young: FastHashSet<T>,
    old: FastHashSet<T>,
    capacity: usize,
}

impl<T: Eq + Hash> RotatingSet<T> {
    /// Creates a set that retains at least `capacity` recent elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RotatingSet { young: FastHashSet::default(), old: FastHashSet::default(), capacity }
    }

    /// Inserts `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        if self.old.contains(&value) || self.young.contains(&value) {
            return false;
        }
        if self.young.len() >= self.capacity {
            self.old = std::mem::take(&mut self.young);
        }
        self.young.insert(value)
    }

    /// Whether `value` is remembered.
    pub fn contains(&self, value: &T) -> bool {
        self.young.contains(value) || self.old.contains(value)
    }

    /// Number of remembered elements.
    pub fn len(&self) -> usize {
        self.young.len() + self.old.len()
    }

    /// Whether nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.young.is_empty() && self.old.is_empty()
    }

    /// Removes `value` from both generations, returning whether it was
    /// present.
    pub fn remove(&mut self, value: &T) -> bool {
        let a = self.young.remove(value);
        let b = self.old.remove(value);
        a || b
    }
}

/// A map that remembers at least the last `capacity` inserted entries.
#[derive(Debug, Clone)]
pub struct RotatingMap<K, V> {
    young: FastHashMap<K, V>,
    old: FastHashMap<K, V>,
    capacity: usize,
}

impl<K: Eq + Hash, V> RotatingMap<K, V> {
    /// Creates a map that retains at least `capacity` recent entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RotatingMap { young: FastHashMap::default(), old: FastHashMap::default(), capacity }
    }

    /// Inserts or updates an entry.
    pub fn insert(&mut self, key: K, value: V) {
        if self.young.len() >= self.capacity && !self.young.contains_key(&key) {
            self.old = std::mem::take(&mut self.young);
        }
        self.young.insert(key, value);
    }

    /// Looks up `key` in either generation.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.young.get(key).or_else(|| self.old.get(key))
    }

    /// Whether `key` is remembered.
    pub fn contains_key(&self, key: &K) -> bool {
        self.young.contains_key(key) || self.old.contains_key(key)
    }

    /// Number of remembered entries.
    pub fn len(&self) -> usize {
        self.young.len() + self.old.len()
    }

    /// Whether nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.young.is_empty() && self.old.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_dedups_recent_elements() {
        let mut s = RotatingSet::new(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(&1));
        assert!(!s.contains(&2));
    }

    #[test]
    fn set_retains_at_least_capacity() {
        let mut s = RotatingSet::new(10);
        for i in 0..15 {
            s.insert(i);
        }
        // The latest 10 inserts are guaranteed remembered.
        for i in 5..15 {
            assert!(s.contains(&i), "{i} forgotten too early");
        }
        assert!(s.len() <= 20);
    }

    #[test]
    fn set_eventually_forgets() {
        let mut s = RotatingSet::new(4);
        for i in 0..100 {
            s.insert(i);
        }
        assert!(!s.contains(&0));
        assert!(s.len() <= 8);
    }

    #[test]
    fn set_remove_works_across_generations() {
        let mut s = RotatingSet::new(2);
        s.insert(1);
        s.insert(2);
        s.insert(3); // rotates {1,2} to old
        assert!(s.remove(&1));
        assert!(!s.contains(&1));
        assert!(s.remove(&3));
        assert!(!s.remove(&99));
    }

    #[test]
    fn map_basic_and_rotation() {
        let mut m = RotatingMap::new(2);
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        m.insert(3, "c"); // rotation
        assert_eq!(m.get(&1), Some(&"a"), "old generation still readable");
        m.insert(4, "d");
        m.insert(5, "e"); // drops {1,2}
        assert_eq!(m.get(&1), None);
        assert!(m.contains_key(&5));
        assert!(!m.is_empty());
        assert!(m.len() <= 4);
    }

    #[test]
    fn set_empty_flags() {
        let s: RotatingSet<u32> = RotatingSet::new(1);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
