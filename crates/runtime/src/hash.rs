//! Deterministic fast hashing for hot-path maps.
//!
//! `std::collections::HashMap`'s default SipHash is keyed per process for
//! HashDoS resistance, which the simulator neither needs (all keys are
//! internal ids) nor wants: the random key makes iteration order vary
//! between runs, and the per-lookup cost shows up on every delivered frame
//! (FIFO sequencing, dedup, ARQ buffers all key by small integer ids).
//! [`FxHasher`] is the rustc multiply-xor hash: a handful of cycles per
//! word, and — having no random state — the same across runs, so map
//! iteration order is at least process-stable. Code on effect-emitting
//! paths must still sort before iterating (insertion order differs per
//! instance), but a forgotten sort becomes a reproducible bug instead of a
//! once-in-n-runs heisenbug.
//!
//! Not collision-resistant against adversarial keys; use only for maps
//! keyed by trusted internal values.

// detlint::allow(D005): these imports exist to pin an explicit deterministic hasher in the aliases below
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`]. Drop-in for hot-path maps with small
/// trusted keys (node ids, sequence numbers, message ids).
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The odd constant from FxHash (rustc's internal hasher): close to
/// 2^64 / φ, so consecutive small integers spread across the table.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Multiply-xor hasher; see module docs for the trade-offs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" hash differently.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // No random state: two independently built hashers agree, which is
        // what makes map iteration order process-stable.
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"peer-7"), hash_of(&"peer-7"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h: Vec<u64> = (0u64..64).map(|i| hash_of(&i)).collect();
        let distinct: std::collections::BTreeSet<u64> = h.iter().copied().collect();
        assert_eq!(distinct.len(), h.len(), "consecutive ids must not collide");
    }

    #[test]
    fn byte_slices_fold_in_length() {
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
        assert_ne!(hash_of(&b"".as_slice()), hash_of(&b"\0".as_slice()));
    }

    #[test]
    fn fast_map_roundtrip() {
        let mut m: FastHashMap<u32, &str> = FastHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
    }
}
