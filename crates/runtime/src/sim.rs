//! The deterministic simulation scheduler.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::{Actor, Ctx, Effect, NodeId};
use crate::event::{Control, EventKind, EventQueue};
use crate::metrics::Metrics;
use crate::net::NetConfig;
use crate::time::{SimDuration, SimTime};

/// Configuration for a [`Simulation`].
///
/// # Example
///
/// ```
/// use dynastar_runtime::prelude::*;
///
/// let cfg = SimConfig::default().seed(7).net(NetConfig::default());
/// let sim: Simulation<u32> = Simulation::new(cfg);
/// assert_eq!(sim.now(), SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every per-node RNG and the network RNG derive from it.
    pub seed: u64,
    /// Network latency/loss model.
    pub net: NetConfig,
    /// Bucket width for implicitly created metric time series.
    pub metrics_bucket: SimDuration,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 0, net: NetConfig::default(), metrics_bucket: SimDuration::from_secs(1) }
    }
}

impl SimConfig {
    /// Builder-style setter for the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the network model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Builder-style setter for the metrics time-series bucket width.
    pub fn metrics_bucket(mut self, bucket: SimDuration) -> Self {
        self.metrics_bucket = bucket;
        self
    }
}

struct NodeState<M> {
    name: String,
    actor: Box<dyn Actor<M>>,
    rng: StdRng,
    /// Seed of incarnation 0; restarts derive the next incarnation's RNG
    /// from it so recovery is deterministic but decorrelated.
    base_seed: u64,
    started: bool,
    crashed: bool,
    connected: bool,
    /// Bumped on every restart; 0 for the initial boot.
    incarnation: u64,
    /// Simulated stable storage: survives crash/restart, lost never.
    stable: Vec<u8>,
    /// Sorted so any future iteration over live timers is deterministic
    /// regardless of hasher seeding (same class of latent nondeterminism
    /// PR 1 fixed in the cluster send paths).
    timer_gens: BTreeMap<u64, u64>,
}

/// An active [`Control::DegradeLink`] override on one directed link.
#[derive(Debug, Clone, Copy)]
struct LinkOverride {
    extra_delay: SimDuration,
    loss_pm: u32,
}

/// A deterministic discrete-event simulation of message-passing nodes.
///
/// Identical configuration and identical sequences of calls produce
/// identical executions; all randomness flows from [`SimConfig::seed`].
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulation<M> {
    config: SimConfig,
    now: SimTime,
    queue: EventQueue<M>,
    nodes: Vec<NodeState<M>>,
    metrics: Metrics,
    net_rng: StdRng,
    events_processed: u64,
    /// Events processed by kind: [deliveries, timers, control].
    events_by_kind: [u64; 3],
    /// Recycled effect buffer for [`Simulation::invoke`]; avoids a heap
    /// allocation per delivered event on the hot path.
    scratch_effects: Vec<Effect<M>>,
    /// Per-directed-link degradations (extra delay + loss). Consulted on
    /// every send only when non-empty; the extra loss draw happens only
    /// for overridden links, so runs without link faults consume exactly
    /// the same RNG stream as before the feature existed.
    link_overrides: BTreeMap<(NodeId, NodeId), LinkOverride>,
}

impl<M: 'static> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        let net_rng =
            StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        let mut metrics = Metrics::new();
        metrics.set_default_bucket(config.metrics_bucket);
        Simulation {
            config,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            metrics,
            net_rng,
            events_processed: 0,
            events_by_kind: [0; 3],
            scratch_effects: Vec::new(),
            link_overrides: BTreeMap::new(),
        }
    }

    /// Adds a node running `actor` and returns its id.
    ///
    /// `on_start` fires (at the current simulated time) before the node's
    /// first message once the simulation runs.
    pub fn add_node(&mut self, name: impl Into<String>, actor: impl Actor<M>) -> NodeId {
        let id = NodeId::from_raw(self.nodes.len() as u32);
        let seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(2 + id.as_raw() as u64);
        self.nodes.push(NodeState {
            name: name.into(),
            actor: Box::new(actor),
            rng: StdRng::seed_from_u64(seed),
            base_seed: seed,
            started: false,
            crashed: false,
            connected: true,
            incarnation: 0,
            stable: Vec::new(),
            timer_gens: BTreeMap::new(),
        });
        id
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The name a node was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this simulation.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.as_raw() as usize].name
    }

    /// The node's view of the key→partition location map, if its actor
    /// maintains one (see [`Actor::location_view`]). Diagnostic only.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this simulation.
    pub fn location_view(&self, id: NodeId) -> Option<Vec<(u64, u32)>> {
        self.nodes[id.as_raw() as usize].actor.location_view()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events processed so far, split as `[deliveries, timers, control]` —
    /// the breakdown perf probes report alongside the total.
    pub fn events_by_kind(&self) -> [u64; 3] {
        self.events_by_kind
    }

    /// Read access to collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Write access to collected metrics (e.g. to reset after warm-up).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Injects a message to `to` from the pseudo-node
    /// [`NodeId::EXTERNAL`], delivered after the usual network latency.
    ///
    /// Useful for driving protocols from tests without a client actor.
    pub fn send_external(&mut self, to: NodeId, msg: M) {
        if let Some(lat) = self.sample_link(NodeId::EXTERNAL, to) {
            self.queue.push(self.now + lat, EventKind::Deliver { to, from: NodeId::EXTERNAL, msg });
        } else {
            self.metrics.incr_counter("net.dropped_sends", 1);
        }
    }

    /// Samples a one-way delivery latency for `from → to`, applying any
    /// active [`Control::DegradeLink`] override on top of the base network
    /// model. `None` means the message is lost.
    fn sample_link(&mut self, from: NodeId, to: NodeId) -> Option<SimDuration> {
        let mut lat = self.config.net.sample_delivery(from, to, &mut self.net_rng)?;
        if !self.link_overrides.is_empty() {
            if let Some(o) = self.link_overrides.get(&(from, to)).copied() {
                if o.loss_pm > 0 && self.net_rng.gen_range(0..1_000_000u32) < o.loss_pm {
                    return None;
                }
                lat += o.extra_delay;
            }
        }
        Some(lat)
    }

    /// Schedules a crash of `node` at absolute time `at`. The crash is
    /// permanent unless a later [`Simulation::schedule_restart`] brings the
    /// node back.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at, EventKind::Control(Control::Crash(node)));
    }

    /// Schedules a disconnection of `node` at absolute time `at`.
    pub fn schedule_disconnect(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at, EventKind::Control(Control::Disconnect(node)));
    }

    /// Schedules a reconnection of `node` at absolute time `at`.
    pub fn schedule_reconnect(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at, EventKind::Control(Control::Reconnect(node)));
    }

    /// Schedules a restart of `node` at absolute time `at` (crash-recovery
    /// model; see [`Control::Restart`]).
    pub fn schedule_restart(&mut self, at: SimTime, node: NodeId) {
        self.queue.push(at, EventKind::Control(Control::Restart(node)));
    }

    /// Schedules a degradation of the directed link `from → to` at `at`:
    /// extra one-way latency plus extra loss in parts per million, layered
    /// on the base network model (see [`Control::DegradeLink`]).
    pub fn schedule_link_degrade(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        extra_delay: SimDuration,
        loss_pm: u32,
    ) {
        self.queue.push(
            at,
            EventKind::Control(Control::DegradeLink {
                from,
                to,
                extra_delay_us: extra_delay.as_micros(),
                loss_pm,
            }),
        );
    }

    /// Schedules removal of the `from → to` link override at `at`.
    pub fn schedule_link_repair(&mut self, at: SimTime, from: NodeId, to: NodeId) {
        self.queue.push(at, EventKind::Control(Control::RepairLink { from, to }));
    }

    /// Number of directed links currently degraded (test/debug aid).
    pub fn degraded_link_count(&self) -> usize {
        self.link_overrides.len()
    }

    /// Crashes `node` immediately.
    pub fn crash_now(&mut self, node: NodeId) {
        self.apply_control(Control::Crash(node));
    }

    /// Restarts `node` immediately (see [`Control::Restart`]).
    pub fn restart_now(&mut self, node: NodeId) {
        self.apply_control(Control::Restart(node));
    }

    /// Whether `node` has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.nodes[node.as_raw() as usize].crashed
    }

    /// Whether `node` is currently connected to the network.
    pub fn is_connected(&self, node: NodeId) -> bool {
        self.nodes[node.as_raw() as usize].connected
    }

    /// How many times `node` has restarted (0 = initial incarnation).
    pub fn incarnation(&self, node: NodeId) -> u64 {
        self.nodes[node.as_raw() as usize].incarnation
    }

    fn apply_control(&mut self, c: Control) {
        match c {
            Control::Crash(n) => {
                let node = &mut self.nodes[n.as_raw() as usize];
                if !node.crashed {
                    node.crashed = true;
                    self.metrics.incr_counter("sim.crashes", 1);
                }
            }
            Control::Restart(n) => self.perform_restart(n),
            Control::Disconnect(n) => {
                let node = &mut self.nodes[n.as_raw() as usize];
                if node.connected {
                    node.connected = false;
                    self.metrics.incr_counter("sim.disconnects", 1);
                }
            }
            Control::Reconnect(n) => {
                let node = &mut self.nodes[n.as_raw() as usize];
                if !node.connected {
                    node.connected = true;
                    self.metrics.incr_counter("sim.reconnects", 1);
                }
            }
            Control::DegradeLink { from, to, extra_delay_us, loss_pm } => {
                let o = LinkOverride {
                    extra_delay: SimDuration::from_micros(extra_delay_us),
                    loss_pm: loss_pm.min(1_000_000),
                };
                if self.link_overrides.insert((from, to), o).is_none() {
                    self.metrics.incr_counter("sim.link_degrades", 1);
                }
            }
            Control::RepairLink { from, to } => {
                if self.link_overrides.remove(&(from, to)).is_some() {
                    self.metrics.incr_counter("sim.link_repairs", 1);
                }
            }
        }
    }

    /// Brings a crashed node back up as a fresh incarnation: volatile
    /// state (pending timers, RNG stream) is discarded, the stable-storage
    /// blob survives, and the actor re-initializes in
    /// [`Actor::on_restart`]. Restarting a live node models a reboot and
    /// follows the same path.
    fn perform_restart(&mut self, n: NodeId) {
        let idx = n.as_raw() as usize;
        {
            let node = &mut self.nodes[idx];
            node.crashed = false;
            node.connected = true;
            node.started = true;
            node.incarnation += 1;
            // Invalidate every timer armed by the previous incarnation.
            for gen in node.timer_gens.values_mut() {
                *gen += 1;
            }
            let seed =
                node.base_seed.wrapping_add(node.incarnation.wrapping_mul(0xA076_1D64_78BD_642F));
            node.rng = StdRng::seed_from_u64(seed);
        }
        self.metrics.incr_counter("sim.restarts", 1);
        let blob = self.nodes[idx].stable.clone();
        self.invoke(idx, move |actor, ctx| actor.on_restart(ctx, &blob));
    }

    fn start_pending_nodes(&mut self) {
        for idx in 0..self.nodes.len() {
            if !self.nodes[idx].started && !self.nodes[idx].crashed {
                self.nodes[idx].started = true;
                self.invoke(idx, |actor, ctx| actor.on_start(ctx));
            }
        }
    }

    /// Runs one node callback and applies its effects.
    fn invoke(&mut self, idx: usize, f: impl FnOnce(&mut dyn Actor<M>, &mut Ctx<'_, M>)) {
        // Re-entrancy (e.g. restart inside a callback) just sees an empty
        // scratch buffer and allocates; the common path recycles capacity.
        let mut effects: Vec<Effect<M>> = std::mem::take(&mut self.scratch_effects);
        {
            let node = &mut self.nodes[idx];
            let mut ctx = Ctx {
                node: NodeId::from_raw(idx as u32),
                now: self.now,
                rng: &mut node.rng,
                stable: &mut node.stable,
                metrics: &mut self.metrics,
                effects: &mut effects,
            };
            f(node.actor.as_mut(), &mut ctx);
        }
        let from = NodeId::from_raw(idx as u32);
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    debug_assert!(
                        (to.as_raw() as usize) < self.nodes.len(),
                        "send to unknown node {to}"
                    );
                    let sender_connected = self.nodes[idx].connected;
                    let dest_connected =
                        self.nodes.get(to.as_raw() as usize).map(|n| n.connected).unwrap_or(false);
                    if !sender_connected || !dest_connected {
                        self.metrics.incr_counter("net.dropped_sends", 1);
                        continue;
                    }
                    if let Some(lat) = self.sample_link(from, to) {
                        self.queue.push(self.now + lat, EventKind::Deliver { to, from, msg });
                    } else {
                        self.metrics.incr_counter("net.dropped_sends", 1);
                    }
                }
                Effect::SetTimer { delay, tag } => {
                    let node = &mut self.nodes[idx];
                    let gen = node.timer_gens.entry(tag).and_modify(|g| *g += 1).or_insert(0);
                    let gen = *gen;
                    self.queue.push(self.now + delay, EventKind::Timer { node: from, tag, gen });
                }
                Effect::CancelTimer { tag } => {
                    self.nodes[idx].timer_gens.entry(tag).and_modify(|g| *g += 1).or_insert(0);
                }
            }
        }
        self.scratch_effects = effects;
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_pending_nodes();
        let Some(ev) = self.queue.pop() else { return false };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { to, from, msg } => {
                self.events_by_kind[0] += 1;
                let idx = to.as_raw() as usize;
                if idx >= self.nodes.len() {
                    return true; // message to unknown node: drop
                }
                let node = &self.nodes[idx];
                if node.crashed || !node.connected {
                    return true;
                }
                self.invoke(idx, move |actor, ctx| actor.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, tag, gen } => {
                self.events_by_kind[1] += 1;
                let idx = node.as_raw() as usize;
                let state = &self.nodes[idx];
                if state.crashed {
                    return true;
                }
                if state.timer_gens.get(&tag).copied() != Some(gen) {
                    return true; // superseded or cancelled
                }
                self.invoke(idx, move |actor, ctx| actor.on_timer(ctx, tag));
            }
            EventKind::Control(c) => {
                self.events_by_kind[2] += 1;
                self.apply_control(c);
            }
        }
        true
    }

    /// Runs until no events remain.
    ///
    /// # Panics
    ///
    /// Panics after 500 million events as a runaway-loop backstop (protocols
    /// with periodic timers never quiesce — use [`Simulation::run_until`]).
    pub fn run_until_quiescent(&mut self) {
        let mut processed: u64 = 0;
        while self.step() {
            processed += 1;
            assert!(processed < 500_000_000, "simulation did not quiesce");
        }
    }

    /// Runs until simulated time reaches `t` (events at exactly `t` are
    /// processed). Afterwards `now() == t` even if the queue drained early.
    pub fn run_until(&mut self, t: SimTime) {
        self.start_pending_nodes();
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Draws from the simulation-level RNG (for experiment harnesses that
    /// need randomness outside any node, e.g. choosing crash victims).
    pub fn harness_rng(&mut self) -> &mut StdRng {
        &mut self.net_rng
    }

    /// Deterministically derives a fresh seed for auxiliary generators.
    pub fn derive_seed(&mut self, stream: u64) -> u64 {
        self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ stream.wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ self.net_rng.gen::<u64>()
    }
}

impl<M: 'static> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LatencyModel;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    /// Echoes pings back as pongs.
    struct Echo;
    impl Actor<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                ctx.send(from, Msg::Pong(n));
            }
        }
    }

    /// Sends `count` pings, one per pong received.
    struct Pinger {
        target: NodeId,
        count: u32,
        sent: u32,
    }
    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            self.sent = 1;
            ctx.send(self.target, Msg::Ping(1));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                let now = ctx.now();
                ctx.metrics_mut().incr_counter("pongs", 1);
                ctx.metrics_mut().record_series("pongs", now, 1.0);
                if n < self.count {
                    self.sent += 1;
                    ctx.send(self.target, Msg::Ping(n + 1));
                }
            }
        }
    }

    fn ping_pong_sim(seed: u64) -> Simulation<Msg> {
        let mut sim = Simulation::new(SimConfig::default().seed(seed));
        let echo = sim.add_node("echo", Echo);
        sim.add_node("pinger", Pinger { target: echo, count: 10, sent: 0 });
        sim
    }

    #[test]
    fn ping_pong_completes() {
        let mut sim = ping_pong_sim(1);
        sim.run_until_quiescent();
        assert_eq!(sim.metrics().counter("pongs"), 10);
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = ping_pong_sim(42);
        let mut b = ping_pong_sim(42);
        a.run_until_quiescent();
        b.run_until_quiescent();
        assert_eq!(a.now(), b.now());
        assert_eq!(a.events_processed(), b.events_processed());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ping_pong_sim(1);
        let mut b = ping_pong_sim(2);
        a.run_until_quiescent();
        b.run_until_quiescent();
        // Latencies are sampled, so total elapsed time should differ.
        assert_ne!(a.now(), b.now());
    }

    #[test]
    fn run_until_stops_at_target() {
        let mut sim = ping_pong_sim(1);
        let t = SimTime::from_micros(1_200);
        sim.run_until(t);
        assert_eq!(sim.now(), t);
        // Some but not all pongs have arrived with ~0.5ms RTT legs.
        let pongs = sim.metrics().counter("pongs");
        assert!(pongs < 10, "pongs = {pongs}");
    }

    #[test]
    fn crashed_node_stops_responding() {
        let mut sim = ping_pong_sim(1);
        let echo = NodeId::from_raw(0);
        sim.schedule_crash(SimTime::from_micros(3_000), echo);
        sim.run_until_quiescent();
        assert!(sim.is_crashed(echo));
        assert!(sim.metrics().counter("pongs") < 10);
    }

    #[test]
    fn disconnect_then_reconnect_drops_only_in_between() {
        struct Beacon {
            peer: NodeId,
        }
        impl Actor<Msg> for Beacon {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
                ctx.send(self.peer, Msg::Ping(0));
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        struct Sink;
        impl Actor<Msg> for Sink {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {
                ctx.metrics_mut().incr_counter("rx", 1);
            }
        }
        let mut sim =
            Simulation::new(SimConfig::default().seed(9).net(
                NetConfig::default().latency(LatencyModel::Fixed(SimDuration::from_micros(100))),
            ));
        let sink = sim.add_node("sink", Sink);
        sim.add_node("beacon", Beacon { peer: sink });
        sim.schedule_disconnect(SimTime::from_millis(10), sink);
        sim.schedule_reconnect(SimTime::from_millis(20), sink);
        sim.run_until(SimTime::from_millis(30));
        let rx = sim.metrics().counter("rx");
        // ~10 beacons before the gap, ~10 after, ~10 lost.
        assert!((15..=25).contains(&rx), "rx = {rx}");
    }

    #[test]
    fn timer_rearm_supersedes_pending_firing() {
        struct Rearm;
        impl Actor<Msg> for Rearm {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 7);
                ctx.set_timer(SimDuration::from_millis(5), 7); // supersedes
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
                assert_eq!(tag, 7);
                assert_eq!(ctx.now(), SimTime::from_millis(5));
                ctx.metrics_mut().incr_counter("fired", 1);
            }
        }
        let mut sim = Simulation::new(SimConfig::default());
        sim.add_node("rearm", Rearm);
        sim.run_until_quiescent();
        assert_eq!(sim.metrics().counter("fired"), 1);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        struct Cancel;
        impl Actor<Msg> for Cancel {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 3);
                ctx.cancel_timer(3);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
                ctx.metrics_mut().incr_counter("fired", 1);
            }
        }
        let mut sim = Simulation::new(SimConfig::default());
        sim.add_node("cancel", Cancel);
        sim.run_until_quiescent();
        assert_eq!(sim.metrics().counter("fired"), 0);
    }

    /// Ticks every millisecond, persisting the tick count to stable
    /// storage. Also tracks a deliberately volatile counter that is NOT
    /// persisted, to observe volatile-state loss across restarts.
    struct TickLogger {
        ticks: u32,
        volatile_ticks: u32,
    }
    impl TickLogger {
        fn arm(ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
    }
    impl Actor<Msg> for TickLogger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            Self::arm(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
            self.ticks += 1;
            self.volatile_ticks += 1;
            ctx.persist(&self.ticks.to_le_bytes());
            ctx.metrics_mut().incr_counter("ticks", 1);
            Self::arm(ctx);
        }
        fn on_restart(&mut self, ctx: &mut Ctx<'_, Msg>, stable: &[u8]) {
            self.ticks = match stable.try_into() {
                Ok(bytes) => u32::from_le_bytes(bytes),
                Err(_) => 0,
            };
            self.volatile_ticks = 0;
            ctx.metrics_mut().incr_counter("recovered_from", self.ticks as u64);
            Self::arm(ctx);
        }
    }

    #[test]
    fn restart_recovers_stable_state_and_loses_volatile_state() {
        let mut sim = Simulation::new(SimConfig::default().seed(3));
        let node = sim.add_node("ticker", TickLogger { ticks: 0, volatile_ticks: 0 });
        sim.schedule_crash(SimTime::from_millis(5) + SimDuration::from_micros(500), node);
        sim.schedule_restart(SimTime::from_millis(10), node);
        sim.run_until(SimTime::from_millis(20) + SimDuration::from_micros(500));
        assert!(!sim.is_crashed(node));
        assert_eq!(sim.incarnation(node), 1);
        // 5 ticks before the crash, none while down, ~10 after restart.
        assert_eq!(sim.metrics().counter("recovered_from"), 5);
        assert_eq!(sim.metrics().counter("ticks"), 15);
        assert_eq!(sim.metrics().counter("sim.crashes"), 1);
        assert_eq!(sim.metrics().counter("sim.restarts"), 1);
    }

    #[test]
    fn restart_invalidates_timers_from_previous_incarnation() {
        // A timer armed before the crash that would fire after the restart
        // must NOT fire: it belongs to the dead incarnation.
        struct OneShot;
        impl Actor<Msg> for OneShot {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
                ctx.metrics_mut().incr_counter("fired", 1);
            }
            fn on_restart(&mut self, _ctx: &mut Ctx<'_, Msg>, _stable: &[u8]) {
                // Recovery arms nothing, so the only way "fired" increments
                // is a leaked pre-crash timer.
            }
        }
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("oneshot", OneShot);
        sim.schedule_crash(SimTime::from_millis(2), node);
        sim.schedule_restart(SimTime::from_millis(5), node);
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(sim.metrics().counter("fired"), 0);
    }

    #[test]
    fn restart_runs_are_deterministic() {
        let run = || {
            let mut sim = Simulation::new(SimConfig::default().seed(11));
            let node = sim.add_node("ticker", TickLogger { ticks: 0, volatile_ticks: 0 });
            sim.schedule_crash(SimTime::from_millis(3), node);
            sim.schedule_restart(SimTime::from_millis(6), node);
            sim.run_until(SimTime::from_millis(15));
            (sim.events_processed(), sim.metrics().counter("ticks"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn degraded_link_drops_and_delays_until_repair() {
        struct Beacon {
            peer: NodeId,
        }
        impl Actor<Msg> for Beacon {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
                ctx.send(self.peer, Msg::Ping(0));
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        struct Sink;
        impl Actor<Msg> for Sink {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {
                ctx.metrics_mut().incr_counter("rx", 1);
            }
        }
        let mut sim =
            Simulation::new(SimConfig::default().seed(4).net(
                NetConfig::default().latency(LatencyModel::Fixed(SimDuration::from_micros(100))),
            ));
        let sink = sim.add_node("sink", Sink);
        let beacon = sim.add_node("beacon", Beacon { peer: sink });
        // Total loss on beacon → sink for 10 ms out of 30 ms.
        sim.schedule_link_degrade(
            SimTime::from_millis(10),
            beacon,
            sink,
            SimDuration::from_millis(2),
            1_000_000,
        );
        sim.schedule_link_repair(SimTime::from_millis(20), beacon, sink);
        sim.run_until(SimTime::from_millis(30));
        let rx = sim.metrics().counter("rx");
        assert!((15..=25).contains(&rx), "rx = {rx}");
        assert!(sim.metrics().counter("net.dropped_sends") >= 5);
        assert_eq!(sim.metrics().counter("sim.link_degrades"), 1);
        assert_eq!(sim.metrics().counter("sim.link_repairs"), 1);
        assert_eq!(sim.degraded_link_count(), 0);
    }

    #[test]
    fn link_override_is_asymmetric() {
        struct Echo2;
        impl Actor<Msg> for Echo2 {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
                if let Msg::Ping(n) = msg {
                    ctx.metrics_mut().incr_counter("echo_rx", 1);
                    ctx.send(from, Msg::Pong(n));
                }
            }
        }
        struct Caller {
            peer: NodeId,
        }
        impl Actor<Msg> for Caller {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
                ctx.send(self.peer, Msg::Ping(0));
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
                if let Msg::Pong(_) = msg {
                    ctx.metrics_mut().incr_counter("caller_rx", 1);
                }
            }
        }
        let mut sim =
            Simulation::new(SimConfig::default().seed(5).net(
                NetConfig::default().latency(LatencyModel::Fixed(SimDuration::from_micros(100))),
            ));
        let echo = sim.add_node("echo", Echo2);
        sim.add_node("caller", Caller { peer: echo });
        // Kill only the echo → caller direction: pings still arrive,
        // pongs never do.
        let caller = NodeId::from_raw(1);
        sim.schedule_link_degrade(SimTime::ZERO, echo, caller, SimDuration::ZERO, 1_000_000);
        sim.run_until(SimTime::from_millis(20));
        assert!(sim.metrics().counter("echo_rx") >= 15);
        assert_eq!(sim.metrics().counter("caller_rx"), 0);
    }

    #[test]
    fn external_messages_reach_nodes() {
        struct Sink;
        impl Actor<Msg> for Sink {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, _msg: Msg) {
                assert_eq!(from, NodeId::EXTERNAL);
                ctx.metrics_mut().incr_counter("rx", 1);
            }
        }
        let mut sim = Simulation::new(SimConfig::default());
        let sink = sim.add_node("sink", Sink);
        sim.send_external(sink, Msg::Ping(0));
        sim.run_until_quiescent();
        assert_eq!(sim.metrics().counter("rx"), 1);
    }

    #[test]
    fn lossy_network_drops_messages() {
        let mut sim: Simulation<Msg> =
            Simulation::new(SimConfig::default().net(NetConfig::default().loss_probability(1.0)));
        struct Sink;
        impl Actor<Msg> for Sink {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {
                ctx.metrics_mut().incr_counter("rx", 1);
            }
        }
        let sink = sim.add_node("sink", Sink);
        sim.send_external(sink, Msg::Ping(0));
        sim.run_until_quiescent();
        assert_eq!(sim.metrics().counter("rx"), 0);
    }
}
