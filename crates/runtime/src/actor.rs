//! The actor abstraction protocol code is written against.

use std::fmt;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated node (process).
///
/// Node ids are dense small integers assigned by
/// [`Simulation::add_node`](crate::sim::Simulation::add_node) in creation
/// order; protocol crates treat them as opaque addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// The address used as the `from` of externally injected messages
    /// (see [`Simulation::send_external`](crate::sim::Simulation::send_external)).
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);

    /// Creates a node id from its raw index.
    ///
    /// Mostly useful in tests; real ids come from `Simulation::add_node`.
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index of this id.
    pub fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::EXTERNAL {
            write!(f, "n(ext)")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Side effects an actor can request during a callback.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send { to: NodeId, msg: M },
    SetTimer { delay: SimDuration, tag: u64 },
    CancelTimer { tag: u64 },
}

/// The execution context handed to every actor callback.
///
/// Through the context an actor reads the simulated clock, sends messages,
/// manages timers, draws deterministic randomness and records metrics.
pub struct Ctx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) stable: &'a mut Vec<u8>,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// The id of the actor being called.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to`. Delivery latency is sampled from the network
    /// model; the message may be lost if the model has a loss probability.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Sends `msg` to every node in `to`, cloning as needed.
    pub fn send_all<I>(&mut self, to: I, msg: M)
    where
        I: IntoIterator<Item = NodeId>,
        M: Clone,
    {
        for dest in to {
            self.send(dest, msg.clone());
        }
    }

    /// Arms (or re-arms) the timer identified by `tag` to fire after
    /// `delay`. Re-arming supersedes any earlier pending firing of the same
    /// tag.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.effects.push(Effect::SetTimer { delay, tag });
    }

    /// Cancels the timer identified by `tag` if pending.
    pub fn cancel_timer(&mut self, tag: u64) {
        self.effects.push(Effect::CancelTimer { tag });
    }

    /// The node's private deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The node's stable-storage blob as last persisted (empty if never
    /// written). Unlike actor fields, the blob survives a crash and is
    /// handed back to [`Actor::on_restart`] when the node comes back up.
    pub fn stable(&self) -> &[u8] {
        self.stable
    }

    /// Atomically replaces the node's stable-storage blob.
    ///
    /// The write is durable from the moment this returns: a crash at any
    /// later point leaves exactly this blob for recovery. Partial writes
    /// are not modeled — persistence is whole-blob replace, mirroring a
    /// write-to-temp-then-rename on a real disk.
    pub fn persist(&mut self, data: &[u8]) {
        self.stable.clear();
        self.stable.extend_from_slice(data);
    }

    /// Read access to the simulation-wide metrics registry.
    pub fn metrics(&self) -> &Metrics {
        self.metrics
    }

    /// Write access to the simulation-wide metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        self.metrics
    }
}

/// A simulated process.
///
/// Implementations react to three stimuli: simulation start, message
/// delivery and timer expiry. All state must live inside the actor; the
/// only way to affect the world is through the [`Ctx`].
///
/// Callbacks run atomically with respect to each other (the simulation is
/// single-threaded), so no internal synchronization is needed.
pub trait Actor<M>: 'static {
    /// Called once when the simulation first runs, before any message.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M) {
        let _ = (ctx, from, msg);
    }

    /// Called when a timer armed with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called when the node restarts after a crash (crash-recovery model).
    ///
    /// `stable` is the stable-storage blob as last written with
    /// [`Ctx::persist`] before the crash (empty if never persisted).
    /// Implementations MUST treat all of their in-memory fields as lost:
    /// reset every volatile field and rebuild only from `stable`. The
    /// runtime has already invalidated all pending timers and reseeded the
    /// node's RNG for the new incarnation.
    ///
    /// The default implementation models a process with no recovery logic:
    /// it ignores `stable` and runs [`Actor::on_start`] as if booting
    /// fresh. Stateful actors should override it.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, M>, stable: &[u8]) {
        let _ = stable;
        self.on_start(ctx);
    }

    /// Read-only introspection: this node's view of a key→partition
    /// location map, as `(key, partition)` pairs, if it maintains one.
    ///
    /// Purely diagnostic — the simulation never calls it on its own; test
    /// harnesses use it (via
    /// [`Simulation::location_view`](crate::sim::Simulation::location_view))
    /// to assert that replicas converged to identical maps. Actors without
    /// a location map keep the default `None`.
    fn location_view(&self) -> Option<Vec<(u64, u32)>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let id = NodeId::from_raw(3);
        assert_eq!(id.as_raw(), 3);
        assert_eq!(id.to_string(), "n3");
        assert_eq!(NodeId::EXTERNAL.to_string(), "n(ext)");
    }

    #[test]
    fn node_ids_order_by_raw() {
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
        assert!(NodeId::EXTERNAL > NodeId::from_raw(1_000_000));
    }
}
