//! FIFO link layer.
//!
//! The simulated network delivers messages with independently sampled
//! latencies, so two messages on the same link can be reordered. Protocols
//! that need per-link FIFO delivery (atomic multicast's FIFO property, for
//! one) wrap their traffic in a [`FifoLinks`] endpoint on each side: the
//! sender stamps a per-destination sequence number, the receiver buffers
//! out-of-order arrivals and releases messages in sequence — the same
//! service TCP provides on a real deployment.

use std::collections::BTreeMap;
use std::hash::Hash;

use crate::hash::FastHashMap;

/// A sequenced frame travelling over a FIFO link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<M> {
    /// Position of this frame in the sender→receiver stream (from 0).
    pub seq: u64,
    /// The wrapped message.
    pub inner: M,
}

/// Per-peer FIFO sequencing state for one endpoint.
///
/// `P` identifies peers (any hashable id).
///
/// # Example
///
/// ```
/// use dynastar_runtime::fifo::FifoLinks;
///
/// let mut alice: FifoLinks<&'static str, &'static str> = FifoLinks::new();
/// let mut bob: FifoLinks<&'static str, &'static str> = FifoLinks::new();
///
/// let f1 = alice.wrap("bob", "first");
/// let f2 = alice.wrap("bob", "second");
/// // Frames arrive out of order; bob releases them in order.
/// assert!(bob.accept("alice", f2).is_empty());
/// assert_eq!(bob.accept("alice", f1), vec!["first", "second"]);
/// ```
#[derive(Debug, Clone)]
pub struct FifoLinks<P, M> {
    next_send: FastHashMap<P, u64>,
    next_recv: FastHashMap<P, u64>,
    buffered: FastHashMap<P, BTreeMap<u64, M>>,
    /// Max out-of-order frames buffered per peer; overflow frames are
    /// dropped (and counted) instead of buffered.
    buffer_cap: usize,
    /// Out-of-order frames dropped because a peer's buffer was full.
    dropped: u64,
}

impl<P: Eq + Hash + Clone, M> FifoLinks<P, M> {
    /// Creates an endpoint with no history and an unbounded reorder buffer.
    pub fn new() -> Self {
        Self::with_buffer_cap(usize::MAX)
    }

    /// Creates an endpoint whose per-peer reorder buffer holds at most
    /// `cap` out-of-order frames. Frames arriving beyond the cap are
    /// dropped and counted ([`FifoLinks::dropped_count`]); an ARQ layer's
    /// retransmission recovers them later, so a bounded buffer trades a
    /// retransmit round-trip for bounded memory under pathological
    /// reordering or a stalled stream.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (the in-order frame must always pass).
    pub fn with_buffer_cap(cap: usize) -> Self {
        assert!(cap > 0, "reorder buffer cap must be positive");
        FifoLinks {
            next_send: FastHashMap::default(),
            next_recv: FastHashMap::default(),
            buffered: FastHashMap::default(),
            buffer_cap: cap,
            dropped: 0,
        }
    }

    /// Stamps `msg` with the next sequence number for `peer`.
    pub fn wrap(&mut self, peer: P, msg: M) -> Frame<M> {
        let seq = self.next_send.entry(peer).or_insert(0);
        let frame = Frame { seq: *seq, inner: msg };
        *seq += 1;
        frame
    }

    /// Accepts a frame from `peer`, returning every message that is now
    /// deliverable in order (possibly empty if the frame is early, or if it
    /// is a duplicate of an already-released sequence number).
    ///
    /// An out-of-order frame that would push the peer's buffer past the
    /// configured cap is dropped and counted instead — the expected
    /// in-order frame (`seq == next`) is always admitted, so a bounded
    /// buffer never deadlocks the stream.
    pub fn accept(&mut self, peer: P, frame: Frame<M>) -> Vec<M> {
        let next = self.next_recv.entry(peer.clone()).or_insert(0);
        if frame.seq < *next {
            return Vec::new(); // duplicate
        }
        if frame.seq == *next {
            // Fast path: the expected frame releases immediately without
            // round-tripping through the reorder buffer — buffered keys are
            // always strictly above `next` (the drain below restores this
            // after every advance), so an insert-then-remove here would
            // only churn tree-node allocations.
            *next += 1;
            let mut ready = vec![frame.inner];
            if let Some(buf) = self.buffered.get_mut(&peer) {
                while let Some(msg) = buf.remove(next) {
                    ready.push(msg);
                    *next += 1;
                }
            }
            return ready;
        }
        // Out-of-order: buffer (nothing can become deliverable, since the
        // expected frame has not arrived).
        let buf = self.buffered.entry(peer).or_default();
        if buf.len() >= self.buffer_cap && !buf.contains_key(&frame.seq) {
            self.dropped += 1;
            return Vec::new(); // buffer full; ARQ retransmission recovers
        }
        buf.insert(frame.seq, frame.inner);
        Vec::new()
    }

    /// Number of frames buffered waiting for earlier sequence numbers.
    pub fn buffered_count(&self) -> usize {
        self.buffered.values().map(|b| b.len()).sum()
    }

    /// Total out-of-order frames dropped because a peer's reorder buffer
    /// was at its cap.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// The next sequence number expected from `peer` — i.e. everything
    /// below it has been released in order (the cumulative-ack value an
    /// ARQ layer advertises).
    pub fn expected_from(&self, peer: &P) -> u64 {
        self.next_recv.get(peer).copied().unwrap_or(0)
    }

    /// Every peer frames have been received from.
    pub fn receive_peers(&self) -> impl Iterator<Item = &P> {
        self.next_recv.keys()
    }

    /// The sequence number the next frame wrapped for `peer` will carry.
    pub fn next_seq_to(&self, peer: &P) -> u64 {
        self.next_send.get(peer).copied().unwrap_or(0)
    }

    /// Forgets all send-side state for `peer`: the next frame wrapped for
    /// it starts again at sequence 0. Used when (re)starting a stream after
    /// a crash or an epoch change — the receiver must reset its receive
    /// state for this endpoint in the same handshake or it will treat the
    /// renumbered frames as stale duplicates.
    pub fn reset_send(&mut self, peer: &P) {
        self.next_send.remove(peer);
    }

    /// Forgets all receive-side state for `peer`: buffered out-of-order
    /// frames are dropped and the next expected sequence number returns to
    /// 0. The counterpart of [`Self::reset_send`] on the other endpoint.
    pub fn reset_receive(&mut self, peer: &P) {
        self.next_recv.remove(peer);
        self.buffered.remove(peer);
    }

    /// Declares every frame from `peer` below `from_seq` permanently lost
    /// and releases, in order, any buffered frames that become deliverable
    /// from the new expectation point. Used when the sender gave up
    /// retransmitting a prefix and announced the jump: the stream heals
    /// with an explicit, counted gap instead of stalling forever.
    ///
    /// Returns the released messages. A `from_seq` at or below the current
    /// expectation is a no-op (stale jump announcement).
    pub fn force_advance(&mut self, peer: &P, from_seq: u64) -> Vec<M> {
        let next = self.next_recv.entry(peer.clone()).or_insert(0);
        if from_seq <= *next {
            return Vec::new();
        }
        *next = from_seq;
        let Some(buf) = self.buffered.get_mut(peer) else { return Vec::new() };
        // Frames below the new expectation can never be delivered.
        while buf.first_key_value().map(|(&s, _)| s < from_seq).unwrap_or(false) {
            buf.pop_first();
        }
        let mut ready = Vec::new();
        while let Some(msg) = buf.remove(next) {
            ready.push(msg);
            *next += 1;
        }
        ready
    }

    /// The sequence numbers missing from `peer`'s stream (holes below the
    /// highest buffered frame), up to `limit` — what a selective-repeat
    /// ARQ reports back so the sender retransmits exactly the lost frames.
    pub fn missing_from(&self, peer: &P, limit: usize) -> Vec<u64> {
        let expected = self.expected_from(peer);
        let Some(buf) = self.buffered.get(peer) else { return Vec::new() };
        let Some((&max, _)) = buf.last_key_value() else { return Vec::new() };
        let mut missing = Vec::new();
        let mut cursor = expected;
        for &present in buf.keys() {
            while cursor < present && missing.len() < limit {
                missing.push(cursor);
                cursor += 1;
            }
            cursor = present + 1;
            if missing.len() >= limit {
                break;
            }
        }
        let _ = max;
        missing
    }
}

impl<P: Eq + Hash + Clone, M> Default for FifoLinks<P, M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_frames_release_immediately() {
        let mut rx: FifoLinks<u32, u32> = FifoLinks::new();
        let mut tx: FifoLinks<u32, u32> = FifoLinks::new();
        for i in 0..5 {
            let f = tx.wrap(1, i);
            assert_eq!(rx.accept(9, f), vec![i]);
        }
    }

    #[test]
    fn reordered_frames_are_buffered_then_released() {
        let mut tx: FifoLinks<u32, u32> = FifoLinks::new();
        let mut rx: FifoLinks<u32, u32> = FifoLinks::new();
        let f0 = tx.wrap(1, 10);
        let f1 = tx.wrap(1, 11);
        let f2 = tx.wrap(1, 12);
        assert!(rx.accept(0, f2).is_empty());
        assert!(rx.accept(0, f1).is_empty());
        assert_eq!(rx.buffered_count(), 2);
        assert_eq!(rx.accept(0, f0), vec![10, 11, 12]);
        assert_eq!(rx.buffered_count(), 0);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut tx: FifoLinks<u32, u32> = FifoLinks::new();
        let mut rx: FifoLinks<u32, u32> = FifoLinks::new();
        let f0 = tx.wrap(1, 10);
        assert_eq!(rx.accept(0, f0.clone()), vec![10]);
        assert!(rx.accept(0, f0).is_empty());
    }

    #[test]
    fn reset_send_restarts_sequence_numbers() {
        let mut tx: FifoLinks<u32, u32> = FifoLinks::new();
        assert_eq!(tx.wrap(1, 10).seq, 0);
        assert_eq!(tx.wrap(1, 11).seq, 1);
        tx.reset_send(&1);
        assert_eq!(tx.wrap(1, 12).seq, 0);
        // Other peers are unaffected.
        assert_eq!(tx.wrap(2, 20).seq, 0);
    }

    #[test]
    fn reset_receive_accepts_a_fresh_stream() {
        let mut tx: FifoLinks<u32, u32> = FifoLinks::new();
        let mut rx: FifoLinks<u32, u32> = FifoLinks::new();
        let f0 = tx.wrap(1, 10);
        let _f1 = tx.wrap(1, 11);
        assert_eq!(rx.accept(0, f0), vec![10]);
        // Sender restarts from seq 0; without a reset the frame is a dup.
        tx.reset_send(&1);
        let g0 = tx.wrap(1, 50);
        assert!(rx.accept(0, g0.clone()).is_empty());
        rx.reset_receive(&0);
        assert_eq!(rx.accept(0, g0), vec![50]);
    }

    #[test]
    fn force_advance_releases_buffered_suffix() {
        let mut tx: FifoLinks<u32, u32> = FifoLinks::new();
        let mut rx: FifoLinks<u32, u32> = FifoLinks::new();
        let _f0 = tx.wrap(1, 10); // lost forever
        let _f1 = tx.wrap(1, 11); // lost forever
        let f2 = tx.wrap(1, 12);
        let f3 = tx.wrap(1, 13);
        assert!(rx.accept(0, f2).is_empty());
        assert!(rx.accept(0, f3).is_empty());
        assert_eq!(rx.buffered_count(), 2);
        assert_eq!(rx.force_advance(&0, 2), vec![12, 13]);
        assert_eq!(rx.expected_from(&0), 4);
        assert_eq!(rx.buffered_count(), 0);
        // A stale (already-passed) jump is a no-op.
        assert!(rx.force_advance(&0, 1).is_empty());
        assert_eq!(rx.expected_from(&0), 4);
    }

    #[test]
    fn force_advance_drops_undeliverable_prefix() {
        let mut tx: FifoLinks<u32, u32> = FifoLinks::new();
        let mut rx: FifoLinks<u32, u32> = FifoLinks::new();
        let _f0 = tx.wrap(1, 10);
        let f1 = tx.wrap(1, 11);
        let _f2 = tx.wrap(1, 12);
        let f3 = tx.wrap(1, 13);
        assert!(rx.accept(0, f1).is_empty()); // buffered below the jump
        assert!(rx.accept(0, f3).is_empty());
        // Jump past 0..3: frame 1's buffered copy is dropped, 3 released.
        assert_eq!(rx.force_advance(&0, 3), vec![13]);
        assert_eq!(rx.expected_from(&0), 4);
    }

    #[test]
    fn buffer_cap_drops_and_counts_overflow_frames() {
        let mut tx: FifoLinks<u32, u32> = FifoLinks::new();
        let mut rx: FifoLinks<u32, u32> = FifoLinks::with_buffer_cap(2);
        let f0 = tx.wrap(1, 10);
        let f1 = tx.wrap(1, 11);
        let f2 = tx.wrap(1, 12);
        let f3 = tx.wrap(1, 13);
        // f1 and f2 buffer; f3 overflows the cap and is dropped.
        assert!(rx.accept(0, f1.clone()).is_empty());
        assert!(rx.accept(0, f2).is_empty());
        assert!(rx.accept(0, f3.clone()).is_empty());
        assert_eq!(rx.buffered_count(), 2);
        assert_eq!(rx.dropped_count(), 1);
        // A duplicate of an already-buffered seq is not a new drop.
        assert!(rx.accept(0, f1).is_empty());
        assert_eq!(rx.dropped_count(), 1);
        // The in-order frame always passes even at the cap, and releases
        // the buffered run; the dropped frame arrives via retransmission.
        assert_eq!(rx.accept(0, f0), vec![10, 11, 12]);
        assert_eq!(rx.accept(0, f3), vec![13]);
        assert_eq!(rx.dropped_count(), 1);
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn zero_buffer_cap_is_rejected() {
        let _: FifoLinks<u32, u32> = FifoLinks::with_buffer_cap(0);
    }

    #[test]
    fn links_are_independent_per_peer() {
        let mut rx: FifoLinks<&'static str, u32> = FifoLinks::new();
        let mut a: FifoLinks<&'static str, u32> = FifoLinks::new();
        let mut b: FifoLinks<&'static str, u32> = FifoLinks::new();
        let fa = a.wrap("rx", 1);
        let fb = b.wrap("rx", 2);
        assert_eq!(rx.accept("a", fa), vec![1]);
        assert_eq!(rx.accept("b", fb), vec![2]);
    }
}
