//! # dynastar-runtime
//!
//! A deterministic discrete-event simulation runtime for message-passing
//! distributed protocols.
//!
//! The runtime is the substrate on which the DynaStar reproduction runs: it
//! replaces the paper's Amazon EC2 cluster with a simulated network whose
//! latency distribution, failure pattern and clock are fully controlled and
//! reproducible from a seed. Protocol code is written as [`actor::Actor`]
//! implementations that react to messages and timers; the
//! [`sim::Simulation`] scheduler delivers events in deterministic order.
//!
//! # Example
//!
//! ```
//! use dynastar_runtime::prelude::*;
//!
//! /// A node that counts every "ping" it receives.
//! struct Pong;
//! impl Actor<&'static str> for Pong {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, &'static str>, _from: NodeId, msg: &'static str) {
//!         if msg == "ping" {
//!             ctx.metrics_mut().incr_counter("pongs", 1);
//!         }
//!     }
//! }
//!
//! struct Ping { target: NodeId }
//! impl Actor<&'static str> for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
//!         ctx.send(self.target, "ping");
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default().seed(42));
//! let pong = sim.add_node("pong", Pong);
//! sim.add_node("ping", Ping { target: pong });
//! sim.run_until_quiescent();
//! assert_eq!(sim.metrics().counter("pongs"), 1);
//! ```

#![forbid(unsafe_code)]

pub mod actor;
pub mod dedup;
pub mod event;
pub mod fifo;
pub mod hash;
pub mod metrics;
pub mod nemesis;
pub mod net;
pub mod sim;
pub mod time;

/// Convenience re-exports of the types nearly every protocol crate needs.
pub mod prelude {
    pub use crate::actor::{Actor, Ctx, NodeId};
    pub use crate::metrics::Metrics;
    pub use crate::net::{LatencyModel, NetConfig};
    pub use crate::sim::{SimConfig, Simulation};
    pub use crate::time::{SimDuration, SimTime};
}

pub use actor::{Actor, Ctx, NodeId};
pub use hash::{FastHashMap, FastHashSet, FxHasher};
pub use metrics::{Cdf, CounterId, Histogram, HistogramId, Metrics, SeriesId, TimeSeries};
pub use net::{LatencyModel, NetConfig};
pub use sim::{SimConfig, Simulation};
pub use time::{SimDuration, SimTime};
