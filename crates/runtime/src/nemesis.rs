//! Seeded fault-injection schedules (a *nemesis*, in Jepsen's sense).
//!
//! A [`NemesisPlan`] is a deterministic, pre-computed list of fault events
//! — crash/restart and disconnect/reconnect pairs — generated from a seed
//! and a set of *fault domains* (replica groups). Determinism matters:
//! the same seed against the same cluster produces the identical schedule,
//! so a failing run replays exactly.
//!
//! The generator upholds the **minority invariant**: within one group, at
//! most one replica is faulty at a time, and a repaired replica is given a
//! grace period to finish state transfer before the next fault lands in
//! its group. One-at-a-time is the conservative form of "at most a
//! minority" and holds for every group size; groups smaller than three
//! replicas get no crash faults at all (a restarted replica rebuilds from
//! a quorum of *peers*, which needs `size >= 3` to exist).
//!
//! ```
//! use dynastar_runtime::nemesis::{NemesisConfig, NemesisPlan};
//! use dynastar_runtime::{NodeId, SimDuration, SimTime};
//!
//! let groups = vec![vec![NodeId::from_raw(0), NodeId::from_raw(1), NodeId::from_raw(2)]];
//! let cfg = NemesisConfig {
//!     seed: 7,
//!     start: SimTime::from_secs(5),
//!     end: SimTime::from_secs(60),
//!     ..NemesisConfig::default()
//! };
//! let plan = NemesisPlan::generate(&cfg, &groups);
//! assert_eq!(plan, NemesisPlan::generate(&cfg, &groups)); // deterministic
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::NodeId;
use crate::sim::Simulation;
use crate::time::{SimDuration, SimTime};

/// Parameters of a fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NemesisConfig {
    /// Seed for the schedule (independent of the simulation's seed).
    pub seed: u64,
    /// No fault is injected before this time (lets the cluster elect
    /// leaders and warm up).
    pub start: SimTime,
    /// No fault is injected at or after this time, and every injected
    /// fault is repaired before it — runs converge after `end`.
    pub end: SimTime,
    /// Mean spacing between fault windows within one group (the actual
    /// gap is sampled uniformly from 0.5×..1.5× of this).
    pub mean_interval: SimDuration,
    /// Shortest time a fault lasts before repair.
    pub min_downtime: SimDuration,
    /// Longest time a fault lasts before repair.
    pub max_downtime: SimDuration,
    /// Quiet time after a repair before the next fault may land in the
    /// same group — covers the repaired replica's state transfer, keeping
    /// a recovering replica from counting as healthy.
    pub grace: SimDuration,
    /// Probability (percent) that a fault is a crash/restart rather than
    /// a disconnect/reconnect.
    pub crash_pct: u32,
}

impl Default for NemesisConfig {
    fn default() -> Self {
        NemesisConfig {
            seed: 1,
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(55),
            mean_interval: SimDuration::from_secs(8),
            min_downtime: SimDuration::from_millis(500),
            max_downtime: SimDuration::from_secs(4),
            grace: SimDuration::from_secs(3),
            crash_pct: 50,
        }
    }
}

/// The flavour of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Process crash at `at`, restart (crash-recovery model) at `repair_at`.
    Crash,
    /// Network disconnect at `at`, reconnect at `repair_at`.
    Disconnect,
}

/// One scheduled fault + its repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The victim node.
    pub node: NodeId,
    /// Crash or disconnect.
    pub kind: FaultKind,
    /// Injection time.
    pub at: SimTime,
    /// Repair (restart / reconnect) time.
    pub repair_at: SimTime,
}

/// A deterministic fault schedule over a set of replica groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NemesisPlan {
    /// All scheduled faults, ordered by injection time.
    pub events: Vec<FaultEvent>,
}

impl NemesisPlan {
    /// Generates the schedule for `groups` (each inner slice is one fault
    /// domain — the replicas of one consensus group). Groups evolve
    /// independently: each gets its own RNG stream derived from the seed,
    /// so adding a group does not perturb the others' schedules.
    pub fn generate(cfg: &NemesisConfig, groups: &[Vec<NodeId>]) -> Self {
        assert!(cfg.end > cfg.start, "nemesis window is empty");
        assert!(cfg.max_downtime >= cfg.min_downtime, "downtime range inverted");
        let mut events = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ (gi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let crash_ok = group.len() >= 3;
            // Sequential faults per group: the next window opens only
            // after the previous repair plus the grace period, so at most
            // one replica of the group is ever faulty or recovering.
            let mut cursor = cfg.start;
            loop {
                let jitter = cfg.mean_interval.as_micros() / 2
                    + rng.gen_range(0..cfg.mean_interval.as_micros().max(1));
                let at = cursor + SimDuration::from_micros(jitter);
                let downtime = SimDuration::from_micros(
                    rng.gen_range(cfg.min_downtime.as_micros()..=cfg.max_downtime.as_micros()),
                );
                let repair_at = at + downtime;
                if at >= cfg.end || repair_at >= cfg.end {
                    break;
                }
                let node = group[rng.gen_range(0..group.len())];
                let kind = if crash_ok && rng.gen_range(0..100u32) < cfg.crash_pct {
                    FaultKind::Crash
                } else {
                    FaultKind::Disconnect
                };
                events.push(FaultEvent { node, kind, at, repair_at });
                cursor = repair_at + cfg.grace;
            }
        }
        events.sort_by_key(|e| (e.at, e.node.as_raw()));
        NemesisPlan { events }
    }

    /// Schedules every fault and repair on `sim`.
    pub fn apply<M: 'static>(&self, sim: &mut Simulation<M>) {
        for e in &self.events {
            match e.kind {
                FaultKind::Crash => {
                    sim.schedule_crash(e.at, e.node);
                    sim.schedule_restart(e.repair_at, e.node);
                }
                FaultKind::Disconnect => {
                    sim.schedule_disconnect(e.at, e.node);
                    sim.schedule_reconnect(e.repair_at, e.node);
                }
            }
        }
    }

    /// Number of crash/restart faults in the plan.
    pub fn crash_count(&self) -> u64 {
        self.events.iter().filter(|e| e.kind == FaultKind::Crash).count() as u64
    }

    /// Number of disconnect/reconnect faults in the plan.
    pub fn disconnect_count(&self) -> u64 {
        self.events.len() as u64 - self.crash_count()
    }

    /// Time of the last repair — the cluster should converge after this.
    pub fn last_repair(&self) -> Option<SimTime> {
        self.events.iter().map(|e| e.repair_at).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId::from_raw(i)).collect()
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let groups = vec![group(&[0, 1, 2]), group(&[3, 4, 5])];
        let cfg = NemesisConfig { seed: 42, ..NemesisConfig::default() };
        let a = NemesisPlan::generate(&cfg, &groups);
        let b = NemesisPlan::generate(&cfg, &groups);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        let other = NemesisPlan::generate(&NemesisConfig { seed: 43, ..cfg }, &groups);
        assert_ne!(a, other);
    }

    #[test]
    fn at_most_one_concurrent_fault_per_group() {
        let groups = vec![group(&[0, 1, 2]), group(&[3, 4, 5]), group(&[6, 7, 8])];
        let cfg =
            NemesisConfig { seed: 9, end: SimTime::from_secs(300), ..NemesisConfig::default() };
        let plan = NemesisPlan::generate(&cfg, &groups);
        for (gi, g) in groups.iter().enumerate() {
            let mut windows: Vec<(SimTime, SimTime)> = plan
                .events
                .iter()
                .filter(|e| g.contains(&e.node))
                .map(|e| (e.at, e.repair_at))
                .collect();
            windows.sort();
            for pair in windows.windows(2) {
                // Grace separates consecutive fault windows in a group.
                assert!(
                    pair[1].0 >= pair[0].1 + cfg.grace,
                    "group {gi}: overlapping fault windows {pair:?}"
                );
            }
        }
    }

    #[test]
    fn faults_stay_inside_the_window() {
        let groups = vec![group(&[0, 1, 2])];
        let cfg = NemesisConfig { seed: 3, ..NemesisConfig::default() };
        let plan = NemesisPlan::generate(&cfg, &groups);
        for e in &plan.events {
            assert!(e.at >= cfg.start && e.repair_at < cfg.end);
            assert!(e.repair_at > e.at);
        }
    }

    #[test]
    fn small_groups_get_no_crash_faults() {
        let groups = vec![group(&[0, 1])];
        let cfg = NemesisConfig { seed: 5, ..NemesisConfig::default() };
        let plan = NemesisPlan::generate(&cfg, &groups);
        assert_eq!(plan.crash_count(), 0);
        // Disconnects are still allowed — they lose no state.
        assert!(plan.disconnect_count() > 0);
    }
}
