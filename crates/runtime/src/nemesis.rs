//! Seeded fault-injection schedules (a *nemesis*, in Jepsen's sense).
//!
//! A [`NemesisPlan`] is a deterministic, pre-computed list of fault events
//! — crash/restart and disconnect/reconnect pairs — generated from a seed
//! and a set of *fault domains* (replica groups). Determinism matters:
//! the same seed against the same cluster produces the identical schedule,
//! so a failing run replays exactly.
//!
//! The generator upholds the **minority invariant**: within one group, at
//! most one replica is faulty at a time, and a repaired replica is given a
//! grace period to finish state transfer before the next fault lands in
//! its group. One-at-a-time is the conservative form of "at most a
//! minority" and holds for every group size; groups smaller than three
//! replicas get no crash faults at all (a restarted replica rebuilds from
//! a quorum of *peers*, which needs `size >= 3` to exist).
//!
//! ```
//! use dynastar_runtime::nemesis::{NemesisConfig, NemesisPlan};
//! use dynastar_runtime::{NodeId, SimDuration, SimTime};
//!
//! let groups = vec![vec![NodeId::from_raw(0), NodeId::from_raw(1), NodeId::from_raw(2)]];
//! let cfg = NemesisConfig {
//!     seed: 7,
//!     start: SimTime::from_secs(5),
//!     end: SimTime::from_secs(60),
//!     ..NemesisConfig::default()
//! };
//! let plan = NemesisPlan::generate(&cfg, &groups);
//! assert_eq!(plan, NemesisPlan::generate(&cfg, &groups)); // deterministic
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::NodeId;
use crate::sim::Simulation;
use crate::time::{SimDuration, SimTime};

/// Parameters of a fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NemesisConfig {
    /// Seed for the schedule (independent of the simulation's seed).
    pub seed: u64,
    /// No fault is injected before this time (lets the cluster elect
    /// leaders and warm up).
    pub start: SimTime,
    /// No fault is injected at or after this time, and every injected
    /// fault is repaired before it — runs converge after `end`.
    pub end: SimTime,
    /// Mean spacing between fault windows within one group (the actual
    /// gap is sampled uniformly from 0.5×..1.5× of this).
    pub mean_interval: SimDuration,
    /// Shortest time a fault lasts before repair.
    pub min_downtime: SimDuration,
    /// Longest time a fault lasts before repair.
    pub max_downtime: SimDuration,
    /// Quiet time after a repair before the next fault may land in the
    /// same group — covers the repaired replica's state transfer, keeping
    /// a recovering replica from counting as healthy.
    pub grace: SimDuration,
    /// Probability (percent) that a fault is a crash/restart rather than
    /// a disconnect/reconnect.
    pub crash_pct: u32,
    /// Number of synchronized crash-restart *waves*: at each wave instant
    /// one replica of every crash-eligible (≥ 3 replica) group crashes at
    /// the same time and restarts [`Self::wave_downtime`] later. One
    /// replica per group keeps the minority invariant; the simultaneity
    /// across groups is what stresses recovery (and any migration in
    /// flight). Waves are spaced evenly across the fault window.
    pub crash_waves: u32,
    /// Downtime of every wave victim.
    pub wave_downtime: SimDuration,
    /// Index into `groups` of a group to target with extra faults (the
    /// oracle is the *last* group under the cluster's topology
    /// convention). `None` leaves every group at the base intensity.
    pub target_group: Option<usize>,
    /// Fault-intensity multiplier for [`Self::target_group`]: its mean
    /// interval between faults is divided by this (≥ 1).
    pub target_intensity: u32,
    /// Number of degraded-link windows: each picks a random directed node
    /// pair and, for one downtime-sized window, adds
    /// [`Self::link_extra_delay`] of one-way latency and
    /// [`Self::link_loss_pm`] of loss on top of the base network model.
    /// Asymmetric by construction — the reverse direction stays clean.
    pub link_faults: u32,
    /// Extra one-way latency on a degraded link.
    pub link_extra_delay: SimDuration,
    /// Extra loss (parts per million) on a degraded link.
    pub link_loss_pm: u32,
}

impl Default for NemesisConfig {
    fn default() -> Self {
        NemesisConfig {
            seed: 1,
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(55),
            mean_interval: SimDuration::from_secs(8),
            min_downtime: SimDuration::from_millis(500),
            max_downtime: SimDuration::from_secs(4),
            grace: SimDuration::from_secs(3),
            crash_pct: 50,
            crash_waves: 0,
            wave_downtime: SimDuration::from_secs(2),
            target_group: None,
            target_intensity: 1,
            link_faults: 0,
            link_extra_delay: SimDuration::from_millis(5),
            link_loss_pm: 100_000,
        }
    }
}

/// The flavour of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Process crash at `at`, restart (crash-recovery model) at `repair_at`.
    Crash,
    /// Network disconnect at `at`, reconnect at `repair_at`.
    Disconnect,
}

/// One scheduled fault + its repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The victim node.
    pub node: NodeId,
    /// Crash or disconnect.
    pub kind: FaultKind,
    /// Injection time.
    pub at: SimTime,
    /// Repair (restart / reconnect) time.
    pub repair_at: SimTime,
}

/// One scheduled link degradation + its repair (see
/// [`NemesisConfig::link_faults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFaultEvent {
    /// Sending endpoint of the degraded direction.
    pub from: NodeId,
    /// Receiving endpoint of the degraded direction.
    pub to: NodeId,
    /// Degradation start.
    pub at: SimTime,
    /// Repair time.
    pub repair_at: SimTime,
    /// Extra one-way latency while degraded.
    pub extra_delay: SimDuration,
    /// Extra loss (parts per million) while degraded.
    pub loss_pm: u32,
}

/// A deterministic fault schedule over a set of replica groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NemesisPlan {
    /// All scheduled faults, ordered by injection time.
    pub events: Vec<FaultEvent>,
    /// All scheduled link degradations, ordered by start time. Kept apart
    /// from [`Self::events`]: link faults degrade a *directed edge*, not a
    /// node, and are exempt from the per-group minority invariant.
    pub link_events: Vec<LinkFaultEvent>,
}

impl NemesisPlan {
    /// Generates the schedule for `groups` (each inner slice is one fault
    /// domain — the replicas of one consensus group). Groups evolve
    /// independently: each gets its own RNG stream derived from the seed,
    /// so adding a group does not perturb the others' schedules.
    pub fn generate(cfg: &NemesisConfig, groups: &[Vec<NodeId>]) -> Self {
        assert!(cfg.end > cfg.start, "nemesis window is empty");
        assert!(cfg.max_downtime >= cfg.min_downtime, "downtime range inverted");
        let mut events = Vec::new();

        // Crash waves first: their windows are fixed points the per-group
        // random schedules must route around to keep the one-fault-at-a-
        // time invariant within each group.
        let waves = Self::wave_windows(cfg);
        let mut wave_rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_C3C3_3C3C);
        for &(at, repair_at) in &waves {
            for group in groups {
                if group.len() < 3 {
                    continue; // minority invariant: no crash without quorum recovery
                }
                let node = group[wave_rng.gen_range(0..group.len())];
                events.push(FaultEvent { node, kind: FaultKind::Crash, at, repair_at });
            }
        }

        for (gi, group) in groups.iter().enumerate() {
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ (gi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let crash_ok = group.len() >= 3;
            let mean = if cfg.target_group == Some(gi) {
                SimDuration::from_micros(
                    cfg.mean_interval.as_micros() / u64::from(cfg.target_intensity.max(1)),
                )
            } else {
                cfg.mean_interval
            };
            // Sequential faults per group: the next window opens only
            // after the previous repair plus the grace period, so at most
            // one replica of the group is ever faulty or recovering.
            let mut cursor = cfg.start;
            loop {
                let jitter = mean.as_micros() / 2 + rng.gen_range(0..mean.as_micros().max(1));
                let at = cursor + SimDuration::from_micros(jitter);
                let downtime = SimDuration::from_micros(
                    rng.gen_range(cfg.min_downtime.as_micros()..=cfg.max_downtime.as_micros()),
                );
                let repair_at = at + downtime;
                if at >= cfg.end || repair_at >= cfg.end {
                    break;
                }
                // A window that cannot keep grace-distance from a crash
                // wave is skipped: the cursor jumps past the wave and the
                // schedule resumes on the far side.
                if let Some(&(_, w_repair)) = waves.iter().find(|&&(w_at, w_repair)| {
                    !(repair_at + cfg.grace <= w_at || at >= w_repair + cfg.grace)
                }) {
                    cursor = w_repair + cfg.grace;
                    continue;
                }
                let node = group[rng.gen_range(0..group.len())];
                let kind = if crash_ok && rng.gen_range(0..100u32) < cfg.crash_pct {
                    FaultKind::Crash
                } else {
                    FaultKind::Disconnect
                };
                events.push(FaultEvent { node, kind, at, repair_at });
                cursor = repair_at + cfg.grace;
            }
        }
        events.sort_by_key(|e| (e.at, e.node.as_raw()));

        // Link faults: directed-edge degradations, independent of the node
        // fault domains (nothing goes down, so no invariant to uphold).
        let mut link_events = Vec::new();
        let all: Vec<NodeId> = groups.iter().flatten().copied().collect();
        if cfg.link_faults > 0 && all.len() >= 2 {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1EE7_C0DE_F00D_BEEF);
            let span = (cfg.end - cfg.start).as_micros();
            for _ in 0..cfg.link_faults {
                let at = cfg.start + SimDuration::from_micros(rng.gen_range(0..span.max(1)));
                let downtime = SimDuration::from_micros(
                    rng.gen_range(cfg.min_downtime.as_micros()..=cfg.max_downtime.as_micros()),
                );
                let repair_at = at + downtime;
                if repair_at >= cfg.end {
                    continue;
                }
                let from = all[rng.gen_range(0..all.len())];
                let mut to = all[rng.gen_range(0..all.len())];
                if to == from {
                    to = all[(rng.gen_range(0..all.len() - 1) + 1 + from.as_raw() as usize)
                        % all.len()];
                    if to == from {
                        continue;
                    }
                }
                link_events.push(LinkFaultEvent {
                    from,
                    to,
                    at,
                    repair_at,
                    extra_delay: cfg.link_extra_delay,
                    loss_pm: cfg.link_loss_pm,
                });
            }
            link_events.sort_by_key(|e| (e.at, e.from.as_raw(), e.to.as_raw()));
        }
        NemesisPlan { events, link_events }
    }

    /// The `(at, repair_at)` windows of the configured crash waves, spaced
    /// evenly across the fault window. A wave whose window would collide
    /// with the previous wave's grace period, or spill past `end`, is
    /// dropped rather than bent.
    fn wave_windows(cfg: &NemesisConfig) -> Vec<(SimTime, SimTime)> {
        let mut waves: Vec<(SimTime, SimTime)> = Vec::new();
        if cfg.crash_waves == 0 {
            return waves;
        }
        let span = (cfg.end - cfg.start).as_micros();
        let step = span / (u64::from(cfg.crash_waves) + 1);
        for i in 0..u64::from(cfg.crash_waves) {
            let at = cfg.start + SimDuration::from_micros(step * (i + 1));
            let repair_at = at + cfg.wave_downtime;
            if repair_at >= cfg.end {
                continue;
            }
            if let Some(&(_, prev_repair)) = waves.last() {
                if at < prev_repair + cfg.grace {
                    continue;
                }
            }
            waves.push((at, repair_at));
        }
        waves
    }

    /// Schedules every fault and repair on `sim`.
    pub fn apply<M: 'static>(&self, sim: &mut Simulation<M>) {
        for e in &self.events {
            match e.kind {
                FaultKind::Crash => {
                    sim.schedule_crash(e.at, e.node);
                    sim.schedule_restart(e.repair_at, e.node);
                }
                FaultKind::Disconnect => {
                    sim.schedule_disconnect(e.at, e.node);
                    sim.schedule_reconnect(e.repair_at, e.node);
                }
            }
        }
        for l in &self.link_events {
            sim.schedule_link_degrade(l.at, l.from, l.to, l.extra_delay, l.loss_pm);
            sim.schedule_link_repair(l.repair_at, l.from, l.to);
        }
    }

    /// Number of crash/restart faults in the plan.
    pub fn crash_count(&self) -> u64 {
        self.events.iter().filter(|e| e.kind == FaultKind::Crash).count() as u64
    }

    /// Number of disconnect/reconnect faults in the plan.
    pub fn disconnect_count(&self) -> u64 {
        self.events.len() as u64 - self.crash_count()
    }

    /// Number of degraded-link windows in the plan.
    pub fn link_fault_count(&self) -> u64 {
        self.link_events.len() as u64
    }

    /// Time of the last repair (node or link) — the cluster should
    /// converge after this.
    pub fn last_repair(&self) -> Option<SimTime> {
        self.events
            .iter()
            .map(|e| e.repair_at)
            .chain(self.link_events.iter().map(|l| l.repair_at))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId::from_raw(i)).collect()
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let groups = vec![group(&[0, 1, 2]), group(&[3, 4, 5])];
        let cfg = NemesisConfig { seed: 42, ..NemesisConfig::default() };
        let a = NemesisPlan::generate(&cfg, &groups);
        let b = NemesisPlan::generate(&cfg, &groups);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        let other = NemesisPlan::generate(&NemesisConfig { seed: 43, ..cfg }, &groups);
        assert_ne!(a, other);
    }

    #[test]
    fn at_most_one_concurrent_fault_per_group() {
        let groups = vec![group(&[0, 1, 2]), group(&[3, 4, 5]), group(&[6, 7, 8])];
        let cfg =
            NemesisConfig { seed: 9, end: SimTime::from_secs(300), ..NemesisConfig::default() };
        let plan = NemesisPlan::generate(&cfg, &groups);
        for (gi, g) in groups.iter().enumerate() {
            let mut windows: Vec<(SimTime, SimTime)> = plan
                .events
                .iter()
                .filter(|e| g.contains(&e.node))
                .map(|e| (e.at, e.repair_at))
                .collect();
            windows.sort();
            for pair in windows.windows(2) {
                // Grace separates consecutive fault windows in a group.
                assert!(
                    pair[1].0 >= pair[0].1 + cfg.grace,
                    "group {gi}: overlapping fault windows {pair:?}"
                );
            }
        }
    }

    #[test]
    fn faults_stay_inside_the_window() {
        let groups = vec![group(&[0, 1, 2])];
        let cfg = NemesisConfig { seed: 3, ..NemesisConfig::default() };
        let plan = NemesisPlan::generate(&cfg, &groups);
        for e in &plan.events {
            assert!(e.at >= cfg.start && e.repair_at < cfg.end);
            assert!(e.repair_at > e.at);
        }
    }

    #[test]
    fn crash_waves_hit_every_big_group_at_once_and_keep_the_invariant() {
        let groups = vec![group(&[0, 1, 2]), group(&[3, 4, 5]), group(&[6, 7])];
        let cfg = NemesisConfig {
            seed: 11,
            end: SimTime::from_secs(120),
            crash_waves: 3,
            ..NemesisConfig::default()
        };
        let plan = NemesisPlan::generate(&cfg, &groups);
        assert_eq!(plan, NemesisPlan::generate(&cfg, &groups));
        // Each wave instant crashes exactly one replica of each ≥3 group.
        let mut by_time: std::collections::BTreeMap<SimTime, Vec<&FaultEvent>> = Default::default();
        for e in plan.events.iter().filter(|e| e.kind == FaultKind::Crash) {
            by_time.entry(e.at).or_default().push(e);
        }
        let waves: Vec<_> = by_time.values().filter(|v| v.len() > 1).collect();
        assert_eq!(waves.len(), 3, "expected 3 simultaneous crash waves");
        for wave in waves {
            assert_eq!(wave.len(), 2, "one victim per ≥3-replica group");
            for (gi, g) in groups.iter().enumerate() {
                let victims = wave.iter().filter(|e| g.contains(&e.node)).count();
                let expect = usize::from(g.len() >= 3);
                assert_eq!(victims, expect, "group {gi}");
            }
        }
        // The random schedule still keeps grace-distance inside each group.
        for (gi, g) in groups.iter().enumerate() {
            let mut windows: Vec<(SimTime, SimTime)> = plan
                .events
                .iter()
                .filter(|e| g.contains(&e.node))
                .map(|e| (e.at, e.repair_at))
                .collect();
            windows.sort();
            for pair in windows.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].1 + cfg.grace,
                    "group {gi}: overlapping fault windows {pair:?}"
                );
            }
        }
    }

    #[test]
    fn target_group_takes_more_faults() {
        let groups = vec![group(&[0, 1, 2]), group(&[3, 4, 5])];
        let cfg = NemesisConfig {
            seed: 21,
            end: SimTime::from_secs(600),
            min_downtime: SimDuration::from_millis(200),
            max_downtime: SimDuration::from_millis(500),
            grace: SimDuration::from_secs(1),
            target_group: Some(1), // the "oracle" under cluster convention
            target_intensity: 4,
            ..NemesisConfig::default()
        };
        let plan = NemesisPlan::generate(&cfg, &groups);
        let count = |g: &[NodeId]| plan.events.iter().filter(|e| g.contains(&e.node)).count();
        let base = count(&groups[0]);
        let targeted = count(&groups[1]);
        assert!(
            targeted > base * 2,
            "targeted group should see far more faults: {targeted} vs {base}"
        );
    }

    #[test]
    fn link_faults_are_directed_and_in_window() {
        let groups = vec![group(&[0, 1, 2]), group(&[3, 4, 5])];
        let cfg = NemesisConfig {
            seed: 31,
            end: SimTime::from_secs(200),
            link_faults: 8,
            ..NemesisConfig::default()
        };
        let plan = NemesisPlan::generate(&cfg, &groups);
        assert_eq!(plan, NemesisPlan::generate(&cfg, &groups));
        assert!(plan.link_fault_count() > 0);
        for l in &plan.link_events {
            assert_ne!(l.from, l.to, "a link fault needs two distinct endpoints");
            assert!(l.at >= cfg.start && l.repair_at < cfg.end);
            assert!(l.repair_at > l.at);
        }
    }

    #[test]
    fn small_groups_get_no_crash_faults() {
        let groups = vec![group(&[0, 1])];
        let cfg = NemesisConfig { seed: 5, ..NemesisConfig::default() };
        let plan = NemesisPlan::generate(&cfg, &groups);
        assert_eq!(plan.crash_count(), 0);
        // Disconnects are still allowed — they lose no state.
        assert!(plan.disconnect_count() > 0);
    }
}
