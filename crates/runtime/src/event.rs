//! The event queue driving the simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::actor::NodeId;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver a message to a node.
    Deliver { to: NodeId, from: NodeId, msg: M },
    /// Fire a timer on a node if its generation is still current.
    Timer { node: NodeId, tag: u64, gen: u64 },
    /// Scheduled control action (fault injection).
    Control(Control),
}

/// Fault-injection actions that can be scheduled at a future time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Crash a node: it receives no further messages or timers. The crash
    /// is permanent (crash-stop) unless a later [`Control::Restart`] brings
    /// the node back (crash-recovery).
    Crash(NodeId),
    /// Restart a crashed node. All volatile state is lost: pending timers
    /// are invalidated and the actor must re-initialize itself in
    /// [`Actor::on_restart`](crate::actor::Actor::on_restart) from the
    /// node's stable-storage blob, which survives the crash.
    Restart(NodeId),
    /// Disconnect a node: in-flight and future messages to/from it are
    /// dropped, timers still fire (the process is up but unreachable).
    Disconnect(NodeId),
    /// Reconnect a previously disconnected node.
    Reconnect(NodeId),
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    // Reversed so that BinaryHeap (a max-heap) pops the earliest event;
    // ties break by insertion sequence for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-queue of events.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(to: u32) -> EventKind<&'static str> {
        EventKind::Deliver { to: NodeId::from_raw(to), from: NodeId::EXTERNAL, msg: "m" }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), deliver(0));
        q.push(SimTime::from_micros(10), deliver(1));
        q.push(SimTime::from_micros(20), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.as_micros()).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        q.push(t, deliver(0));
        q.push(t, deliver(1));
        q.push(t, deliver(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Deliver { to, .. } => to.as_raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::<&'static str>::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(7), deliver(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
