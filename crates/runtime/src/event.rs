//! The event queue driving the simulation.
//!
//! Implemented as a hierarchical timing wheel: near-future events (within
//! [`WHEEL_SPAN`] microseconds of the queue's time floor) live in
//! fixed-size per-microsecond buckets, far-future events (timeouts,
//! retransmission timers) in a small overflow heap. Pops pick the global
//! minimum of both structures, so the delivered order — strictly
//! `(time, insertion seq)` — is identical to the plain binary heap this
//! replaced, and runs stay bit-for-bit deterministic across the swap.
//! The win is constant-factor: the common case (a message delivery a few
//! hundred microseconds out) is a `VecDeque` push/pop instead of an
//! `O(log n)` sift that moves whole `Event` values around the heap.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::actor::NodeId;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver a message to a node.
    Deliver { to: NodeId, from: NodeId, msg: M },
    /// Fire a timer on a node if its generation is still current.
    Timer { node: NodeId, tag: u64, gen: u64 },
    /// Scheduled control action (fault injection).
    Control(Control),
}

/// Fault-injection actions that can be scheduled at a future time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Crash a node: it receives no further messages or timers. The crash
    /// is permanent (crash-stop) unless a later [`Control::Restart`] brings
    /// the node back (crash-recovery).
    Crash(NodeId),
    /// Restart a crashed node. All volatile state is lost: pending timers
    /// are invalidated and the actor must re-initialize itself in
    /// [`Actor::on_restart`](crate::actor::Actor::on_restart) from the
    /// node's stable-storage blob, which survives the crash.
    Restart(NodeId),
    /// Disconnect a node: in-flight and future messages to/from it are
    /// dropped, timers still fire (the process is up but unreachable).
    Disconnect(NodeId),
    /// Reconnect a previously disconnected node.
    Reconnect(NodeId),
    /// Degrade the directed link `from → to`: every message on it gains
    /// `extra_delay_us` of latency and is dropped with probability
    /// `loss_pm / 1_000_000` (on top of the base network model). The
    /// override is asymmetric — the reverse direction is untouched unless
    /// degraded separately.
    DegradeLink {
        /// Sending endpoint of the degraded direction.
        from: NodeId,
        /// Receiving endpoint of the degraded direction.
        to: NodeId,
        /// Additional one-way latency, in microseconds.
        extra_delay_us: u64,
        /// Additional loss probability, in parts per million.
        loss_pm: u32,
    },
    /// Remove the [`Control::DegradeLink`] override on `from → to`.
    RepairLink {
        /// Sending endpoint of the repaired direction.
        from: NodeId,
        /// Receiving endpoint of the repaired direction.
        to: NodeId,
    },
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    // Reversed so that BinaryHeap (a max-heap) pops the earliest event;
    // ties break by insertion sequence for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Width of the timing wheel in microseconds (= number of 1 µs slots).
///
/// Sized to cover one-way network latencies and the consensus tick with
/// slack; anything further out (client timeouts, retransmission checks,
/// plan-compute completions) takes the overflow heap, which sees a small
/// fraction of total traffic.
const WHEEL_SPAN: u64 = 4096;

/// A deterministic min-queue of events: timing wheel + overflow heap.
///
/// # Invariants
///
/// * `cursor` is the time (µs) of the last popped event; no pending event
///   is earlier (pushes into the past are a caller bug, debug-asserted).
/// * Every wheel-resident event has `time ∈ [cursor, cursor + WHEEL_SPAN)`.
///   Combined with the pop-in-order guarantee this means all events in one
///   slot share the *exact* same time, so a slot is FIFO by insertion
///   sequence — precisely the `(time, seq)` tie-break order.
/// * `scan_from ≤` the time of the earliest wheel event (lower bound used
///   to avoid rescanning empty slots).
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    slots: Vec<VecDeque<Event<M>>>,
    wheel_len: usize,
    cursor: u64,
    scan_from: u64,
    overflow: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            slots: (0..WHEEL_SPAN).map(|_| VecDeque::new()).collect(),
            wheel_len: 0,
            cursor: 0,
            scan_from: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = time.as_micros();
        debug_assert!(t >= self.cursor, "event scheduled in the past ({t} < {})", self.cursor);
        let ev = Event { time, seq, kind };
        if t < self.cursor.saturating_add(WHEEL_SPAN) {
            self.slots[(t % WHEEL_SPAN) as usize].push_back(ev);
            self.wheel_len += 1;
            if self.wheel_len == 1 || t < self.scan_from {
                self.scan_from = t;
            }
        } else {
            self.overflow.push(ev);
        }
    }

    /// Time and insertion seq of the earliest wheel event, if any.
    fn wheel_head(&mut self) -> Option<(u64, u64)> {
        if self.wheel_len == 0 {
            return None;
        }
        let mut t = self.scan_from.max(self.cursor);
        loop {
            if let Some(ev) = self.slots[(t % WHEEL_SPAN) as usize].front() {
                self.scan_from = t;
                return Some((t, ev.seq));
            }
            t += 1;
            debug_assert!(
                t < self.cursor + 2 * WHEEL_SPAN,
                "wheel_len > 0 but no event found in the window"
            );
        }
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        let wheel = self.wheel_head();
        let take_overflow = match (wheel, self.overflow.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            // `Event: Ord` is reversed for the max-heap, so compare keys
            // directly: the overflow head wins only if strictly earlier.
            (Some((wt, wseq)), Some(o)) => (o.time.as_micros(), o.seq) < (wt, wseq),
        };
        let ev = if take_overflow {
            self.overflow.pop().expect("peeked overflow event")
        } else {
            let (wt, _) = wheel.expect("wheel head checked");
            self.wheel_len -= 1;
            self.slots[(wt % WHEEL_SPAN) as usize].pop_front().expect("scanned slot non-empty")
        };
        self.cursor = ev.time.as_micros();
        self.scan_from = self.scan_from.max(self.cursor);
        Some(ev)
    }

    pub fn peek_time(&mut self) -> Option<SimTime> {
        let wheel = self.wheel_head().map(|(t, _)| t);
        let overflow = self.overflow.peek().map(|e| e.time.as_micros());
        match (wheel, overflow) {
            (None, None) => None,
            (Some(t), None) | (None, Some(t)) => Some(SimTime::from_micros(t)),
            (Some(w), Some(o)) => Some(SimTime::from_micros(w.min(o))),
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.wheel_len == 0 && self.overflow.is_empty()
    }

    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The queue the wheel replaced: one global binary heap. Kept as the
    /// ordering reference for the determinism-equivalence tests below.
    struct BaselineHeapQueue<M> {
        heap: BinaryHeap<Event<M>>,
        next_seq: u64,
    }

    impl<M> BaselineHeapQueue<M> {
        fn new() -> Self {
            BaselineHeapQueue { heap: BinaryHeap::new(), next_seq: 0 }
        }

        fn push(&mut self, time: SimTime, kind: EventKind<M>) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Event { time, seq, kind });
        }

        fn pop(&mut self) -> Option<Event<M>> {
            self.heap.pop()
        }
    }

    fn deliver(to: u32) -> EventKind<&'static str> {
        EventKind::Deliver { to: NodeId::from_raw(to), from: NodeId::EXTERNAL, msg: "m" }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), deliver(0));
        q.push(SimTime::from_micros(10), deliver(1));
        q.push(SimTime::from_micros(20), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.as_micros()).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        q.push(t, deliver(0));
        q.push(t, deliver(1));
        q.push(t, deliver(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Deliver { to, .. } => to.as_raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::<&'static str>::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(7), deliver(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_take_the_overflow_heap_and_still_order() {
        let mut q = EventQueue::new();
        // Far beyond the wheel span.
        q.push(SimTime::from_secs(30), deliver(0));
        q.push(SimTime::from_micros(100), deliver(1));
        q.push(SimTime::from_millis(500), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.as_micros()).collect();
        assert_eq!(order, vec![100, 500_000, 30_000_000]);
    }

    #[test]
    fn overflow_and_wheel_ties_break_by_seq() {
        let mut q = EventQueue::new();
        let far = SimTime::from_micros(10_000);
        q.push(far, deliver(0)); // seq 0, overflow at push time
                                 // Drain a nearer event so the cursor advances and `far` would now
                                 // be wheel-eligible for new pushes.
        q.push(SimTime::from_micros(9_000), deliver(9));
        assert_eq!(q.pop().unwrap().time.as_micros(), 9_000);
        q.push(far, deliver(1)); // seq 2, lands in the wheel
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Deliver { to, .. } => to.as_raw(),
                _ => unreachable!(),
            })
            .collect();
        // Overflow copy (seq 0) must come before the wheel copy (seq 2).
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn same_slot_across_spans_cannot_collide() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(100), deliver(0));
        // 100 + WHEEL_SPAN maps to the same slot index but must go to the
        // overflow heap (outside the current window) and pop second.
        q.push(SimTime::from_micros(100 + WHEEL_SPAN), deliver(1));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.as_micros()).collect();
        assert_eq!(order, vec![100, 100 + WHEEL_SPAN]);
    }

    /// Drives the wheel and the baseline heap through an identical
    /// deterministic pseudo-random push/pop schedule and asserts the pop
    /// sequences agree exactly — the scheduler-swap determinism guarantee.
    #[test]
    fn wheel_matches_baseline_heap_order() {
        let mut wheel = EventQueue::new();
        let mut heap = BaselineHeapQueue::new();
        let mut state: u64 = 0x9E37_79B9;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now: u64 = 0;
        let mut popped = 0u32;
        let mut pushed = 0u32;
        while popped < 2_000 {
            let burst = 1 + (rng() % 4);
            for _ in 0..burst {
                if pushed >= 2_000 {
                    break;
                }
                // Mix of near (wheel) and far (overflow) schedule points,
                // including exact ties.
                let delta = match rng() % 5 {
                    0 => 0,
                    1 => rng() % 50,
                    2 => rng() % 1_000,
                    3 => rng() % (WHEEL_SPAN * 2),
                    _ => 5_000 + rng() % 100_000,
                };
                let t = SimTime::from_micros(now + delta);
                wheel.push(t, deliver(pushed));
                heap.push(t, deliver(pushed));
                pushed += 1;
            }
            let (a, b) = (wheel.pop(), heap.pop());
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert_eq!((x.time, x.seq), (y.time, y.seq), "divergence at pop {popped}");
                    now = x.time.as_micros();
                }
                (None, None) => {
                    if pushed >= 2_000 {
                        break;
                    }
                }
                (x, y) => panic!(
                    "one queue drained early: wheel={:?} heap={:?}",
                    x.map(|e| e.seq),
                    y.map(|e| e.seq)
                ),
            }
            popped += 1;
        }
    }
}
