//! Measurement plumbing: counters, time-bucketed series, latency histograms.
//!
//! All experiment figures in the paper are either a time series (Figures 2,
//! 6, 8), a scalar per configuration (Figures 3, 4, 7, Table 1) or a latency
//! distribution (Figures 4, 5). [`Metrics`] collects all three kinds under
//! string keys so protocol code does not need to know which experiment it is
//! running in.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A log-bucketed histogram of durations.
///
/// Buckets grow geometrically (~9% per bucket), which keeps relative
/// quantile error below 5% over a microsecond-to-hours range with a few
/// hundred buckets — the same trade-off HdrHistogram makes.
///
/// # Example
///
/// ```
/// use dynastar_runtime::metrics::Histogram;
/// use dynastar_runtime::time::SimDuration;
///
/// let mut h = Histogram::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5).as_millis_f64() >= 2.0);
/// assert!(h.quantile(1.0).as_millis_f64() >= 100.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum_micros: u128,
    max_micros: u64,
}

/// Growth factor between adjacent histogram buckets.
const BUCKET_GROWTH: f64 = 1.09;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(micros: u64) -> u32 {
        if micros <= 1 {
            0
        } else {
            ((micros as f64).ln() / BUCKET_GROWTH.ln()).floor() as u32
        }
    }

    fn bucket_upper(index: u32) -> u64 {
        BUCKET_GROWTH.powi(index as i32 + 1).ceil() as u64
    }

    /// Records one observation.
    pub fn record(&mut self, d: SimDuration) {
        let micros = d.as_micros();
        *self.buckets.entry(Self::bucket_index(micros)).or_insert(0) += 1;
        self.count += 1;
        self.sum_micros += micros as u128;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded observations; zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((self.sum_micros / self.count as u128) as u64)
        }
    }

    /// Largest recorded observation; zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_micros)
    }

    /// Value at quantile `q` in `[0, 1]`; zero if empty.
    ///
    /// The returned value is an upper bound of the bucket containing the
    /// requested rank (exact for `q = 1.0`, within one bucket otherwise).
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max();
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return SimDuration::from_micros(Self::bucket_upper(idx).min(self.max_micros));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Extracts a cumulative distribution function with one point per bucket.
    pub fn cdf(&self) -> Cdf {
        let mut points = Vec::with_capacity(self.buckets.len());
        let mut cum = 0u64;
        for (&idx, &n) in &self.buckets {
            cum += n;
            points.push((
                SimDuration::from_micros(Self::bucket_upper(idx).min(self.max_micros)),
                cum as f64 / self.count.max(1) as f64,
            ));
        }
        Cdf { points }
    }
}

/// A cumulative distribution function extracted from a [`Histogram`].
///
/// Points are `(latency, fraction ≤ latency)` in increasing order — the
/// series plotted in the paper's Figure 5.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    points: Vec<(SimDuration, f64)>,
}

impl Cdf {
    /// The CDF points in increasing latency order.
    pub fn points(&self) -> &[(SimDuration, f64)] {
        &self.points
    }

    /// The fraction of observations at or below `d` (0 if empty).
    pub fn fraction_le(&self, d: SimDuration) -> f64 {
        let mut frac = 0.0;
        for &(lat, f) in &self.points {
            if lat <= d {
                frac = f;
            } else {
                break;
            }
        }
        frac
    }
}

/// A time series of per-bucket sums, used for throughput-over-time plots.
///
/// # Example
///
/// ```
/// use dynastar_runtime::metrics::TimeSeries;
/// use dynastar_runtime::time::{SimDuration, SimTime};
///
/// let mut s = TimeSeries::new(SimDuration::from_secs(1));
/// s.record(SimTime::from_millis(100), 1.0);
/// s.record(SimTime::from_millis(900), 1.0);
/// s.record(SimTime::from_millis(1_500), 1.0);
/// assert_eq!(s.bucket_sums(), &[2.0, 1.0]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket: SimDuration,
    sums: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "time series bucket must be non-zero");
        TimeSeries { bucket, sums: Vec::new() }
    }

    /// Adds `value` to the bucket containing time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_micros() / self.bucket.as_micros()) as usize;
        if self.sums.len() <= idx {
            self.sums.resize(idx + 1, 0.0);
        }
        self.sums[idx] += value;
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Per-bucket sums, oldest first.
    pub fn bucket_sums(&self) -> &[f64] {
        &self.sums
    }

    /// Per-bucket rates (sum divided by bucket width in seconds).
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let secs = self.bucket.as_secs_f64();
        self.sums.iter().map(|s| s / secs).collect()
    }

    /// Sum over every bucket.
    pub fn total(&self) -> f64 {
        self.sums.iter().sum()
    }
}

/// Interned handle to a counter; see [`Metrics::counter_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Interned handle to a time series; see [`Metrics::series_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeriesId(u32);

/// Interned handle to a histogram; see [`Metrics::histogram_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(u32);

/// Registry of named counters, time series and histograms for one simulation.
///
/// Keys are free-form strings; protocol crates agree on names such as
/// `"cmd.completed"` or `"oracle.queries"` (documented where recorded).
///
/// Hot paths should intern a name once with [`Metrics::counter_id`] /
/// [`Metrics::series_id`] / [`Metrics::histogram_id`] and then record
/// through the dense id — a `Vec` index instead of a string-keyed tree
/// lookup per event. The string API remains as a convenience wrapper and
/// for one-off reads in report code. Ids stay valid across
/// [`Metrics::reset`] but are meaningless in any other `Metrics` instance —
/// callers caching ids across calls that might hand them different
/// registries (e.g. per-thread scratch instances) should remember
/// [`Metrics::registry_id`] alongside and re-intern when it changes.
#[derive(Debug)]
pub struct Metrics {
    /// Process-unique instance tag; see [`Metrics::registry_id`].
    registry: u64,
    /// name → dense index; the index addresses `counter_vals`.
    counter_ids: BTreeMap<String, u32>,
    counter_vals: Vec<u64>,
    series_ids: BTreeMap<String, u32>,
    /// `None` until the first record after creation/reset, so
    /// [`Metrics::series`] only reports series that hold data.
    series_vals: Vec<Option<TimeSeries>>,
    histogram_ids: BTreeMap<String, u32>,
    histogram_vals: Vec<Option<Histogram>>,
    default_bucket: Option<SimDuration>,
}

impl Default for Metrics {
    fn default() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_REGISTRY: AtomicU64 = AtomicU64::new(0);
        Metrics {
            registry: NEXT_REGISTRY.fetch_add(1, Ordering::Relaxed),
            counter_ids: BTreeMap::new(),
            counter_vals: Vec::new(),
            series_ids: BTreeMap::new(),
            series_vals: Vec::new(),
            histogram_ids: BTreeMap::new(),
            histogram_vals: Vec::new(),
            default_bucket: None,
        }
    }
}

impl Metrics {
    /// Creates an empty registry. Time series recorded through
    /// [`Metrics::record_series`] use a 1-second bucket unless
    /// [`Metrics::set_default_bucket`] is called first.
    pub fn new() -> Self {
        Self::default()
    }

    /// A process-unique tag identifying this instance's id space. Interned
    /// [`CounterId`]/[`SeriesId`]/[`HistogramId`]s may only be used against
    /// the instance whose `registry_id` they were minted under (stable
    /// across [`Metrics::reset`]); comparing tags lets a caller detect that
    /// it has been handed a different registry and must re-intern.
    pub fn registry_id(&self) -> u64 {
        self.registry
    }

    /// Sets the bucket width used when a series is created implicitly.
    pub fn set_default_bucket(&mut self, bucket: SimDuration) {
        self.default_bucket = Some(bucket);
    }

    /// Interns `name`, returning a dense id for [`Metrics::incr`].
    /// Registering the same name twice returns the same id.
    pub fn counter_id(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.counter_ids.get(name) {
            return CounterId(i);
        }
        let i = self.counter_vals.len() as u32;
        self.counter_vals.push(0);
        self.counter_ids.insert(name.to_owned(), i);
        CounterId(i)
    }

    /// Adds `n` to the counter behind `id` (index-based, no string lookup).
    #[inline]
    pub fn incr(&mut self, id: CounterId, n: u64) {
        self.counter_vals[id.0 as usize] += n;
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn incr_counter(&mut self, name: &str, n: u64) {
        let id = self.counter_id(name);
        self.incr(id, n);
    }

    /// Current value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_ids.get(name).map(|&i| self.counter_vals[i as usize]).unwrap_or(0)
    }

    /// All registered counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_ids.iter().map(|(k, &i)| (k.as_str(), self.counter_vals[i as usize]))
    }

    /// Interns `name`, returning a dense id for [`Metrics::record_at`].
    pub fn series_id(&mut self, name: &str) -> SeriesId {
        if let Some(&i) = self.series_ids.get(name) {
            return SeriesId(i);
        }
        let i = self.series_vals.len() as u32;
        self.series_vals.push(None);
        self.series_ids.insert(name.to_owned(), i);
        SeriesId(i)
    }

    /// Adds `value` at time `t` to the series behind `id`.
    #[inline]
    pub fn record_at(&mut self, id: SeriesId, t: SimTime, value: f64) {
        let slot = &mut self.series_vals[id.0 as usize];
        match slot {
            Some(s) => s.record(t, value),
            None => {
                let mut s =
                    TimeSeries::new(self.default_bucket.unwrap_or(SimDuration::from_secs(1)));
                s.record(t, value);
                *slot = Some(s);
            }
        }
    }

    /// Adds `value` at time `t` to series `name`, creating the series with
    /// the default bucket width if absent.
    pub fn record_series(&mut self, name: &str, t: SimTime, value: f64) {
        let id = self.series_id(name);
        self.record_at(id, t, value);
    }

    /// The series named `name`, if any value was ever recorded.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series_ids.get(name).and_then(|&i| self.series_vals[i as usize].as_ref())
    }

    /// Interns `name`, returning a dense id for [`Metrics::observe`].
    pub fn histogram_id(&mut self, name: &str) -> HistogramId {
        if let Some(&i) = self.histogram_ids.get(name) {
            return HistogramId(i);
        }
        let i = self.histogram_vals.len() as u32;
        self.histogram_vals.push(None);
        self.histogram_ids.insert(name.to_owned(), i);
        HistogramId(i)
    }

    /// Records a duration into the histogram behind `id`.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, d: SimDuration) {
        let slot = &mut self.histogram_vals[id.0 as usize];
        match slot {
            Some(h) => h.record(d),
            None => {
                let mut h = Histogram::new();
                h.record(d);
                *slot = Some(h);
            }
        }
    }

    /// Records a duration into histogram `name`, creating it if absent.
    pub fn record_histogram(&mut self, name: &str, d: SimDuration) {
        let id = self.histogram_id(name);
        self.observe(id, d);
    }

    /// The histogram named `name`, if any value was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histogram_ids.get(name).and_then(|&i| self.histogram_vals[i as usize].as_ref())
    }

    /// Removes all recorded data but keeps configuration and interned ids
    /// (ids handed out before a reset stay valid afterwards).
    pub fn reset(&mut self) {
        for v in &mut self.counter_vals {
            *v = 0;
        }
        for s in &mut self.series_vals {
            *s = None;
        }
        for h in &mut self.histogram_vals {
            *h = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        let p50 = h.quantile(0.5).as_micros();
        // within one geometric bucket of the true median
        assert!((450..=600).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0).as_micros(), 1000);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.mean().as_micros(), 500);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_millis(100));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new();
        for ms in [1u64, 5, 5, 20, 100] {
            h.record(SimDuration::from_millis(ms));
        }
        let cdf = h.cdf();
        let pts = cdf.points();
        assert!(!pts.is_empty());
        let mut prev = 0.0;
        for &(_, f) in pts {
            assert!(f >= prev);
            prev = f;
        }
        assert!((prev - 1.0).abs() < 1e-9);
        assert_eq!(cdf.fraction_le(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn time_series_buckets_and_rates() {
        let mut s = TimeSeries::new(SimDuration::from_millis(100));
        s.record(SimTime::from_millis(10), 2.0);
        s.record(SimTime::from_millis(250), 1.0);
        assert_eq!(s.bucket_sums(), &[2.0, 0.0, 1.0]);
        assert_eq!(s.rates_per_sec(), vec![20.0, 0.0, 10.0]);
        assert_eq!(s.total(), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn time_series_rejects_zero_bucket() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }

    #[test]
    fn metrics_registry_counters_and_series() {
        let mut m = Metrics::new();
        m.incr_counter("x", 2);
        m.incr_counter("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);

        m.set_default_bucket(SimDuration::from_millis(10));
        m.record_series("tput", SimTime::from_millis(5), 1.0);
        assert_eq!(m.series("tput").unwrap().bucket_sums(), &[1.0]);

        m.record_histogram("lat", SimDuration::from_micros(42));
        assert_eq!(m.histogram("lat").unwrap().count(), 1);

        m.reset();
        assert_eq!(m.counter("x"), 0);
        assert!(m.series("tput").is_none());
    }

    #[test]
    fn interned_ids_alias_string_api_and_survive_reset() {
        let mut m = Metrics::new();
        m.set_default_bucket(SimDuration::from_millis(10));

        let c = m.counter_id("x");
        assert_eq!(c, m.counter_id("x"), "re-registration returns the same id");
        m.incr(c, 2);
        m.incr_counter("x", 3);
        assert_eq!(m.counter("x"), 5);

        let s = m.series_id("tput");
        m.record_at(s, SimTime::from_millis(5), 1.0);
        m.record_series("tput", SimTime::from_millis(6), 1.0);
        assert_eq!(m.series("tput").unwrap().bucket_sums(), &[2.0]);

        let h = m.histogram_id("lat");
        m.observe(h, SimDuration::from_micros(42));
        m.record_histogram("lat", SimDuration::from_micros(43));
        assert_eq!(m.histogram("lat").unwrap().count(), 2);

        m.reset();
        assert_eq!(m.counter("x"), 0);
        assert!(m.series("tput").is_none());
        assert!(m.histogram("lat").is_none());

        // Ids handed out before the reset keep working.
        m.incr(c, 7);
        m.record_at(s, SimTime::from_millis(1), 4.0);
        m.observe(h, SimDuration::from_micros(9));
        assert_eq!(m.counter("x"), 7);
        assert_eq!(m.series("tput").unwrap().bucket_sums(), &[4.0]);
        assert_eq!(m.histogram("lat").unwrap().count(), 1);
    }
}
