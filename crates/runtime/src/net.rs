//! Network model: message latency, loss and connectivity.
//!
//! The paper runs on EC2 with sub-millisecond intra-region latency; the
//! defaults here ([`NetConfig::default`]) approximate that environment
//! (0.5 ms ± 0.25 ms one-way, no loss). Experiments override the model to
//! study other regimes.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::actor::NodeId;
use crate::time::SimDuration;

/// A one-way message latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(SimDuration),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Smallest possible latency.
        min: SimDuration,
        /// Largest possible latency.
        max: SimDuration,
    },
}

impl LatencyModel {
    /// Samples a latency from the model.
    pub fn sample(&self, rng: &mut StdRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = (min.as_micros(), max.as_micros());
                if lo >= hi {
                    min
                } else {
                    SimDuration::from_micros(rng.gen_range(lo..=hi))
                }
            }
        }
    }

    /// The largest latency the model can produce.
    pub fn max(&self) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { max, .. } => max,
        }
    }
}

impl Default for LatencyModel {
    /// Intra-datacenter style latency: uniform in `[250us, 750us]` one-way.
    fn default() -> Self {
        LatencyModel::Uniform {
            min: SimDuration::from_micros(250),
            max: SimDuration::from_micros(750),
        }
    }
}

/// Full network configuration for a simulation.
///
/// # Example
///
/// ```
/// use dynastar_runtime::net::{LatencyModel, NetConfig};
/// use dynastar_runtime::time::SimDuration;
///
/// let net = NetConfig::default()
///     .latency(LatencyModel::Fixed(SimDuration::from_millis(1)))
///     .loss_probability(0.01);
/// assert_eq!(net.loss_probability, 0.01);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// Latency applied to every message (self-sends use [`NetConfig::local_latency`]).
    pub latency_model: LatencyModel,
    /// Latency of a message a node sends to itself (loopback).
    pub local_latency: SimDuration,
    /// Probability in `[0, 1]` that any given message is silently dropped.
    pub loss_probability: f64,
}

impl NetConfig {
    /// Builder-style setter for the latency model.
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency_model = model;
        self
    }

    /// Builder-style setter for loopback latency.
    pub fn local(mut self, latency: SimDuration) -> Self {
        self.local_latency = latency;
        self
    }

    /// Builder-style setter for the drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn loss_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        self.loss_probability = p;
        self
    }

    /// Samples the delivery latency for a message from `from` to `to`, or
    /// `None` if the message is lost.
    pub fn sample_delivery(
        &self,
        from: NodeId,
        to: NodeId,
        rng: &mut StdRng,
    ) -> Option<SimDuration> {
        if self.loss_probability > 0.0 && rng.gen_bool(self.loss_probability) {
            return None;
        }
        if from == to {
            Some(self.local_latency)
        } else {
            Some(self.latency_model.sample(rng))
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency_model: LatencyModel::default(),
            local_latency: SimDuration::from_micros(10),
            loss_probability: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_latency_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Fixed(SimDuration::from_millis(2));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(2));
        }
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Uniform {
            min: SimDuration::from_micros(100),
            max: SimDuration::from_micros(200),
        };
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_micros(100));
            assert!(d <= SimDuration::from_micros(200));
        }
    }

    #[test]
    fn degenerate_uniform_returns_min() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LatencyModel::Uniform {
            min: SimDuration::from_micros(100),
            max: SimDuration::from_micros(100),
        };
        assert_eq!(m.sample(&mut rng), SimDuration::from_micros(100));
    }

    #[test]
    fn self_sends_use_local_latency() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = NetConfig::default().local(SimDuration::from_micros(1));
        let n = NodeId::from_raw(7);
        assert_eq!(net.sample_delivery(n, n, &mut rng), Some(SimDuration::from_micros(1)));
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = NetConfig::default().loss_probability(1.0);
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        assert_eq!(net.sample_delivery(a, b, &mut rng), None);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_probability_validated() {
        let _ = NetConfig::default().loss_probability(1.5);
    }
}
