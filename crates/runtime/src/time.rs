//! Simulated time.
//!
//! Simulated time is a monotone counter of microseconds since the start of
//! the simulation. It is deliberately a distinct type from
//! [`std::time::Instant`] so that protocol code cannot accidentally observe
//! wall-clock time and break determinism.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in microseconds from simulation start.
///
/// `SimTime` is totally ordered; the simulation scheduler processes events in
/// nondecreasing `SimTime` order.
///
/// # Example
///
/// ```
/// use dynastar_runtime::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// This time as microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This time as (fractional) milliseconds since simulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time as (fractional) seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; elapsed time in a
    /// simulation is never negative.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(earlier.0 <= self.0, "duration_since: earlier ({earlier}) is after self ({self})");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use dynastar_runtime::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// The duration as whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration as (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether this duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// This duration multiplied by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(3);
        let t2 = t + SimDuration::from_micros(250);
        assert_eq!(t2.as_micros(), 3_250);
        assert_eq!(t2 - t, SimDuration::from_micros(250));
    }

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(2), SimTime::from_micros(2_000));
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1_000.0);
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_micros(1));
    }

    #[test]
    fn saturating_duration_clamps_to_zero() {
        let d = SimTime::ZERO.saturating_duration_since(SimTime::from_secs(1));
        assert!(d.is_zero());
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }
}
