//! Baseline (non-optimizing) partitioners.
//!
//! These are the strategies DynaStar's evaluation compares against
//! implicitly: `random_partition` is the state DynaStar starts from in the
//! paper's experiments, and `hash_partition` is the classic static scheme
//! used by systems without workload knowledge.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::partitioning::Partitioning;

/// Assigns vertex `v` to part `v % k` — deterministic, balanced by count,
/// oblivious to the edge structure.
///
/// # Panics
///
/// Panics if `k` is zero.
///
/// # Example
///
/// ```
/// use dynastar_partitioner::hash_partition;
/// let p = hash_partition(10, 4);
/// assert_eq!(p.part_of(6), 2);
/// ```
pub fn hash_partition(n: usize, k: u32) -> Partitioning {
    assert!(k > 0, "cannot partition into zero parts");
    Partitioning::new(k, (0..n as u32).map(|v| v % k).collect())
}

/// Assigns every vertex to a uniformly random part (deterministic in
/// `seed`). This is the initial placement in the paper's Figure 2 and 6
/// experiments.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn random_partition(n: usize, k: u32, seed: u64) -> Partitioning {
    assert!(k > 0, "cannot partition into zero parts");
    let mut rng = StdRng::seed_from_u64(seed);
    Partitioning::new(k, (0..n).map(|_| rng.gen_range(0..k)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partition_is_round_robin() {
        let p = hash_partition(8, 3);
        assert_eq!(p.assignment(), &[0, 1, 2, 0, 1, 2, 0, 1]);
    }

    #[test]
    fn random_partition_is_deterministic_per_seed() {
        let a = random_partition(100, 4, 5);
        let b = random_partition(100, 4, 5);
        let c = random_partition(100, 4, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_partition_covers_all_parts() {
        let p = random_partition(1000, 4, 1);
        let mut seen = [false; 4];
        for &a in p.assignment() {
            seen[a as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
