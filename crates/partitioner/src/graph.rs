//! Undirected weighted graphs in compressed adjacency form.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An undirected graph with vertex and edge weights, stored in CSR
/// (compressed sparse row) form for cache-friendly traversal.
///
/// Build one with [`GraphBuilder`]; see the [crate docs](crate) for an
/// end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    /// `xadj[v]..xadj[v+1]` indexes `adj` for vertex `v`'s neighbours.
    xadj: Vec<usize>,
    /// `(neighbour, edge weight)` pairs.
    adj: Vec<(u32, u64)>,
    /// Vertex weights.
    vwgt: Vec<u64>,
    total_vwgt: u64,
    total_ewgt: u64,
}

impl Graph {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// Weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vertex_weight(&self, v: u32) -> u64 {
        self.vwgt[v as usize]
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.total_vwgt
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_edge_weight(&self) -> u64 {
        self.total_ewgt
    }

    /// The `(neighbour, edge weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[(u32, u64)] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = u32> {
        0..self.vertex_count() as u32
    }

    /// Assembles a graph directly from pre-built CSR arrays, bypassing
    /// [`GraphBuilder`]'s edge accumulator. The coarsening hot loop uses
    /// this: it merges parallel edges itself with a dense scratch map, so
    /// routing every coarse edge through a `BTreeMap` again would only
    /// re-do (and slow down) work already done.
    ///
    /// Invariants the caller must uphold (checked in debug builds): every
    /// undirected edge appears exactly twice (once per endpoint row), rows
    /// contain no self-loops and no duplicate neighbours, and
    /// `xadj.len() == vwgt.len() + 1` with `xadj[n] == adj.len()`.
    pub(crate) fn from_csr(xadj: Vec<usize>, adj: Vec<(u32, u64)>, vwgt: Vec<u64>) -> Graph {
        debug_assert_eq!(xadj.len(), vwgt.len() + 1);
        debug_assert_eq!(*xadj.last().unwrap_or(&0), adj.len());
        debug_assert!(adj.len().is_multiple_of(2), "every undirected edge must appear twice");
        let total_ewgt = adj.iter().map(|&(_, w)| w).sum::<u64>() / 2;
        Graph { xadj, total_vwgt: vwgt.iter().sum(), vwgt, adj, total_ewgt }
    }
}

/// Incremental builder for [`Graph`].
///
/// Vertices are created implicitly by mentioning them; duplicate edges are
/// merged by summing their weights; self-loops are ignored (they never
/// affect a partition's cut).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    /// Edge accumulator keyed by canonical `(min, max)` endpoints.
    /// Ordered so [`build`](Self::build) fills CSR rows deterministically
    /// without a separate sort.
    edges: BTreeMap<(u32, u32), u64>,
    vwgt: Vec<u64>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures vertex `v` exists (with default weight 1) and returns the
    /// builder for chaining.
    pub fn add_vertex(&mut self, v: u32) -> &mut Self {
        if self.vwgt.len() <= v as usize {
            self.vwgt.resize(v as usize + 1, 1);
        }
        self
    }

    /// Sets the weight of vertex `v`, creating it if needed.
    pub fn set_vertex_weight(&mut self, v: u32, w: u64) -> &mut Self {
        self.add_vertex(v);
        self.vwgt[v as usize] = w;
        self
    }

    /// Adds weight `w` to the undirected edge `{u, v}` (creating vertices
    /// as needed). Self-loops are ignored.
    pub fn add_edge(&mut self, u: u32, v: u32, w: u64) -> &mut Self {
        self.add_vertex(u);
        self.add_vertex(v);
        if u != v {
            let key = (u.min(v), u.max(v));
            *self.edges.entry(key).or_insert(0) += w;
        }
        self
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vwgt.len()
    }

    /// Finalizes into CSR form.
    pub fn build(&self) -> Graph {
        let n = self.vwgt.len();
        let mut degree = vec![0usize; n];
        for &(u, v) in self.edges.keys() {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let mut adj = vec![(0u32, 0u64); xadj[n]];
        let mut cursor = xadj.clone();
        let mut total_ewgt = 0;
        // BTreeMap iterates in key order, so CSR rows fill deterministically.
        for (&(u, v), &w) in &self.edges {
            adj[cursor[u as usize]] = (v, w);
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = (u, w);
            cursor[v as usize] += 1;
            total_ewgt += w;
        }
        Graph { xadj, adj, total_vwgt: self.vwgt.iter().sum(), vwgt: self.vwgt.clone(), total_ewgt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1).add_edge(1, 2, 2).add_edge(0, 2, 3);
        b.build()
    }

    #[test]
    fn builds_csr_correctly() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.total_edge_weight(), 6);
        assert_eq!(g.degree(0), 2);
        let mut n0: Vec<(u32, u64)> = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![(1, 1), (2, 3)]);
    }

    #[test]
    fn duplicate_edges_merge() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1).add_edge(1, 0, 4);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[(1, 5)]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 9).add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_edge_weight(), 1);
    }

    #[test]
    fn isolated_vertices_survive() {
        let mut b = GraphBuilder::new();
        b.add_vertex(5);
        let g = b.build();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.degree(5), 0);
        assert_eq!(g.total_vertex_weight(), 6);
    }

    #[test]
    fn vertex_weights_apply() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1);
        b.set_vertex_weight(0, 10);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 10);
        assert_eq!(g.vertex_weight(1), 1);
        assert_eq!(g.total_vertex_weight(), 11);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
