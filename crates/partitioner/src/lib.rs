//! # dynastar-partitioner
//!
//! A from-scratch multilevel k-way graph partitioner, standing in for METIS
//! in the DynaStar reproduction (the paper's oracle runs METIS over the
//! workload graph; see DESIGN.md for the substitution argument).
//!
//! The algorithm is the classic multilevel recipe METIS itself uses:
//!
//! 1. **Coarsening** — repeatedly contract a heavy-edge matching until the
//!    graph is small.
//! 2. **Initial partitioning** — greedy region growing on the coarsest
//!    graph.
//! 3. **Uncoarsening** — project the partition back level by level,
//!    applying boundary Kernighan–Lin/Fiduccia–Mattheyses refinement under
//!    a balance constraint (the paper configures METIS with 20% allowed
//!    imbalance; [`PartitionConfig::default`] matches that).
//!
//! # Example
//!
//! ```
//! use dynastar_partitioner::{GraphBuilder, PartitionConfig, partition};
//!
//! // Two triangles joined by a single light edge: the obvious 2-way split.
//! let mut b = GraphBuilder::new();
//! for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     b.add_edge(u, v, 10);
//! }
//! b.add_edge(2, 3, 1);
//! let g = b.build();
//! let p = partition(&g, 2, &PartitionConfig::default());
//! assert_eq!(p.edge_cut(&g), 1);
//! assert_eq!(p.assignment()[0], p.assignment()[1]);
//! assert_ne!(p.assignment()[0], p.assignment()[5]);
//! ```

#![forbid(unsafe_code)]

mod baseline;
mod graph;
mod multilevel;
mod partitioning;

pub use baseline::{hash_partition, random_partition};
pub use graph::{Graph, GraphBuilder};
pub use multilevel::{partition, partition_from, PartitionConfig};
pub use partitioning::{align_labels, Partitioning};
