//! Partition assignments and their quality metrics.

use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// A k-way assignment of graph vertices to parts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    parts: u32,
    assignment: Vec<u32>,
}

impl Partitioning {
    /// Wraps an assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero or any entry is out of range.
    pub fn new(parts: u32, assignment: Vec<u32>) -> Self {
        assert!(parts > 0, "need at least one part");
        assert!(assignment.iter().all(|&p| p < parts), "assignment references a part >= {parts}");
        Partitioning { parts, assignment }
    }

    /// Number of parts.
    pub fn parts(&self) -> u32 {
        self.parts
    }

    /// The per-vertex part assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Part of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn part_of(&self, v: u32) -> u32 {
        self.assignment[v as usize]
    }

    /// Total weight of edges whose endpoints lie in different parts.
    ///
    /// # Panics
    ///
    /// Panics if `g` has more vertices than the assignment covers.
    pub fn edge_cut(&self, g: &Graph) -> u64 {
        assert!(g.vertex_count() <= self.assignment.len(), "graph larger than assignment");
        let mut cut = 0;
        for v in g.vertices() {
            for &(u, w) in g.neighbors(v) {
                if u > v && self.assignment[v as usize] != self.assignment[u as usize] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Sum of vertex weights in each part.
    pub fn part_weights(&self, g: &Graph) -> Vec<u64> {
        let mut w = vec![0u64; self.parts as usize];
        for v in g.vertices() {
            w[self.assignment[v as usize] as usize] += g.vertex_weight(v);
        }
        w
    }

    /// Balance factor: heaviest part divided by the ideal (average) part
    /// weight. 1.0 is perfect; METIS-style constraints bound this (the
    /// paper allows 1.2).
    pub fn balance(&self, g: &Graph) -> f64 {
        let weights = self.part_weights(g);
        let max = weights.iter().copied().max().unwrap_or(0) as f64;
        let ideal = g.total_vertex_weight() as f64 / self.parts as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }

    /// Number of vertices that differ from `other`'s assignment (counts
    /// the data movement a repartitioning implies).
    ///
    /// # Panics
    ///
    /// Panics if the assignments have different lengths.
    pub fn moved_from(&self, other: &Partitioning) -> usize {
        assert_eq!(self.assignment.len(), other.assignment.len(), "size mismatch");
        self.assignment.iter().zip(&other.assignment).filter(|(a, b)| a != b).count()
    }
}

/// Permutes the part labels of `new` to maximize overlap with `prev`,
/// without changing which vertices are grouped together.
///
/// A fresh multilevel run can return the "same" partition with labels
/// shuffled, which would make every vertex look moved; the DynaStar oracle
/// aligns labels before diffing so only real moves are shipped. Greedy
/// maximum-overlap matching is used (optimal enough in practice and `O(k²)`
/// over the overlap matrix).
///
/// # Panics
///
/// Panics if the assignments have different lengths or part counts differ.
pub fn align_labels(prev: &Partitioning, new: &Partitioning) -> Partitioning {
    assert_eq!(prev.assignment.len(), new.assignment.len(), "size mismatch");
    assert_eq!(prev.parts, new.parts, "part count mismatch");
    let k = new.parts as usize;
    // overlap[a][b] = number of vertices in new part a and prev part b.
    let mut overlap = vec![vec![0u64; k]; k];
    for (&np, &pp) in new.assignment.iter().zip(&prev.assignment) {
        overlap[np as usize][pp as usize] += 1;
    }
    // Greedy: repeatedly take the largest remaining overlap cell.
    let mut relabel = vec![u32::MAX; k];
    let mut prev_used = vec![false; k];
    let mut new_used = vec![false; k];
    for _ in 0..k {
        let mut best = (0u64, usize::MAX, usize::MAX);
        for a in 0..k {
            if new_used[a] {
                continue;
            }
            for b in 0..k {
                if prev_used[b] {
                    continue;
                }
                if best.1 == usize::MAX || overlap[a][b] > best.0 {
                    best = (overlap[a][b], a, b);
                }
            }
        }
        let (_, a, b) = best;
        relabel[a] = b as u32;
        new_used[a] = true;
        prev_used[b] = true;
    }
    let assignment = new.assignment.iter().map(|&p| relabel[p as usize]).collect();
    Partitioning::new(new.parts, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path4() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1).add_edge(1, 2, 5).add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn edge_cut_counts_cross_part_weight() {
        let g = path4();
        let p = Partitioning::new(2, vec![0, 0, 1, 1]);
        assert_eq!(p.edge_cut(&g), 5);
        let q = Partitioning::new(2, vec![0, 1, 1, 1]);
        assert_eq!(q.edge_cut(&g), 1);
    }

    #[test]
    fn part_weights_and_balance() {
        let g = path4();
        let p = Partitioning::new(2, vec![0, 0, 0, 1]);
        assert_eq!(p.part_weights(&g), vec![3, 1]);
        assert!((p.balance(&g) - 1.5).abs() < 1e-9);
        let q = Partitioning::new(2, vec![0, 0, 1, 1]);
        assert!((q.balance(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moved_from_counts_differences() {
        let a = Partitioning::new(2, vec![0, 0, 1, 1]);
        let b = Partitioning::new(2, vec![0, 1, 1, 0]);
        assert_eq!(a.moved_from(&b), 2);
        assert_eq!(a.moved_from(&a), 0);
    }

    #[test]
    fn align_labels_recovers_permuted_partition() {
        let prev = Partitioning::new(3, vec![0, 0, 1, 1, 2, 2]);
        // Identical grouping, labels rotated.
        let new = Partitioning::new(3, vec![1, 1, 2, 2, 0, 0]);
        let aligned = align_labels(&prev, &new);
        assert_eq!(aligned.assignment(), prev.assignment());
        assert_eq!(aligned.moved_from(&prev), 0);
    }

    #[test]
    fn align_labels_keeps_real_moves() {
        let prev = Partitioning::new(2, vec![0, 0, 0, 1, 1, 1]);
        // Vertex 0 genuinely moved to the other group; labels also swapped.
        let new = Partitioning::new(2, vec![0, 1, 1, 0, 0, 0]);
        let aligned = align_labels(&prev, &new);
        assert_eq!(aligned.moved_from(&prev), 1);
    }

    #[test]
    #[should_panic(expected = "part >= 2")]
    fn rejects_out_of_range_part() {
        let _ = Partitioning::new(2, vec![0, 2]);
    }
}
