//! The multilevel k-way partitioning algorithm.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

use crate::graph::{Graph, GraphBuilder};
use crate::partitioning::Partitioning;

/// Tuning knobs for [`partition`].
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Maximum allowed `heaviest part / ideal part` ratio. The paper
    /// configures METIS with 20% unbalance, i.e. 1.2.
    pub balance_factor: f64,
    /// Seed for the (deterministic) randomized matching and seeding.
    pub seed: u64,
    /// Stop coarsening when the graph has at most `coarsen_until * k`
    /// vertices.
    pub coarsen_until: usize,
    /// Maximum refinement passes per level.
    pub refine_passes: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { balance_factor: 1.2, seed: 1, coarsen_until: 30, refine_passes: 8 }
    }
}

impl PartitionConfig {
    /// Builder-style setter for the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the balance factor.
    ///
    /// # Panics
    ///
    /// Panics if `f < 1.0`.
    pub fn balance_factor(mut self, f: f64) -> Self {
        assert!(f >= 1.0, "balance factor must be >= 1.0");
        self.balance_factor = f;
        self
    }
}

/// Computes a k-way partitioning of `g` minimizing edge cut under the
/// configured balance constraint, using multilevel coarsening with
/// heavy-edge matching, greedy initial growing and boundary FM refinement.
///
/// The result is deterministic for a given `(graph, k, config)`.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn partition(g: &Graph, k: u32, cfg: &PartitionConfig) -> Partitioning {
    assert!(k > 0, "cannot partition into zero parts");
    let n = g.vertex_count();
    if k == 1 || n == 0 {
        return Partitioning::new(k.max(1), vec![0; n]);
    }
    if n <= k as usize {
        return Partitioning::new(k, (0..n as u32).map(|v| v % k).collect());
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Phase 1: coarsen.
    let mut levels: Vec<(Graph, Vec<u32>)> = Vec::new(); // (finer graph, fine -> coarse map)
    let mut current = g.clone();
    let stop_at = (cfg.coarsen_until * k as usize).max(64);
    while current.vertex_count() > stop_at {
        let (coarse, map) = contract(&current, &mut rng);
        if coarse.vertex_count() as f64 > current.vertex_count() as f64 * 0.95 {
            break; // matching stalled (e.g. star graphs)
        }
        levels.push((current, map));
        current = coarse;
    }

    // Phase 2: initial partition of the coarsest graph.
    let mut assignment = grow_initial(&current, k, &mut rng);
    refine(&current, k, &mut assignment, cfg);

    // Phase 3: uncoarsen and refine.
    while let Some((finer, map)) = levels.pop() {
        let mut fine_assignment = vec![0u32; finer.vertex_count()];
        for v in 0..finer.vertex_count() {
            fine_assignment[v] = assignment[map[v] as usize];
        }
        assignment = fine_assignment;
        refine(&finer, k, &mut assignment, cfg);
        current = finer;
    }
    debug_assert_eq!(current.vertex_count(), g.vertex_count());
    Partitioning::new(k, assignment)
}

/// One coarsening step: heavy-edge matching followed by contraction.
/// Returns the coarse graph and the fine→coarse vertex map.
fn contract(g: &Graph, rng: &mut StdRng) -> (Graph, Vec<u32>) {
    let n = g.vertex_count();
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        // Heaviest unmatched neighbour; ties broken by smaller id for
        // determinism given the shuffle.
        let mut best: Option<(u64, u32)> = None;
        for &(u, w) in g.neighbors(v) {
            if mate[u as usize] == UNMATCHED && u != v {
                let cand = (w, u);
                best = Some(match best {
                    None => cand,
                    Some(b) => {
                        if (cand.0, std::cmp::Reverse(cand.1)) > (b.0, std::cmp::Reverse(b.1)) {
                            cand
                        } else {
                            b
                        }
                    }
                });
            }
        }
        match best {
            Some((_, u)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // singleton
        }
    }
    // Assign coarse ids (pair representative = smaller endpoint).
    let mut map = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v {
            map[m as usize] = next;
        }
        next += 1;
    }
    // Build the coarse graph.
    let mut b = GraphBuilder::new();
    let mut vwgt = vec![0u64; next as usize];
    for v in 0..n as u32 {
        vwgt[map[v as usize] as usize] += g.vertex_weight(v);
    }
    for (c, &w) in vwgt.iter().enumerate() {
        b.set_vertex_weight(c as u32, w);
    }
    // Merge parallel edges via the builder's accumulator.
    for v in 0..n as u32 {
        for &(u, w) in g.neighbors(v) {
            if u > v {
                let (cu, cv) = (map[u as usize], map[v as usize]);
                if cu != cv {
                    b.add_edge(cu, cv, w);
                }
            }
        }
    }
    (b.build(), map)
}

/// Greedy region growing: grow each part from a random seed, preferring
/// frontier vertices strongly connected to the region, until it reaches the
/// ideal weight; leftovers go to the last part.
fn grow_initial(g: &Graph, k: u32, rng: &mut StdRng) -> Vec<u32> {
    let n = g.vertex_count();
    const FREE: u32 = u32::MAX;
    let mut assignment = vec![FREE; n];
    let target = g.total_vertex_weight() / k as u64;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut cursor = 0usize;

    for part in 0..k.saturating_sub(1) {
        // Find an unassigned seed.
        while cursor < n && assignment[order[cursor] as usize] != FREE {
            cursor += 1;
        }
        if cursor >= n {
            break;
        }
        let seed = order[cursor];
        let mut weight = 0u64;
        // Frontier scored by connection weight into the region. BTreeMap:
        // the max_by_key below must not scan in hash order.
        let mut frontier: BTreeMap<u32, u64> = BTreeMap::new();
        frontier.insert(seed, 0);
        while weight < target.max(1) {
            // Best-connected frontier vertex (ties by id for determinism).
            let Some((&v, _)) = frontier.iter().max_by_key(|(&v, &w)| (w, std::cmp::Reverse(v)))
            else {
                break;
            };
            frontier.remove(&v);
            if assignment[v as usize] != FREE {
                continue;
            }
            assignment[v as usize] = part;
            weight += g.vertex_weight(v);
            for &(u, w) in g.neighbors(v) {
                if assignment[u as usize] == FREE {
                    *frontier.entry(u).or_insert(0) += w;
                }
            }
        }
    }
    // Everything left joins the last part.
    for a in assignment.iter_mut() {
        if *a == FREE {
            *a = k - 1;
        }
    }
    assignment
}

/// Boundary FM-style refinement: greedily move boundary vertices with
/// positive gain (or zero gain improving balance) under the balance cap,
/// plus an explicit rebalancing sweep for overweight parts.
fn refine(g: &Graph, k: u32, assignment: &mut [u32], cfg: &PartitionConfig) {
    let n = g.vertex_count();
    let ideal = g.total_vertex_weight() as f64 / k as f64;
    let cap = (ideal * cfg.balance_factor).ceil() as u64;
    let mut weights = vec![0u64; k as usize];
    for v in 0..n {
        weights[assignment[v] as usize] += g.vertex_weight(v as u32);
    }

    for _pass in 0..cfg.refine_passes {
        let mut moves = 0usize;
        for v in 0..n as u32 {
            let own = assignment[v as usize];
            // Connection weight to each adjacent part. BTreeMap is
            // load-bearing: the best-target scan below breaks equal-gain
            // ties first-wins, so iterating in hash order would pick a
            // different part per process and diverge replica plans.
            let mut conn: BTreeMap<u32, u64> = BTreeMap::new();
            let mut own_conn = 0u64;
            for &(u, w) in g.neighbors(v) {
                let pu = assignment[u as usize];
                if pu == own {
                    own_conn += w;
                } else {
                    *conn.entry(pu).or_insert(0) += w;
                }
            }
            if conn.is_empty() {
                continue; // interior vertex
            }
            let vw = g.vertex_weight(v);
            // Best target by (gain, lighter-part preference, id).
            let mut best: Option<(i64, u32)> = None;
            for (&p, &w_to) in &conn {
                if weights[p as usize] + vw > cap {
                    continue;
                }
                let gain = w_to as i64 - own_conn as i64;
                let better_balance = weights[p as usize] + vw < weights[own as usize];
                if gain > 0 || (gain == 0 && better_balance) {
                    let cand = (gain, p);
                    best = Some(match best {
                        None => cand,
                        Some(b) if cand.0 > b.0 => cand,
                        Some(b) => b,
                    });
                }
            }
            if let Some((_, p)) = best {
                weights[own as usize] -= vw;
                weights[p as usize] += vw;
                assignment[v as usize] = p;
                moves += 1;
            }
        }
        if moves == 0 {
            break;
        }
    }

    // Rebalance: for each overweight part, move its least-attached
    // vertices to the lightest parts until it fits under the cap. One
    // sorted sweep per part keeps this O(n log n) rather than O(n²).
    for over in 0..k {
        if weights[over as usize] <= cap {
            continue;
        }
        // Candidates sorted by how much cut weight the move would cost.
        let mut candidates: Vec<(i64, u32)> = (0..n as u32)
            .filter(|&v| assignment[v as usize] == over)
            .map(|v| {
                let own_conn: i64 = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&(u, _)| assignment[u as usize] == over)
                    .map(|&(_, w)| w as i64)
                    .sum();
                (own_conn, v)
            })
            .collect();
        candidates.sort_unstable();
        for (_, v) in candidates {
            if weights[over as usize] <= cap {
                break;
            }
            let vw = g.vertex_weight(v);
            let target = (0..k)
                .filter(|&p| p != over)
                .min_by_key(|&p| weights[p as usize])
                .expect("k >= 2 when rebalancing");
            if weights[target as usize] + vw >= weights[over as usize] {
                continue; // move would not improve balance
            }
            weights[over as usize] -= vw;
            weights[target as usize] += vw;
            assignment[v as usize] = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioning::Partitioning;

    /// `blocks` cliques of `size` vertices, ring-connected by light edges.
    fn clustered(blocks: u32, size: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for c in 0..blocks {
            let base = c * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    b.add_edge(base + i, base + j, 100);
                }
            }
            let next = ((c + 1) % blocks) * size;
            b.add_edge(base, next, 1);
        }
        b.build()
    }

    #[test]
    fn finds_natural_clusters() {
        let g = clustered(4, 8);
        let p = partition(&g, 4, &PartitionConfig::default());
        // The 4 rings of cliques should be split exactly on the light ring
        // edges: cut = 4 (one light edge per adjacent block pair).
        assert_eq!(p.edge_cut(&g), 4);
        assert!(p.balance(&g) <= 1.2 + 1e-9);
        // Each clique is monochromatic.
        for c in 0..4u32 {
            let part = p.part_of(c * 8);
            for i in 0..8 {
                assert_eq!(p.part_of(c * 8 + i), part, "clique {c} split");
            }
        }
    }

    #[test]
    fn respects_balance_on_uniform_graph() {
        // A 2D grid, k=3.
        let mut b = GraphBuilder::new();
        let side = 12u32;
        for x in 0..side {
            for y in 0..side {
                let v = x * side + y;
                if x + 1 < side {
                    b.add_edge(v, (x + 1) * side + y, 1);
                }
                if y + 1 < side {
                    b.add_edge(v, x * side + y + 1, 1);
                }
            }
        }
        let g = b.build();
        let p = partition(&g, 3, &PartitionConfig::default());
        assert!(p.balance(&g) <= 1.2 + 1e-9, "balance = {}", p.balance(&g));
        // A reasonable cut: far below the total edge weight.
        assert!(p.edge_cut(&g) < g.total_edge_weight() / 4);
    }

    #[test]
    fn k_equals_one_puts_everything_together() {
        let g = clustered(2, 4);
        let p = partition(&g, 1, &PartitionConfig::default());
        assert!(p.assignment().iter().all(|&x| x == 0));
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn tiny_graph_smaller_than_k() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1);
        let g = b.build();
        let p = partition(&g, 4, &PartitionConfig::default());
        assert_eq!(p.assignment().len(), 2);
        assert!(p.assignment().iter().all(|&x| x < 4));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = clustered(3, 10);
        let cfg = PartitionConfig::default().seed(7);
        let a = partition(&g, 3, &cfg);
        let b = partition(&g, 3, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        // Two heavy vertices and many light ones: the heavies should end
        // up in different parts.
        let mut b = GraphBuilder::new();
        for v in 2..20u32 {
            b.add_edge(0, v, 1);
            b.add_edge(1, v, 1);
        }
        b.set_vertex_weight(0, 100);
        b.set_vertex_weight(1, 100);
        let g = b.build();
        let p = partition(&g, 2, &PartitionConfig::default());
        assert_ne!(p.part_of(0), p.part_of(1), "heavy vertices must split");
        assert!(p.balance(&g) <= 1.25, "balance = {}", p.balance(&g));
    }

    #[test]
    fn empty_graph_partitions_trivially() {
        let g = GraphBuilder::new().build();
        let p = partition(&g, 4, &PartitionConfig::default());
        assert!(p.assignment().is_empty());
    }

    #[test]
    fn improves_over_random_assignment() {
        use crate::baseline::random_partition;
        let g = clustered(4, 12);
        let optimized = partition(&g, 4, &PartitionConfig::default());
        let random = random_partition(g.vertex_count(), 4, 99);
        assert!(
            optimized.edge_cut(&g) * 10 < random.edge_cut(&g),
            "multilevel ({}) should beat random ({}) by >10x on clustered graphs",
            optimized.edge_cut(&g),
            random.edge_cut(&g)
        );
        let _ = Partitioning::new(4, optimized.assignment().to_vec());
    }
}
