//! The multilevel k-way partitioning algorithm.
//!
//! # Hot-path design
//!
//! Every phase runs on flat arrays so the cost per level is linear in the
//! level's size (the classic METIS complexity argument):
//!
//! * **Coarsening** contracts CSR→CSR directly: parallel coarse edges are
//!   merged through a dense `position + 1` scratch map indexed by coarse
//!   id, never through `GraphBuilder`'s `BTreeMap` accumulator. Matching
//!   and scratch buffers are reused across levels via [`Scratch`], and the
//!   first level borrows the caller's graph instead of cloning it.
//! * **Initial partitioning** grows regions off a lazy-deletion binary
//!   heap keyed by `(connection weight, Reverse(id))`: stale entries are
//!   skipped on pop, so each frontier update is `O(log n)` instead of the
//!   old `O(|frontier|)` full scan per pop.
//! * **Refinement** is FM-style over a *boundary worklist*: a pass visits
//!   only vertices that were boundary at the start of the pass (plus, on
//!   later passes, the neighbourhood of every vertex moved last pass), in
//!   ascending id order. Per-vertex part connectivity lives in a reusable
//!   dense `k`-sized buffer with a touched-part list, scanned in ascending
//!   part id so tie-breaks match the old `BTreeMap` iteration order.
//!
//! All of it is deterministic: the only randomness is the seeded
//! `StdRng`, every scan order is fixed (ascending ids), and every
//! comparison totally ordered.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::Graph;
use crate::partitioning::Partitioning;

/// Tuning knobs for [`partition`].
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Maximum allowed `heaviest part / ideal part` ratio. The paper
    /// configures METIS with 20% unbalance, i.e. 1.2.
    pub balance_factor: f64,
    /// Seed for the (deterministic) randomized matching and seeding.
    pub seed: u64,
    /// Stop coarsening when the graph has at most `coarsen_until * k`
    /// vertices.
    pub coarsen_until: usize,
    /// Maximum refinement passes per level.
    pub refine_passes: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { balance_factor: 1.2, seed: 1, coarsen_until: 30, refine_passes: 8 }
    }
}

impl PartitionConfig {
    /// Builder-style setter for the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the balance factor.
    ///
    /// # Panics
    ///
    /// Panics if `f < 1.0`.
    pub fn balance_factor(mut self, f: f64) -> Self {
        assert!(f >= 1.0, "balance factor must be >= 1.0");
        self.balance_factor = f;
        self
    }
}

const UNMATCHED: u32 = u32::MAX;
const FREE: u32 = u32::MAX;

/// Reusable working memory shared by every level of one `partition` run.
/// Allocated once and resized down as the hierarchy shrinks, so the
/// per-level cost is traversal, not allocation.
#[derive(Default)]
struct Scratch {
    /// Matching partner per fine vertex (contract).
    mate: Vec<u32>,
    /// Shuffled visit order (contract / grow seeds).
    order: Vec<u32>,
    /// Coarse members: `(representative, partner-or-UNMATCHED)` (contract).
    members: Vec<(u32, u32)>,
    /// Dense `coarse id -> position + 1` row-merge map; 0 = absent
    /// (contract). All-zero between calls.
    pos: Vec<u32>,
    /// Per-part connection weight of the current vertex (refine). Zeroed
    /// between vertices via `touched`.
    conn: Vec<u64>,
    /// Part ids with non-zero `conn` for the current vertex (refine).
    touched: Vec<u32>,
    /// Membership flag for the next pass's worklist (refine).
    queued: Vec<bool>,
    /// Current and next boundary worklists (refine).
    worklist: Vec<u32>,
    next_worklist: Vec<u32>,
}

/// Computes a k-way partitioning of `g` minimizing edge cut under the
/// configured balance constraint, using multilevel coarsening with
/// heavy-edge matching, greedy initial growing and boundary FM refinement.
///
/// The result is deterministic for a given `(graph, k, config)`.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn partition(g: &Graph, k: u32, cfg: &PartitionConfig) -> Partitioning {
    assert!(k > 0, "cannot partition into zero parts");
    let n = g.vertex_count();
    if k == 1 || n == 0 {
        return Partitioning::new(k.max(1), vec![0; n]);
    }
    if n <= k as usize {
        return Partitioning::new(k, (0..n as u32).map(|v| v % k).collect());
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut scratch = Scratch::default();

    // Phase 1: coarsen. `graphs[i]` is the result of `i + 1` contractions;
    // `maps[i]` maps level-`i` fine ids to `graphs[i]` coarse ids (level 0
    // borrows the caller's graph — no clone).
    let mut graphs: Vec<Graph> = Vec::new();
    let mut maps: Vec<Vec<u32>> = Vec::new();
    let stop_at = (cfg.coarsen_until * k as usize).max(64);
    loop {
        let current = graphs.last().unwrap_or(g);
        if current.vertex_count() <= stop_at {
            break;
        }
        let (coarse, map) = contract(current, &mut rng, &mut scratch);
        if coarse.vertex_count() as f64 > current.vertex_count() as f64 * 0.95 {
            break; // matching stalled (e.g. star graphs)
        }
        // Every level costs a traversal of its *edges*, so coarsening only
        // pays while edges actually collapse. On power-law graphs heavy-edge
        // matching halves the vertices but leaves hub edges intact; without
        // this stall check the hierarchy is O(log n) levels of O(E) each.
        // Stopping early is fine — grow_initial and refine handle a large
        // coarsest graph, they are just slower than on a fully coarsened
        // one (METIS stops on the same condition).
        let edges_stalled = coarse.edge_count() as f64 > current.edge_count() as f64 * 0.92;
        maps.push(map);
        graphs.push(coarse);
        if edges_stalled {
            break;
        }
    }

    // Phase 2: initial partition of the coarsest graph.
    let coarsest = graphs.last().unwrap_or(g);
    let mut assignment = grow_initial(coarsest, k, &mut rng);
    refine(coarsest, k, &mut assignment, cfg, &mut scratch);

    // Phase 3: uncoarsen and refine.
    for lvl in (0..maps.len()).rev() {
        let finer = if lvl == 0 { g } else { &graphs[lvl - 1] };
        let map = &maps[lvl];
        let mut fine_assignment = vec![0u32; finer.vertex_count()];
        for v in 0..finer.vertex_count() {
            fine_assignment[v] = assignment[map[v] as usize];
        }
        assignment = fine_assignment;
        refine(finer, k, &mut assignment, cfg, &mut scratch);
    }
    debug_assert_eq!(assignment.len(), g.vertex_count());
    Partitioning::new(k, assignment)
}

/// Warm-starts refinement from a previous assignment instead of running
/// the full multilevel pipeline — the incremental repartitioning path: on
/// a graph that drifted modestly since `prev` was computed, boundary
/// refinement recovers a near-optimal cut in a fraction of the full cost,
/// and because it starts from `prev`'s labels the result needs no
/// label re-alignment before diffing.
///
/// `prev` entries `>= k` are clamped into range (a shrunk part count
/// folds tail parts onto `k - 1`). The result is deterministic for a
/// given `(graph, k, prev, config)` — this path uses no randomness at
/// all.
///
/// # Panics
///
/// Panics if `k` is zero or `prev.len() != g.vertex_count()`.
pub fn partition_from(g: &Graph, k: u32, prev: &[u32], cfg: &PartitionConfig) -> Partitioning {
    assert!(k > 0, "cannot partition into zero parts");
    assert_eq!(prev.len(), g.vertex_count(), "previous assignment does not cover the graph");
    let n = g.vertex_count();
    if k == 1 || n == 0 {
        return Partitioning::new(k.max(1), vec![0; n]);
    }
    let mut assignment: Vec<u32> = prev.iter().map(|&p| p.min(k - 1)).collect();
    let mut scratch = Scratch::default();
    refine(g, k, &mut assignment, cfg, &mut scratch);
    Partitioning::new(k, assignment)
}

/// One coarsening step: heavy-edge matching followed by direct CSR→CSR
/// contraction. Returns the coarse graph and the fine→coarse vertex map.
fn contract(g: &Graph, rng: &mut StdRng, s: &mut Scratch) -> (Graph, Vec<u32>) {
    let n = g.vertex_count();
    s.mate.clear();
    s.mate.resize(n, UNMATCHED);
    s.order.clear();
    s.order.extend(0..n as u32);
    s.order.shuffle(rng);
    for &v in &s.order {
        if s.mate[v as usize] != UNMATCHED {
            continue;
        }
        // Heaviest unmatched neighbour; ties broken by smaller id for
        // determinism given the shuffle.
        let mut best: Option<(u64, u32)> = None;
        for &(u, w) in g.neighbors(v) {
            if s.mate[u as usize] == UNMATCHED && u != v {
                let cand = (w, u);
                best = Some(match best {
                    None => cand,
                    Some(b) => {
                        if (cand.0, Reverse(cand.1)) > (b.0, Reverse(b.1)) {
                            cand
                        } else {
                            b
                        }
                    }
                });
            }
        }
        match best {
            Some((_, u)) => {
                s.mate[v as usize] = u;
                s.mate[u as usize] = v;
            }
            None => s.mate[v as usize] = v, // singleton
        }
    }
    // Assign coarse ids (pair representative = smaller endpoint) and
    // record each coarse vertex's one or two members.
    let mut map = vec![UNMATCHED; n];
    s.members.clear();
    for v in 0..n as u32 {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let m = s.mate[v as usize];
        let c = s.members.len() as u32;
        map[v as usize] = c;
        if m != v {
            map[m as usize] = c;
            s.members.push((v, m));
        } else {
            s.members.push((v, UNMATCHED));
        }
    }
    // Build the coarse CSR row by row. Parallel edges between the same
    // coarse pair merge through `pos` (dense coarse id -> row position + 1
    // map, reset after each row by walking the row just built).
    let cn = s.members.len();
    s.pos.clear();
    s.pos.resize(cn, 0);
    let mut xadj = vec![0usize; cn + 1];
    let mut adj: Vec<(u32, u64)> = Vec::with_capacity(g.edge_count() * 2);
    let mut vwgt = vec![0u64; cn];
    for c in 0..cn {
        let row_start = adj.len();
        let (a, b) = s.members[c];
        for fv in [a, b] {
            if fv == UNMATCHED {
                continue;
            }
            vwgt[c] += g.vertex_weight(fv);
            for &(u, w) in g.neighbors(fv) {
                let cu = map[u as usize];
                if cu == c as u32 {
                    continue; // internal edge collapses
                }
                match s.pos[cu as usize] {
                    0 => {
                        adj.push((cu, w));
                        s.pos[cu as usize] = (adj.len() - row_start) as u32;
                    }
                    p => adj[row_start + p as usize - 1].1 += w,
                }
            }
        }
        for &(cu, _) in &adj[row_start..] {
            s.pos[cu as usize] = 0;
        }
        xadj[c + 1] = adj.len();
    }
    (Graph::from_csr(xadj, adj, vwgt), map)
}

/// Greedy region growing: grow each part from a random seed, preferring
/// frontier vertices strongly connected to the region, until it reaches the
/// ideal weight; leftovers go to the last part.
///
/// The frontier is a lazy-deletion max-heap on `(connection weight,
/// Reverse(id))`: growing a region pushes an entry per connection-weight
/// increase and pops skip entries whose recorded weight is stale or whose
/// vertex was already assigned. Weights only ever increase, so the first
/// up-to-date entry popped is the true maximum — the same vertex the old
/// full frontier scan selected, at `O(log n)` per update.
fn grow_initial(g: &Graph, k: u32, rng: &mut StdRng) -> Vec<u32> {
    let n = g.vertex_count();
    let mut assignment = vec![FREE; n];
    let target = g.total_vertex_weight() / k as u64;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut cursor = 0usize;

    // Current frontier connection weight per vertex, reset between parts
    // via `touched` (only vertices the frontier actually reached).
    let mut conn = vec![0u64; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut heap: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::new();

    for part in 0..k.saturating_sub(1) {
        // Find an unassigned seed.
        while cursor < n && assignment[order[cursor] as usize] != FREE {
            cursor += 1;
        }
        if cursor >= n {
            break;
        }
        let seed = order[cursor];
        let mut weight = 0u64;
        heap.clear();
        heap.push((0, Reverse(seed)));
        touched.push(seed);
        while weight < target.max(1) {
            // Best-connected frontier vertex (ties by id for determinism).
            let Some((w, Reverse(v))) = heap.pop() else {
                break;
            };
            if assignment[v as usize] != FREE || w != conn[v as usize] {
                continue; // already grabbed, or a stale (superseded) entry
            }
            assignment[v as usize] = part;
            weight += g.vertex_weight(v);
            for &(u, w) in g.neighbors(v) {
                if assignment[u as usize] == FREE {
                    if conn[u as usize] == 0 {
                        touched.push(u);
                    }
                    conn[u as usize] += w;
                    heap.push((conn[u as usize], Reverse(u)));
                }
            }
        }
        for &v in &touched {
            conn[v as usize] = 0;
        }
        touched.clear();
    }
    // Everything left joins the last part.
    for a in assignment.iter_mut() {
        if *a == FREE {
            *a = k - 1;
        }
    }
    assignment
}

/// Boundary FM-style refinement: greedily move boundary vertices with
/// positive gain (or zero gain improving balance) under the balance cap,
/// plus an explicit rebalancing sweep for overweight parts.
///
/// Passes walk a worklist instead of all `n` vertices: the first pass
/// visits the initial boundary (every vertex with an off-part neighbour),
/// later passes visit only vertices whose neighbourhood changed — each
/// moved vertex and its neighbours. Worklists are processed in ascending
/// vertex id, so the schedule is deterministic and matches the old full
/// sweep's order on the vertices both visit.
fn refine(g: &Graph, k: u32, assignment: &mut [u32], cfg: &PartitionConfig, s: &mut Scratch) {
    let n = g.vertex_count();
    let ideal = g.total_vertex_weight() as f64 / k as f64;
    let cap = (ideal * cfg.balance_factor).ceil() as u64;
    let mut weights = vec![0u64; k as usize];
    for v in 0..n {
        weights[assignment[v] as usize] += g.vertex_weight(v as u32);
    }

    s.conn.clear();
    s.conn.resize(k as usize, 0);
    s.touched.clear();
    s.queued.clear();
    s.queued.resize(n, false);
    s.worklist.clear();
    s.next_worklist.clear();
    // Initial worklist: the boundary, in ascending id order.
    for v in 0..n as u32 {
        let own = assignment[v as usize];
        if g.neighbors(v).iter().any(|&(u, _)| assignment[u as usize] != own) {
            s.worklist.push(v);
        }
    }

    for _pass in 0..cfg.refine_passes {
        if s.worklist.is_empty() {
            break;
        }
        let mut moves = 0usize;
        for i in 0..s.worklist.len() {
            let v = s.worklist[i];
            let own = assignment[v as usize];
            // Connection weight to each adjacent part, accumulated in the
            // dense k-sized buffer. The best-target scan below visits
            // touched parts in ascending part id — the same order (and so
            // the same equal-gain tie-break) as the old BTreeMap walk;
            // iterating in hash order would pick a different part per
            // process and diverge replica plans.
            let mut own_conn = 0u64;
            for &(u, w) in g.neighbors(v) {
                let pu = assignment[u as usize];
                if pu == own {
                    own_conn += w;
                } else {
                    if s.conn[pu as usize] == 0 {
                        s.touched.push(pu);
                    }
                    s.conn[pu as usize] += w;
                }
            }
            if s.touched.is_empty() {
                continue; // interior vertex
            }
            s.touched.sort_unstable();
            let vw = g.vertex_weight(v);
            // Best target by (gain, lighter part, lower id): strictly
            // higher gain wins; equal gain prefers the lighter target
            // part; full ties resolve to the lower part id via the
            // ascending scan.
            let mut best: Option<(i64, u64, u32)> = None;
            for &p in &s.touched {
                let w_to = s.conn[p as usize];
                s.conn[p as usize] = 0;
                if weights[p as usize] + vw > cap {
                    continue;
                }
                let gain = w_to as i64 - own_conn as i64;
                let better_balance = weights[p as usize] + vw < weights[own as usize];
                if gain > 0 || (gain == 0 && better_balance) {
                    let cand = (gain, weights[p as usize], p);
                    best = Some(match best {
                        None => cand,
                        Some(b) if cand.0 > b.0 || (cand.0 == b.0 && cand.1 < b.1) => cand,
                        Some(b) => b,
                    });
                }
            }
            s.touched.clear();
            if let Some((_, _, p)) = best {
                weights[own as usize] -= vw;
                weights[p as usize] += vw;
                assignment[v as usize] = p;
                moves += 1;
                // The move changed the neighbourhood: revisit v and its
                // neighbours next pass.
                if !s.queued[v as usize] {
                    s.queued[v as usize] = true;
                    s.next_worklist.push(v);
                }
                for &(u, _) in g.neighbors(v) {
                    if !s.queued[u as usize] {
                        s.queued[u as usize] = true;
                        s.next_worklist.push(u);
                    }
                }
            }
        }
        if moves == 0 {
            break;
        }
        std::mem::swap(&mut s.worklist, &mut s.next_worklist);
        s.next_worklist.clear();
        s.worklist.sort_unstable();
        for &v in &s.worklist {
            s.queued[v as usize] = false;
        }
    }

    // Rebalance: for each overweight part, move its least-attached
    // vertices to the lightest parts until it fits under the cap. One
    // sorted sweep per part keeps this O(n log n) rather than O(n²).
    for over in 0..k {
        if weights[over as usize] <= cap {
            continue;
        }
        // Candidates sorted by how much cut weight the move would cost.
        let mut candidates: Vec<(i64, u32)> = (0..n as u32)
            .filter(|&v| assignment[v as usize] == over)
            .map(|v| {
                let own_conn: i64 = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&(u, _)| assignment[u as usize] == over)
                    .map(|&(_, w)| w as i64)
                    .sum();
                (own_conn, v)
            })
            .collect();
        candidates.sort_unstable();
        for (_, v) in candidates {
            if weights[over as usize] <= cap {
                break;
            }
            let vw = g.vertex_weight(v);
            let target = (0..k)
                .filter(|&p| p != over)
                .min_by_key(|&p| weights[p as usize])
                .expect("k >= 2 when rebalancing");
            if weights[target as usize] + vw >= weights[over as usize] {
                continue; // move would not improve balance
            }
            weights[over as usize] -= vw;
            weights[target as usize] += vw;
            assignment[v as usize] = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::partitioning::Partitioning;

    /// `blocks` cliques of `size` vertices, ring-connected by light edges.
    fn clustered(blocks: u32, size: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for c in 0..blocks {
            let base = c * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    b.add_edge(base + i, base + j, 100);
                }
            }
            let next = ((c + 1) % blocks) * size;
            b.add_edge(base, next, 1);
        }
        b.build()
    }

    #[test]
    fn finds_natural_clusters() {
        let g = clustered(4, 8);
        let p = partition(&g, 4, &PartitionConfig::default());
        // The 4 rings of cliques should be split exactly on the light ring
        // edges: cut = 4 (one light edge per adjacent block pair).
        assert_eq!(p.edge_cut(&g), 4);
        assert!(p.balance(&g) <= 1.2 + 1e-9);
        // Each clique is monochromatic.
        for c in 0..4u32 {
            let part = p.part_of(c * 8);
            for i in 0..8 {
                assert_eq!(p.part_of(c * 8 + i), part, "clique {c} split");
            }
        }
    }

    #[test]
    fn respects_balance_on_uniform_graph() {
        // A 2D grid, k=3.
        let mut b = GraphBuilder::new();
        let side = 12u32;
        for x in 0..side {
            for y in 0..side {
                let v = x * side + y;
                if x + 1 < side {
                    b.add_edge(v, (x + 1) * side + y, 1);
                }
                if y + 1 < side {
                    b.add_edge(v, x * side + y + 1, 1);
                }
            }
        }
        let g = b.build();
        let p = partition(&g, 3, &PartitionConfig::default());
        assert!(p.balance(&g) <= 1.2 + 1e-9, "balance = {}", p.balance(&g));
        // A reasonable cut: far below the total edge weight.
        assert!(p.edge_cut(&g) < g.total_edge_weight() / 4);
    }

    #[test]
    fn k_equals_one_puts_everything_together() {
        let g = clustered(2, 4);
        let p = partition(&g, 1, &PartitionConfig::default());
        assert!(p.assignment().iter().all(|&x| x == 0));
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn tiny_graph_smaller_than_k() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1);
        let g = b.build();
        let p = partition(&g, 4, &PartitionConfig::default());
        assert_eq!(p.assignment().len(), 2);
        assert!(p.assignment().iter().all(|&x| x < 4));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = clustered(3, 10);
        let cfg = PartitionConfig::default().seed(7);
        let a = partition(&g, 3, &cfg);
        let b = partition(&g, 3, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        // Two heavy vertices and many light ones: the heavies should end
        // up in different parts.
        let mut b = GraphBuilder::new();
        for v in 2..20u32 {
            b.add_edge(0, v, 1);
            b.add_edge(1, v, 1);
        }
        b.set_vertex_weight(0, 100);
        b.set_vertex_weight(1, 100);
        let g = b.build();
        let p = partition(&g, 2, &PartitionConfig::default());
        assert_ne!(p.part_of(0), p.part_of(1), "heavy vertices must split");
        assert!(p.balance(&g) <= 1.25, "balance = {}", p.balance(&g));
    }

    #[test]
    fn empty_graph_partitions_trivially() {
        let g = GraphBuilder::new().build();
        let p = partition(&g, 4, &PartitionConfig::default());
        assert!(p.assignment().is_empty());
    }

    #[test]
    fn improves_over_random_assignment() {
        use crate::baseline::random_partition;
        let g = clustered(4, 12);
        let optimized = partition(&g, 4, &PartitionConfig::default());
        let random = random_partition(g.vertex_count(), 4, 99);
        assert!(
            optimized.edge_cut(&g) * 10 < random.edge_cut(&g),
            "multilevel ({}) should beat random ({}) by >10x on clustered graphs",
            optimized.edge_cut(&g),
            random.edge_cut(&g)
        );
        let _ = Partitioning::new(4, optimized.assignment().to_vec());
    }

    #[test]
    fn equal_gain_moves_prefer_the_lighter_part() {
        // Vertex 0 sits between part 1 and part 2 with identical
        // connection weight (gain +5 to either), while heavy internal
        // edges pin every anchor vertex in place. Part 2 is lighter, so
        // the (gain, lighter part, id) order must send vertex 0 there —
        // the first-wins ascending scan alone would pick part 1.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 5); // toward part 1
        b.add_edge(0, 3, 5); // toward part 2
        b.add_edge(1, 2, 100); // part 1 anchor pair
        b.add_edge(3, 4, 100); // part 2 anchor pair
        b.add_edge(5, 6, 100); // extra part 1 ballast
        b.set_vertex_weight(0, 1);
        for v in [1u32, 2, 5, 6] {
            b.set_vertex_weight(v, 4); // part 1 weighs 16
        }
        for v in [3u32, 4] {
            b.set_vertex_weight(v, 2); // part 2 weighs 4
        }
        let g = b.build();
        let prev = vec![0u32, 1, 1, 2, 2, 1, 1];
        let cfg = PartitionConfig { balance_factor: 3.0, ..PartitionConfig::default() };
        let p = partition_from(&g, 3, &prev, &cfg);
        assert_eq!(p.part_of(0), 2, "equal gain must break toward the lighter part");
    }

    #[test]
    fn partition_from_is_deterministic_and_preserves_balance() {
        let g = clustered(4, 8);
        let full = partition(&g, 4, &PartitionConfig::default());
        // Perturb: push the first clique's vertices to the wrong parts.
        let mut prev = full.assignment().to_vec();
        for (slot, p) in prev.iter_mut().take(6).zip([1u32, 2, 3, 1, 2, 3]) {
            *slot = p;
        }
        let cfg = PartitionConfig::default();
        let a = partition_from(&g, 4, &prev, &cfg);
        let b = partition_from(&g, 4, &prev, &cfg);
        assert_eq!(a, b, "warm start must be deterministic");
        assert!(a.balance(&g) <= 1.2 + 1e-9, "balance = {}", a.balance(&g));
    }

    #[test]
    fn warm_start_tracks_full_quality_on_a_mutated_graph() {
        // Partition the clustered graph, then mutate it the way a workload
        // shifts: strengthen one inter-block seam and add fresh intra-block
        // edges. The warm-started cut must stay within 1.1x of a fresh
        // full multilevel run.
        let g = clustered(4, 8);
        let before = partition(&g, 4, &PartitionConfig::default());
        let mut b = GraphBuilder::new();
        for c in 0..4u32 {
            let base = c * 8;
            for i in 0..8 {
                for j in (i + 1)..8 {
                    b.add_edge(base + i, base + j, 100);
                }
            }
            b.add_edge(base, ((c + 1) % 4) * 8, 1);
        }
        b.add_edge(3, 11, 3); // the seam that shifted
        b.add_edge(17, 29, 2);
        let mutated = b.build();
        let cfg = PartitionConfig::default();
        let warm = partition_from(&mutated, 4, before.assignment(), &cfg);
        let full = partition(&mutated, 4, &cfg);
        assert!(
            warm.edge_cut(&mutated) as f64 <= 1.1 * full.edge_cut(&mutated) as f64,
            "warm cut {} vs full cut {}",
            warm.edge_cut(&mutated),
            full.edge_cut(&mutated)
        );
        assert!(warm.balance(&mutated) <= 1.2 + 1e-9);
    }

    #[test]
    fn partition_from_clamps_out_of_range_parts() {
        let g = clustered(2, 4);
        let prev = vec![7u32; g.vertex_count()]; // all out of range for k=2
        let p = partition_from(&g, 2, &prev, &PartitionConfig::default());
        assert!(p.assignment().iter().all(|&x| x < 2));
    }

    #[test]
    fn partition_from_on_empty_and_k1() {
        let g = GraphBuilder::new().build();
        let p = partition_from(&g, 3, &[], &PartitionConfig::default());
        assert!(p.assignment().is_empty());
        let g = clustered(2, 4);
        let prev = vec![1u32; g.vertex_count()];
        let p = partition_from(&g, 1, &prev, &PartitionConfig::default());
        assert!(p.assignment().iter().all(|&x| x == 0));
    }
}
