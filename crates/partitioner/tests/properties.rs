//! Property tests for the multilevel partitioner's invariants.

use dynastar_partitioner::{
    align_labels, hash_partition, partition, GraphBuilder, PartitionConfig, Partitioning,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random graph from an edge list (vertex space `0..n`).
fn random_graph(n: u32, edges: &[(u32, u32, u64)]) -> dynastar_partitioner::Graph {
    let mut b = GraphBuilder::new();
    if n > 0 {
        b.add_vertex(n - 1);
    }
    for &(u, v, w) in edges {
        b.add_edge(u % n.max(1), v % n.max(1), w);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every vertex is assigned to a valid part.
    #[test]
    fn every_vertex_is_placed(
        n in 1u32..200,
        k in 1u32..8,
        edges in prop::collection::vec((0u32..200, 0u32..200, 1u64..10), 0..400),
        seed in 0u64..1000,
    ) {
        let g = random_graph(n, &edges);
        let p = partition(&g, k, &PartitionConfig::default().seed(seed));
        prop_assert_eq!(p.assignment().len(), g.vertex_count());
        prop_assert!(p.assignment().iter().all(|&a| a < k));
    }

    /// The balance constraint holds whenever it is satisfiable (it always
    /// is with unit vertex weights and n >= k).
    #[test]
    fn balance_bound_holds_for_unit_weights(
        n in 8u32..150,
        k in 2u32..6,
        edges in prop::collection::vec((0u32..150, 0u32..150, 1u64..10), 0..300),
        seed in 0u64..1000,
    ) {
        prop_assume!(n >= k * 2);
        let g = random_graph(n, &edges);
        let p = partition(&g, k, &PartitionConfig::default().seed(seed));
        // Unit weights: cap is ceil(1.2 * n / k); one vertex of slack for
        // rounding at tiny sizes.
        let cap = (1.2f64 * n as f64 / k as f64).ceil() as u64 + 1;
        for w in p.part_weights(&g) {
            prop_assert!(w <= cap, "part weight {} exceeds cap {}", w, cap);
        }
    }

    /// The optimizer never does worse than the worst case: its cut is at
    /// most the total edge weight, and for k=1 it is associated zero.
    #[test]
    fn cut_is_bounded(
        n in 1u32..100,
        edges in prop::collection::vec((0u32..100, 0u32..100, 1u64..10), 0..200),
        seed in 0u64..100,
    ) {
        let g = random_graph(n, &edges);
        let p2 = partition(&g, 2, &PartitionConfig::default().seed(seed));
        prop_assert!(p2.edge_cut(&g) <= g.total_edge_weight());
        let p1 = partition(&g, 1, &PartitionConfig::default().seed(seed));
        prop_assert_eq!(p1.edge_cut(&g), 0);
    }

    /// Label alignment is a pure relabeling: the grouping (and thus any
    /// graph's edge cut) is unchanged, co-membership of vertex pairs is
    /// preserved, and a pure label permutation of `prev` aligns to zero
    /// moves. (Greedy matching is not always optimal against arbitrary
    /// assignments, so we do not assert global minimality.)
    #[test]
    fn align_labels_is_a_pure_relabeling(
        n in 4usize..120,
        k in 2u32..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let prev = Partitioning::new(k, (0..n).map(|_| rng.gen_range(0..k)).collect());
        let new = Partitioning::new(k, (0..n).map(|_| rng.gen_range(0..k)).collect());
        let g = random_graph(n as u32, &[]);
        let aligned = align_labels(&prev, &new);
        prop_assert_eq!(aligned.edge_cut(&g), new.edge_cut(&g));
        // Co-membership preserved for a sample of pairs.
        for i in 0..n.min(20) {
            for j in (i + 1)..n.min(20) {
                let together_new = new.part_of(i as u32) == new.part_of(j as u32);
                let together_aligned = aligned.part_of(i as u32) == aligned.part_of(j as u32);
                prop_assert_eq!(together_new, together_aligned);
            }
        }
        // A pure permutation of prev's labels aligns back exactly.
        let perm: Vec<u32> = {
            let mut p: Vec<u32> = (0..k).collect();
            use rand::seq::SliceRandom;
            p.shuffle(&mut rng);
            p
        };
        let permuted = Partitioning::new(
            k,
            prev.assignment().iter().map(|&a| perm[a as usize]).collect(),
        );
        let realigned = align_labels(&prev, &permuted);
        prop_assert_eq!(realigned.moved_from(&prev), 0);
    }

    /// Hash partitioning is perfectly count-balanced (parts differ by at
    /// most one vertex).
    #[test]
    fn hash_partition_count_balance(n in 1usize..500, k in 1u32..10) {
        let p = hash_partition(n, k);
        let mut counts = vec![0u64; k as usize];
        for &a in p.assignment() {
            counts[a as usize] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }
}
