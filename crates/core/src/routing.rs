//! Routing decisions: which partitions a command involves and which one
//! executes it.
//!
//! The same pure function runs at the oracle (authoritative map) and at
//! clients (cached map) so that both derive identical routes from identical
//! location facts — the determinism Algorithm 2/3's `target()` requires.

use std::collections::BTreeMap;

use crate::command::{Application, Command, CommandKind, LocKey, PartitionId, VarId};

/// The oracle shard whose slice of the location map owns `key`.
///
/// Every process derives slice ownership from this pure function — shard
/// cores to report their owned slice, partitions to address hint batches,
/// clients to route create/delete queries — so a deterministic spread
/// matters: the multiply-shift mix decorrelates slice ownership from the
/// dense low-id keys the workloads use (a plain modulus would alias slice
/// stripes with round-robin placement stripes).
pub fn shard_of(key: LocKey, shards: u32) -> u32 {
    if shards <= 1 {
        return 0;
    }
    let h = key.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) % shards as u64) as u32
}

/// The oracle shard a client's `Exec` query for `cmd` goes to on the
/// given dispatch attempt.
///
/// Create/delete queries always go to the owner shard of their key — it
/// is the single authority for the exists/absent decision. Access queries
/// can be answered by *any* shard (all shards replicate the full map, see
/// DESIGN.md §7), so they spread by an order-independent mix over the
/// command's keys; the attempt rotates the choice so retries — including
/// `Retry` referrals from a shard that cannot authoritatively reject a
/// missing key outside its slice — reach the owner within `shards`
/// attempts.
pub fn exec_shard<A: Application>(cmd: &Command<A>, attempt: u32, shards: u32) -> u32 {
    if shards <= 1 {
        return 0;
    }
    match &cmd.kind {
        CommandKind::CreateKey { key, .. } | CommandKind::DeleteKey { key } => {
            shard_of(*key, shards)
        }
        CommandKind::Access { .. } => {
            let mut mix = 0u64;
            for k in cmd.keys() {
                mix ^= k.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            (((mix >> 32).wrapping_add(attempt as u64)) % shards as u64) as u32
        }
    }
}

/// A fully resolved routing decision for an access command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// For every accessed variable, the partition expected to hold it.
    pub expected: Vec<(VarId, PartitionId)>,
    /// The distinct involved partitions, sorted.
    pub dests: Vec<PartitionId>,
    /// The partition chosen to execute the command: the one holding the
    /// most accessed variables, ties broken by the lowest partition id
    /// (the paper's deterministic `target()`).
    pub target: PartitionId,
}

impl Route {
    /// Whether the command involves more than one partition.
    pub fn is_multi_partition(&self) -> bool {
        self.dests.len() > 1
    }
}

/// Computes the route of `cmd` under the location facts in `lookup`.
///
/// Returns `None` if any accessed key has no known location (the caller
/// must consult the oracle / report `nok`).
pub fn compute_route<A: Application>(
    cmd: &Command<A>,
    mut lookup: impl FnMut(LocKey) -> Option<PartitionId>,
) -> Option<Route> {
    let vars = cmd.vars();
    let mut expected = Vec::with_capacity(vars.len());
    let mut var_count: BTreeMap<PartitionId, usize> = BTreeMap::new();
    for v in vars {
        let p = lookup(A::locality(v))?;
        expected.push((v, p));
        *var_count.entry(p).or_insert(0) += 1;
    }
    let mut dests: Vec<PartitionId> = var_count.keys().copied().collect();
    dests.sort_unstable();
    // Most variables wins; BTreeMap iteration order makes the lowest id win
    // ties because `>` is strict.
    let target =
        var_count.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0))).map(|(&p, _)| p)?;
    Some(Route { expected, dests, target })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynastar_amcast::MsgId;
    use dynastar_runtime::NodeId;

    struct App;
    impl Application for App {
        type Op = ();
        type Value = u64;
        type Reply = ();
        fn locality(var: VarId) -> LocKey {
            LocKey(var.0)
        }
        fn execute(_: &(), _: &mut std::collections::BTreeMap<VarId, Option<u64>>) {}
    }

    fn access(vars: Vec<u64>) -> Command<App> {
        Command {
            id: MsgId::new(1, 0),
            client: NodeId::from_raw(0),
            kind: crate::command::CommandKind::Access {
                op: (),
                vars: vars.into_iter().map(VarId).collect(),
            },
        }
    }

    /// Locations: var v lives in partition v % 3.
    fn mod3(key: LocKey) -> Option<PartitionId> {
        Some(PartitionId((key.0 % 3) as u32))
    }

    #[test]
    fn single_partition_route() {
        let r = compute_route(&access(vec![0, 3, 6]), mod3).unwrap();
        assert_eq!(r.dests, vec![PartitionId(0)]);
        assert_eq!(r.target, PartitionId(0));
        assert!(!r.is_multi_partition());
    }

    #[test]
    fn target_is_partition_with_most_vars() {
        let r = compute_route(&access(vec![0, 3, 1]), mod3).unwrap();
        assert_eq!(r.dests, vec![PartitionId(0), PartitionId(1)]);
        assert_eq!(r.target, PartitionId(0));
        assert!(r.is_multi_partition());
    }

    #[test]
    fn ties_break_to_lowest_partition_id() {
        let r = compute_route(&access(vec![1, 2]), mod3).unwrap();
        assert_eq!(r.target, PartitionId(1));
        let r = compute_route(&access(vec![2, 1]), mod3).unwrap();
        assert_eq!(r.target, PartitionId(1), "order of vars must not matter");
    }

    #[test]
    fn unknown_key_yields_none() {
        let r = compute_route(&access(vec![0, 5]), |k| if k.0 == 5 { None } else { mod3(k) });
        assert!(r.is_none());
    }

    #[test]
    fn expected_lists_every_var() {
        let r = compute_route(&access(vec![4, 2, 4]), mod3).unwrap();
        assert_eq!(
            r.expected,
            vec![
                (VarId(4), PartitionId(1)),
                (VarId(2), PartitionId(2)),
                (VarId(4), PartitionId(1)),
            ]
        );
    }
}
