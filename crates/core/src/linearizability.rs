//! A Wing–Gong linearizability checker for test histories.
//!
//! DynaStar's correctness criterion (§2.3) is linearizability. Integration
//! tests record per-command `(invoke, response, op, return)` tuples from
//! concurrent simulated clients and verify that some legal sequential order
//! exists that respects real-time precedence.
//!
//! The checker does exhaustive search with memoization over
//! `(linearized-set, state)`, which is exponential in the worst case but
//! fast for the test-sized histories (≤ 64 operations) it accepts.

use std::hash::Hash;

use dynastar_runtime::hash::FastHashSet;
use dynastar_runtime::SimTime;

/// A sequential specification of the service.
pub trait Spec {
    /// Abstract state.
    type State: Clone + Eq + Hash;
    /// Operations.
    type Op: Clone;
    /// Operation results.
    type Ret: PartialEq;

    /// Applies `op` to `state`, returning the next state and the result.
    fn apply(state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// One completed operation in a concurrent history.
#[derive(Debug, Clone)]
pub struct OpRecord<O, R> {
    /// When the client issued the operation.
    pub invoke: SimTime,
    /// When the client observed the response.
    pub response: SimTime,
    /// The operation.
    pub op: O,
    /// The observed result.
    pub ret: R,
}

/// Checks whether `history` is linearizable with respect to `S` starting
/// from `initial`.
///
/// # Panics
///
/// Panics if the history has more than 64 operations (the search uses a
/// bitmask; keep test histories small).
pub fn check<S: Spec>(history: &[OpRecord<S::Op, S::Ret>], initial: S::State) -> bool {
    assert!(history.len() <= 64, "checker supports at most 64 operations");
    if history.is_empty() {
        return true;
    }
    let n = history.len();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut seen: FastHashSet<(u64, S::State)> = FastHashSet::default();
    dfs::<S>(history, 0, &initial, full, &mut seen)
}

fn dfs<S: Spec>(
    history: &[OpRecord<S::Op, S::Ret>],
    done: u64,
    state: &S::State,
    full: u64,
    seen: &mut FastHashSet<(u64, S::State)>,
) -> bool {
    if done == full {
        return true;
    }
    if !seen.insert((done, state.clone())) {
        return false;
    }
    // An op is a candidate if it is not yet linearized and no other
    // unlinearized op finished before it started (real-time order).
    let min_response = history
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, r)| r.response)
        .min()
        .expect("not all done");
    for (i, rec) in history.iter().enumerate() {
        if done & (1 << i) != 0 || rec.invoke > min_response {
            continue;
        }
        let (next, ret) = S::apply(state, &rec.op);
        if ret == rec.ret && dfs::<S>(history, done | (1 << i), &next, full, seen) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single register with read/write ops.
    struct Register;
    #[derive(Debug, Clone)]
    enum RegOp {
        Read,
        Write(u64),
    }
    impl Spec for Register {
        type State = u64;
        type Op = RegOp;
        type Ret = u64;
        fn apply(state: &u64, op: &RegOp) -> (u64, u64) {
            match op {
                RegOp::Read => (*state, *state),
                RegOp::Write(v) => (*v, *v),
            }
        }
    }

    fn rec(invoke: u64, response: u64, op: RegOp, ret: u64) -> OpRecord<RegOp, u64> {
        OpRecord {
            invoke: SimTime::from_micros(invoke),
            response: SimTime::from_micros(response),
            op,
            ret,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check::<Register>(&[], 0));
    }

    #[test]
    fn sequential_history_checks() {
        let h = vec![
            rec(0, 1, RegOp::Write(5), 5),
            rec(2, 3, RegOp::Read, 5),
            rec(4, 5, RegOp::Write(7), 7),
            rec(6, 7, RegOp::Read, 7),
        ];
        assert!(check::<Register>(&h, 0));
    }

    #[test]
    fn stale_read_after_write_is_rejected() {
        let h = vec![
            rec(0, 1, RegOp::Write(5), 5),
            // Read starts strictly after the write completed but returns
            // the old value: not linearizable.
            rec(2, 3, RegOp::Read, 0),
        ];
        assert!(!check::<Register>(&h, 0));
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        // Write(5) overlaps a read; the read may return 0 or 5.
        for ret in [0u64, 5] {
            let h = vec![rec(0, 10, RegOp::Write(5), 5), rec(1, 9, RegOp::Read, ret)];
            assert!(check::<Register>(&h, 0), "ret={ret}");
        }
        // But never anything else.
        let h = vec![rec(0, 10, RegOp::Write(5), 5), rec(1, 9, RegOp::Read, 3)];
        assert!(!check::<Register>(&h, 0));
    }

    #[test]
    fn real_time_order_must_hold_between_writes() {
        // Two sequential writes, then a read returning the first value:
        // the second write must be ordered after the first, so 5 is stale.
        let h = vec![
            rec(0, 1, RegOp::Write(5), 5),
            rec(2, 3, RegOp::Write(9), 9),
            rec(4, 5, RegOp::Read, 5),
        ];
        assert!(!check::<Register>(&h, 0));
    }

    #[test]
    fn interleaving_search_finds_valid_order() {
        // Three overlapping ops where only one interleaving works.
        let h = vec![
            rec(0, 10, RegOp::Write(1), 1),
            rec(0, 10, RegOp::Write(2), 2),
            rec(0, 10, RegOp::Read, 1),
        ];
        // Read=1 works if order is Write(2), Write(1), Read (or W1, Read, W2).
        assert!(check::<Register>(&h, 0));
    }
}
