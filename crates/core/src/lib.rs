//! # dynastar-core
//!
//! The DynaStar protocol: scalable state machine replication with
//! *optimized dynamic partitioning*, reproducing Le et al. (ICDCS 2019).
//!
//! ## Architecture
//!
//! The service state is a set of *variables* ([`VarId`]) grouped into
//! *locality keys* ([`LocKey`], the paper's workload-graph vertices — a
//! TPC-C district, a Chirper user). Keys are mapped to *partitions*, each a
//! Paxos-replicated server group; a replicated *location oracle* owns the
//! key→partition map and the workload graph.
//!
//! * Clients with warm [location caches](client::ClientCore) multicast
//!   commands straight to the involved partitions; cold or stale clients go
//!   through the oracle and receive a *prophecy*.
//! * Single-partition commands execute locally. For multi-partition
//!   commands the chosen *target* partition borrows the needed variables,
//!   executes alone, replies, and returns the variables (the paper's key
//!   difference from S-SMR, which executes everywhere).
//! * The oracle accumulates workload hints, periodically recomputes an
//!   optimized partitioning with a multilevel graph partitioner
//!   ([`dynastar_partitioner`], standing in for METIS) and multicasts the
//!   plan; partitions migrate keys without blocking execution.
//!
//! All ordered communication uses genuine atomic multicast
//! ([`dynastar_amcast`]); executions are linearizable (checked in tests
//! with a [linearizability checker](linearizability)).
//!
//! Three execution modes share this machinery (see [`Mode`]):
//! DynaStar itself, the static **S-SMR**/S-SMR\* baseline, and the naive
//! dynamic **DS-SMR** baseline.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` at the repository root, or
//! [`cluster::ClusterBuilder`] for the entry point.

#![forbid(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod command;
pub mod linearizability;
pub mod metric_names;
pub mod migration;
pub mod oracle;
pub mod payload;
pub mod routing;
pub mod server;
pub mod threaded;

pub use client::{ClientCore, ClientEvent, Workload};
pub use cluster::{Cluster, ClusterBuilder, ClusterConfig, LocationView};
pub use command::{
    AccessSets, Application, Command, CommandKind, LocKey, Mode, PartitionId, VarId,
};
pub use dynastar_paxos::BatchConfig;
pub use payload::{Direct, OracleDest, Payload};
pub use routing::{compute_route, exec_shard, shard_of, Route};
pub use server::{ExecConfig, ServerConfig};
