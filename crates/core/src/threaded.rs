//! A real-thread deployment of the protocol cores.
//!
//! Everything else in this workspace runs on the deterministic simulator,
//! but the protocol state machines ([`ServerCore`], [`OracleCore`],
//! [`ClientCore`], [`McastMember`]) are sans-io, so they run unchanged on
//! any transport. This module wires them to OS threads and crossbeam
//! channels: one thread per replica, lossless FIFO channels between them
//! (what TCP would provide), wall-clock timers.
//!
//! This is the deployment a downstream user embeds in a real binary; the
//! simulator remains the tool for experiments (deterministic, fault
//! injection, simulated time). The integration test at the bottom runs a
//! full cluster — Paxos, atomic multicast, oracle, borrowing — on real
//! threads.

// detlint::allow-file(D001): this module IS the wall-clock deployment — real threads and real timers by design; determinism is the simulator's job, not this file's
// detlint::allow-file(W001, W002, W003): this module is the one sanctioned weld between the sans-io cores and the host OS (threads, channels, wall clocks); every weld below is inventoried in results/weld_map.json as the sans-IO work-list, and the CI ratchet keeps the count from growing

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dynastar_runtime::hash::FastHashMap;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dynastar_amcast::{Delivery, GroupId, McastMember, McastWire, MemberId, MsgId, Topology};
use dynastar_runtime::{Metrics, NodeId, SimTime};
use parking_lot::Mutex;

use crate::client::{ClientCore, ClientEvent};
use crate::command::{Application, CommandKind, LocKey, Mode, PartitionId, VarId};
use crate::oracle::{OracleConfig, OracleCore};
use crate::payload::{Destination, Direct, Effect, OracleDest, Payload};
use crate::server::{ServerConfig, ServerCore};

/// Messages between threads: multicast wires or direct protocol messages.
enum Wire<A: Application> {
    Mcast(McastWire<Arc<Payload<A>>>),
    Direct(Direct<A>),
}

/// Address book: a sender for every replica thread and every client.
/// Clients register after the replica threads start, so their map is
/// interior-mutable.
struct Fabric<A: Application> {
    replicas: FastHashMap<MemberId, Sender<Wire<A>>>,
    clients: Mutex<FastHashMap<NodeId, Sender<Direct<A>>>>,
    groups: Vec<Vec<MemberId>>,
    oracle_group: GroupId,
    /// Messages dropped because the addressee was unknown or its channel
    /// was disconnected (thread exited). A lossy fabric is the contract —
    /// the protocol retries — but the count must be observable so an
    /// operator can tell "peer shut down" from "protocol stalled".
    dropped_sends: AtomicU64,
}

impl<A: Application> Fabric<A> {
    fn group_members(&self, g: GroupId) -> &[MemberId] {
        self.groups.get(g.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Routes `wire` to `m`, counting (never panicking on) unknown
    /// members and disconnected channels.
    fn send_replica(&self, m: MemberId, wire: Wire<A>) {
        match self.replicas.get(&m) {
            Some(tx) if tx.send(wire).is_ok() => {}
            _ => {
                self.dropped_sends.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn send_direct(&self, dest: Destination, msg: Direct<A>) {
        match dest {
            Destination::Partition(p) => {
                for &m in self.group_members(GroupId(p.0)) {
                    self.send_replica(m, Wire::Direct(msg.clone()));
                }
            }
            Destination::Oracle => {
                for &m in self.group_members(self.oracle_group) {
                    self.send_replica(m, Wire::Direct(msg.clone()));
                }
            }
            Destination::Client(node) => {
                let tx = self.clients.lock().get(&node).cloned();
                match tx {
                    Some(tx) if tx.send(msg).is_ok() => {}
                    _ => {
                        self.dropped_sends.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    fn submit(&self, mid: MsgId, groups: Vec<GroupId>, payload: Arc<Payload<A>>) {
        for &g in &groups {
            for &m in self.group_members(g) {
                self.send_replica(
                    m,
                    Wire::Mcast(McastWire::Submit {
                        mid,
                        dests: groups.clone(),
                        payload: Arc::clone(&payload),
                    }),
                );
            }
        }
    }
}

/// Which protocol core a replica thread hosts.
// One per thread (never collected in bulk), so variant size skew is moot.
#[allow(clippy::large_enum_variant)]
enum Role<A: Application> {
    Partition(ServerCore<A>),
    Oracle(OracleCore<A>),
}

/// Per-thread replica driver.
struct ReplicaThread<A: Application> {
    member: McastMember<Arc<Payload<A>>>,
    role: Role<A>,
    rx: Receiver<Wire<A>>,
    fabric: Arc<Fabric<A>>,
    metrics: Arc<Mutex<Metrics>>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    /// Pending oracle plan publication (deadline, precomputed effect).
    plan_due: Option<Instant>,
}

impl<A: Application> ReplicaThread<A> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn run(mut self) {
        let tick = Duration::from_millis(1);
        let mut next_tick = Instant::now() + tick;
        while !self.stop.load(Ordering::Relaxed) {
            let timeout = next_tick.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(timeout) {
                Ok(Wire::Mcast(wire)) => {
                    let out = self.member.on_message(wire);
                    self.absorb(out);
                }
                Ok(Wire::Direct(d)) => {
                    let now = self.now();
                    let effects = {
                        let mut m = self.metrics.lock();
                        match &mut self.role {
                            Role::Partition(c) => c.on_direct(d, now, &mut m),
                            Role::Oracle(c) => c.on_direct(d, now, &mut m),
                        }
                    };
                    self.apply(effects);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if Instant::now() >= next_tick {
                next_tick += tick;
                let out = self.member.tick();
                self.absorb(out);
                let now = self.now();
                let effects = {
                    let mut m = self.metrics.lock();
                    match &mut self.role {
                        Role::Oracle(c) => c.on_tick(now, &mut m),
                        Role::Partition(_) => Vec::new(),
                    }
                };
                self.apply(effects);
                if self.plan_due.map(|d| Instant::now() >= d).unwrap_or(false) {
                    self.plan_due = None;
                    let now = self.now();
                    let effects = {
                        let mut m = self.metrics.lock();
                        match &mut self.role {
                            Role::Oracle(c) => c.on_plan_timer(now, &mut m),
                            Role::Partition(_) => Vec::new(),
                        }
                    };
                    self.apply(effects);
                }
            }
        }
    }

    fn absorb(&mut self, out: dynastar_amcast::McastOutput<Arc<Payload<A>>>) {
        for (to, wire) in out.outgoing {
            self.fabric.send_replica(to, Wire::Mcast(wire));
        }
        let mut deliveries: std::collections::VecDeque<Delivery<Arc<Payload<A>>>> =
            out.delivered.into();
        while let Some(d) = deliveries.pop_front() {
            let payload = Arc::try_unwrap(d.payload).unwrap_or_else(|a| (*a).clone());
            let now = self.now();
            let effects = {
                let mut m = self.metrics.lock();
                match &mut self.role {
                    Role::Partition(c) => c.on_deliver(payload, now, &mut m),
                    Role::Oracle(c) => c.on_deliver(payload, now, &mut m),
                }
            };
            for eff in effects {
                match eff {
                    Effect::Multicast { mid, partitions, oracle, payload } => {
                        let groups = resolve_groups(&self.fabric, &partitions, oracle);
                        let out = self.member.submit(mid, groups, Arc::new(payload));
                        for (to, wire) in out.outgoing {
                            self.fabric.send_replica(to, Wire::Mcast(wire));
                        }
                        deliveries.extend(out.delivered);
                    }
                    other => self.apply_one(other),
                }
            }
        }
    }

    fn apply(&mut self, effects: Vec<Effect<A>>) {
        for eff in effects {
            match eff {
                Effect::Multicast { mid, partitions, oracle, payload } => {
                    let groups = resolve_groups(&self.fabric, &partitions, oracle);
                    let out = self.member.submit(mid, groups, Arc::new(payload));
                    self.absorb(out);
                }
                other => self.apply_one(other),
            }
        }
    }

    fn apply_one(&mut self, eff: Effect<A>) {
        match eff {
            Effect::Send { to, msg } => self.fabric.send_direct(to, msg),
            Effect::SchedulePlan { after } => {
                self.plan_due = Some(Instant::now() + Duration::from_micros(after.as_micros()));
            }
            Effect::Wake { .. } => {
                // Threaded replicas are driven by real time; the next tick
                // re-pumps the queue, so an explicit wake-up is a no-op
                // (service_time is a simulation-only model anyway).
            }
            // detlint::allow(P003): both callers (absorb, apply) split Multicast off before calling apply_one; a silent drop here would lose a command
            Effect::Multicast { .. } => unreachable!("handled by caller"),
        }
    }
}

fn resolve_groups<A: Application>(
    fabric: &Fabric<A>,
    partitions: &[PartitionId],
    oracle: OracleDest,
) -> Vec<GroupId> {
    let mut gs: Vec<GroupId> = partitions.iter().map(|p| GroupId(p.0)).collect();
    // The threaded harness deploys a single oracle shard, so `All` and
    // `Shard(_)` both resolve to the one oracle group.
    if oracle != OracleDest::None {
        gs.push(fabric.oracle_group);
    }
    gs.sort_unstable();
    gs.dedup();
    gs
}

/// Configuration for a threaded deployment.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Number of partitions.
    pub partitions: u32,
    /// Replicas per group.
    pub replicas: usize,
    /// Replication scheme.
    pub mode: Mode,
    /// Oracle repartitioning threshold.
    pub repartition_threshold: u64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            partitions: 2,
            replicas: 3,
            mode: Mode::Dynastar,
            repartition_threshold: u64::MAX,
        }
    }
}

/// A DynaStar cluster running on real threads.
///
/// Build with [`ThreadedCluster::start`], issue commands with a
/// [`ThreadedClient`] handle, shut down with
/// [`ThreadedCluster::shutdown`] (also done on drop).
///
/// # Example
///
/// See the `threaded_cluster_end_to_end` test in this module or
/// `examples/quickstart.rs` for the simulated twin.
pub struct ThreadedCluster<A: Application> {
    fabric: Arc<Fabric<A>>,
    metrics: Arc<Mutex<Metrics>>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    next_client: u32,
    epoch: Instant,
    mode: Mode,
    placement: Vec<(LocKey, PartitionId)>,
}

impl<A: Application> ThreadedCluster<A> {
    /// Starts the replica threads with the given initial placement and
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if an initial variable's key has no placement.
    pub fn start(
        config: ThreadedConfig,
        placement: Vec<(LocKey, PartitionId)>,
        initial_vars: Vec<(VarId, A::Value)>,
    ) -> Self {
        let k = config.partitions as usize;
        let topo = Topology::uniform(k + 1, config.replicas);
        let oracle_group = GroupId(k as u32);
        let metrics = Arc::new(Mutex::new(Metrics::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();

        let mut txs: FastHashMap<MemberId, Sender<Wire<A>>> = FastHashMap::default();
        let mut rxs: FastHashMap<MemberId, Receiver<Wire<A>>> = FastHashMap::default();
        let mut groups: Vec<Vec<MemberId>> = Vec::new();
        for g in 0..=k {
            let mut members = Vec::new();
            for r in 0..config.replicas {
                let m = MemberId::new(GroupId(g as u32), r);
                let (tx, rx) = unbounded();
                txs.insert(m, tx);
                rxs.insert(m, rx);
                members.push(m);
            }
            groups.push(members);
        }
        let fabric = Arc::new(Fabric {
            replicas: txs,
            clients: Mutex::new(FastHashMap::default()),
            groups,
            oracle_group,
            dropped_sends: AtomicU64::new(0),
        });

        let placement_map: FastHashMap<LocKey, PartitionId> = placement.iter().copied().collect();
        let mut vars_by_part: Vec<Vec<(VarId, A::Value)>> = vec![Vec::new(); k];
        for (v, val) in initial_vars {
            let p = placement_map
                .get(&A::locality(v))
                .unwrap_or_else(|| panic!("initial var {v} has unplaced key"));
            vars_by_part[p.0 as usize].push((v, val));
        }

        let mut handles = Vec::new();
        // Group k is the oracle, which owns no vars — `g` is a group id
        // first and a `vars_by_part` index only for partition groups.
        #[allow(clippy::needless_range_loop)]
        for g in 0..=k {
            for r in 0..config.replicas {
                let m = MemberId::new(GroupId(g as u32), r);
                let role = if g < k {
                    let mut core = ServerCore::<A>::new(
                        PartitionId(g as u32),
                        config.mode,
                        ServerConfig {
                            record_metrics: r == 0,
                            collect_hints: config.mode.optimizes(),
                            ..ServerConfig::default()
                        },
                    );
                    core.preload(
                        placement.iter().filter(|&&(_, p)| p.0 as usize == g).map(|&(kk, _)| kk),
                        vars_by_part[g].iter().cloned(),
                    );
                    Role::Partition(core)
                } else {
                    let mut core = OracleCore::<A>::new(OracleConfig {
                        partitions: config.partitions,
                        mode: config.mode,
                        repartition_threshold: config.repartition_threshold,
                        record_metrics: r == 0,
                        ..OracleConfig::default()
                    });
                    core.preload_map(placement.iter().copied());
                    Role::Oracle(core)
                };
                let thread = ReplicaThread {
                    member: McastMember::new(m, topo.clone()),
                    role,
                    rx: rxs.remove(&m).expect("receiver"),
                    fabric: Arc::clone(&fabric),
                    metrics: Arc::clone(&metrics),
                    epoch,
                    stop: Arc::clone(&stop),
                    plan_due: None,
                };
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("dynastar-{m}"))
                        .spawn(move || thread.run())
                        .expect("spawn replica thread"),
                );
            }
        }

        ThreadedCluster {
            fabric,
            metrics,
            stop,
            handles,
            next_client: 1_000_000, // distinct from replica "node" space
            epoch,
            mode: config.mode,
            placement,
        }
    }

    /// Creates a synchronous client handle.
    pub fn client(&mut self) -> ThreadedClient<A> {
        let id = NodeId::from_raw(self.next_client);
        self.next_client += 1;
        let (tx, rx) = unbounded();
        self.fabric.clients.lock().insert(id, tx);
        let mut core = ClientCore::new(id, self.mode);
        core.preload_cache(self.placement.iter().copied());
        ThreadedClient { core, rx, fabric: Arc::clone(&self.fabric), epoch: self.epoch }
    }

    /// A snapshot of the merged metrics.
    pub fn metrics(&self) -> Arc<Mutex<Metrics>> {
        Arc::clone(&self.metrics)
    }

    /// Messages the fabric dropped so far (unknown addressee or a
    /// disconnected channel — e.g. sends racing shutdown). Non-zero while
    /// threads are being stopped is normal; non-zero in steady state
    /// means a replica thread died.
    pub fn dropped_sends(&self) -> u64 {
        self.fabric.dropped_sends.load(Ordering::Relaxed)
    }

    /// Stops all replica threads and joins them.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<A: Application> Drop for ThreadedCluster<A> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A blocking client for a [`ThreadedCluster`].
pub struct ThreadedClient<A: Application> {
    core: ClientCore<A>,
    rx: Receiver<Direct<A>>,
    fabric: Arc<Fabric<A>>,
    epoch: Instant,
}

impl<A: Application> ThreadedClient<A> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Executes one command, blocking until its reply (or `None` after
    /// `timeout`).
    pub fn execute(&mut self, kind: CommandKind<A>, timeout: Duration) -> Option<Option<A::Reply>> {
        let deadline = Instant::now() + timeout;
        let effects = self.core.issue(kind, self.now());
        self.dispatch(effects);
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let msg = match self.rx.recv_timeout(remaining) {
                Ok(m) => m,
                Err(_) => return None,
            };
            let now = self.now();
            let (effects, event) = {
                // Client-side metrics are thread-local and merged lazily;
                // use a scratch registry (clients record latency/counters).
                let mut scratch = Metrics::new();
                self.core.on_direct(msg, now, &mut scratch)
            };
            self.dispatch(effects);
            if let Some(ClientEvent::Completed { reply, ok, .. }) = event {
                return Some(if ok { reply } else { None });
            }
        }
    }

    fn dispatch(&mut self, effects: Vec<Effect<A>>) {
        for eff in effects {
            match eff {
                Effect::Multicast { mid, partitions, oracle, payload } => {
                    let groups = resolve_groups(&self.fabric, &partitions, oracle);
                    self.fabric.submit(mid, groups, Arc::new(payload));
                }
                Effect::Send { to, msg } => self.fabric.send_direct(to, msg),
                Effect::SchedulePlan { .. } | Effect::Wake { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    struct Counters;
    impl Application for Counters {
        type Op = i64;
        type Value = i64;
        type Reply = Vec<(VarId, i64)>;
        fn locality(var: VarId) -> LocKey {
            LocKey(var.0)
        }
        fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> Self::Reply {
            vars.iter_mut()
                .map(|(&v, val)| {
                    let next = val.unwrap_or(0) + op;
                    *val = Some(next);
                    (v, next)
                })
                .collect()
        }
    }

    #[test]
    fn threaded_cluster_end_to_end() {
        let placement: Vec<(LocKey, PartitionId)> =
            (0..10u64).map(|k| (LocKey(k), PartitionId((k % 2) as u32))).collect();
        let vars: Vec<(VarId, i64)> = (0..10u64).map(|v| (VarId(v), 0)).collect();
        let mut cluster = ThreadedCluster::<Counters>::start(
            ThreadedConfig { partitions: 2, replicas: 3, ..Default::default() },
            placement,
            vars,
        );
        let mut client = cluster.client();
        let timeout = Duration::from_secs(10);

        // Single-partition command.
        let r = client
            .execute(CommandKind::Access { op: 1, vars: vec![VarId(0)] }, timeout)
            .expect("reply within timeout")
            .expect("ok");
        assert_eq!(r, vec![(VarId(0), 1)]);

        // Multi-partition borrow across real threads.
        let r = client
            .execute(CommandKind::Access { op: 1, vars: vec![VarId(0), VarId(1)] }, timeout)
            .expect("reply within timeout")
            .expect("ok");
        assert_eq!(r, vec![(VarId(0), 2), (VarId(1), 1)]);

        // Sequential consistency from one client's perspective.
        for i in 0..10 {
            let r = client
                .execute(CommandKind::Access { op: 1, vars: vec![VarId(5)] }, timeout)
                .expect("reply within timeout")
                .expect("ok");
            assert_eq!(r, vec![(VarId(5), i + 1)]);
        }
        cluster.shutdown();
    }

    #[test]
    fn threaded_clients_in_parallel() {
        let placement: Vec<(LocKey, PartitionId)> =
            (0..4u64).map(|k| (LocKey(k), PartitionId((k % 2) as u32))).collect();
        let vars: Vec<(VarId, i64)> = (0..4u64).map(|v| (VarId(v), 0)).collect();
        let mut cluster = ThreadedCluster::<Counters>::start(
            ThreadedConfig { partitions: 2, replicas: 2, ..Default::default() },
            placement,
            vars,
        );
        // Two clients on distinct vars, driven from two threads.
        let mut c1 = cluster.client();
        let mut c2 = cluster.client();
        let t1 = std::thread::spawn(move || {
            for _ in 0..20 {
                c1.execute(
                    CommandKind::Access { op: 1, vars: vec![VarId(0)] },
                    Duration::from_secs(10),
                )
                .expect("reply")
                .expect("ok");
            }
        });
        let t2 = std::thread::spawn(move || {
            for _ in 0..20 {
                c2.execute(
                    CommandKind::Access { op: 1, vars: vec![VarId(1)] },
                    Duration::from_secs(10),
                )
                .expect("reply")
                .expect("ok");
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        cluster.shutdown();
    }
}
