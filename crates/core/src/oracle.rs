//! The location oracle state machine (paper Algorithm 2 and §5.2).
//!
//! The oracle is a replicated partition: every replica runs an identical
//! `OracleCore` fed by the same atomic multicast deliveries, so replicas
//! stay in lock-step without extra coordination. Duplicate effects
//! (prophecies, follow-up multicasts) are deduplicated downstream —
//! multicasts by deterministic message ids, direct messages by receiver-
//! side dedup keys or client-side outstanding-command state.
//!
//! Responsibilities:
//!
//! * answer `Exec` requests with a *prophecy* and dispatch the command to
//!   the involved partitions (Task 1);
//! * coordinate create/delete of locality keys (Tasks 2–3);
//! * accumulate the workload graph from hints and, past a change
//!   threshold, compute an optimized repartitioning with the multilevel
//!   partitioner and multicast the plan (Tasks 4–5). Computation cost is
//!   modelled as a configurable delay so the simulated oracle "computes
//!   concurrently" as in §5.2 while replicas stay deterministic.

use dynastar_amcast::MsgId;
use dynastar_partitioner::{
    align_labels, partition as ml_partition, partition_from, GraphBuilder, PartitionConfig,
    Partitioning,
};
use dynastar_runtime::hash::FastHashMap;
use dynastar_runtime::{Metrics, SimDuration, SimTime};

use crate::command::{Application, CommandKind, LocKey, Mode, PartitionId};
use crate::metric_names as mn;
use crate::migration::{MoveOutcome, PlanHistory, Settle, PLAN_HISTORY_PER_KEY};
use crate::payload::{Destination, Direct, Effect, OracleDest, Payload};
use crate::routing::{compute_route, shard_of};

/// Derivation tags for oracle-originated multicasts (see
/// [`MsgId::derived`]).
mod tag {
    /// Access dispatch for attempt `a` uses `ACCESS_BASE + a`.
    pub const ACCESS_BASE: u32 = 10;
    /// Create coordination multicast.
    pub const CREATE: u32 = 200;
    /// Delete coordination multicast.
    pub const DELETE: u32 = 210;
    /// Plan publication (derived from the triggering hint).
    pub const PLAN: u32 = 300;
    /// Recompute-proposal marker ([`super::Payload::Recompute`]).
    pub const RECOMPUTE: u32 = 310;
    /// Per-shard workload-graph digest ([`super::Payload::GraphDigest`]).
    pub const DIGEST: u32 = 320;
    /// Digest-flush marker ([`super::Payload::DigestFlush`]).
    pub const FLUSH: u32 = 330;
}

/// Origin of shard-`shard`-originated deterministic message ids (digests
/// and flush markers). The planner's plan/recompute markers use
/// `u64::MAX - 1`; shard `s` gets `u64::MAX - 2 - s`, a band far above
/// client and partition origins.
fn shard_origin(shard: u32) -> u64 {
    u64::MAX - 2 - shard as u64
}

/// Tunables for the oracle.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Number of state partitions.
    pub partitions: u32,
    /// Execution mode (drives routing-side behaviour differences).
    pub mode: Mode,
    /// Workload-graph change count that triggers a repartitioning.
    pub repartition_threshold: u64,
    /// Modelled partitioner base latency.
    pub compute_base: SimDuration,
    /// Modelled additional latency per graph element (vertex or edge).
    pub compute_per_element: SimDuration,
    /// Allowed partition imbalance (paper: 1.2).
    pub balance_factor: f64,
    /// Halve hint weights at every recompute so the graph tracks the
    /// *recent* workload (needed for the paper's dynamic experiment).
    pub decay_hints: bool,
    /// Hard cap on workload-graph vertices. Without a cap the graph grows
    /// without limit under a churning keyspace (keys accessed once are
    /// remembered forever, and with `decay_hints` off nothing ever shrinks
    /// it). When the cap is exceeded the oracle runs a decay pass and then
    /// evicts the lowest-weight vertices — the entries that influence the
    /// next plan least.
    pub max_graph_vertices: usize,
    /// Hard cap on workload-graph edges; enforced like
    /// [`OracleConfig::max_graph_vertices`].
    pub max_graph_edges: usize,
    /// Minimum time between repartitionings. Even past the change
    /// threshold, the oracle waits this long after the previous plan —
    /// repartitioning is rare and deliberate in the paper (§4.3: "it is
    /// expected to happen rarely").
    pub min_plan_interval: SimDuration,
    /// Whether this replica records oracle-side metrics (only one replica
    /// per oracle group should, or counters multiply by the replication
    /// factor).
    pub record_metrics: bool,
    /// Warm-start repartitioning: seed the partitioner's boundary
    /// refinement from the current location map (the surviving keys of
    /// the last published plan) instead of re-running the full multilevel
    /// pipeline. Falls back to a full run when the warm cut or keyspace
    /// churn disqualify it — see [`OracleConfig::warm_quality_ratio`] and
    /// [`OracleConfig::warm_churn_limit`].
    pub warm_start: bool,
    /// Accept a warm-started plan only while its normalized edge cut
    /// (cut / total edge weight) stays within this ratio of the last
    /// *full* multilevel run's. Past it, the incremental path has drifted
    /// too far from optimal and a full run recalibrates.
    pub warm_quality_ratio: f64,
    /// Fall back to a full run when keys created + deleted since the last
    /// plan compute exceed this fraction of the tracked keyspace — a
    /// churned keyspace leaves too little of the previous assignment to
    /// warm-start from.
    pub warm_churn_limit: f64,
    /// Number of oracle shard groups the cluster runs (DESIGN.md §7).
    /// `1` reproduces the unsharded oracle exactly.
    pub shards: u32,
    /// This core's shard index, `0..shards`. Shard 0 is the planner: it
    /// owns the workload graph and the recompute/plan machinery; other
    /// shards forward their hint slices to it as [`Payload::GraphDigest`]s.
    pub shard: u32,
    /// A non-planner shard ships its pending graph delta to the planner
    /// once this many changes accumulate (count gate — evaluated at
    /// delivery positions, so it is identical on every replica).
    pub digest_threshold: u64,
    /// Trickle flush: a shard replica whose sub-threshold delta has sat
    /// unshipped this long proposes a [`Payload::DigestFlush`] marker.
    pub digest_interval: SimDuration,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            partitions: 1,
            mode: Mode::Dynastar,
            repartition_threshold: 2_000,
            compute_base: SimDuration::from_millis(50),
            compute_per_element: SimDuration::from_micros(1),
            balance_factor: 1.2,
            decay_hints: true,
            max_graph_vertices: 1 << 18,
            max_graph_edges: 1 << 20,
            min_plan_interval: SimDuration::from_secs(30),
            record_metrics: true,
            warm_start: true,
            warm_quality_ratio: 1.1,
            warm_churn_limit: 0.25,
            shards: 1,
            shard: 0,
            digest_threshold: 256,
            digest_interval: SimDuration::from_millis(500),
        }
    }
}

/// Shrinks a weighted graph component to `cap` entries: first a decay pass
/// (halve every weight, dropping entries that reach zero), then, if still
/// over, eviction of the `excess` lowest-(weight, key) entries — an exact
/// selection, so the evicted set is a function of map *content* alone
/// (hash-map iteration order never shows through). `scratch` is reused
/// across passes instead of allocating a fresh buffer each time. Returns
/// how many entries were removed.
fn shrink_weighted<K: Ord + Copy + std::hash::Hash>(
    map: &mut FastHashMap<K, u64>,
    cap: usize,
    scratch: &mut Vec<(u64, K)>,
) -> u64 {
    if map.len() <= cap {
        return 0;
    }
    let before = map.len();
    map.retain(|_, w| {
        *w /= 2;
        *w > 0
    });
    if map.len() > cap {
        let excess = map.len() - cap;
        scratch.clear();
        scratch.extend(map.iter().map(|(&k, &w)| (w, k)));
        scratch.select_nth_unstable(excess - 1);
        for &(_, k) in &scratch[..excess] {
            map.remove(&k);
        }
    }
    (before - map.len()) as u64
}

/// Pending workload-graph delta a non-planner oracle shard accumulates
/// between digests. `LocKey`s are interned to dense `u32` ids at first
/// touch (deliveries arrive in total order, so interning order is
/// identical on every replica of the shard), keeping the per-delivery hot
/// path on flat vectors and a pair-keyed hash map instead of tree
/// structures. Draining canonicalizes by key order, so the digest bytes
/// are a function of delta *content* alone.
#[derive(Clone, Default)]
struct DigestDelta {
    intern: FastHashMap<LocKey, u32>,
    keys: Vec<LocKey>,
    vertex_w: Vec<u64>,
    edges: FastHashMap<(u32, u32), u64>,
    changes: u64,
}

impl DigestDelta {
    fn id_of(&mut self, k: LocKey) -> u32 {
        *self.intern.entry(k).or_insert_with(|| {
            let id = self.keys.len() as u32;
            self.keys.push(k);
            self.vertex_w.push(0);
            id
        })
    }

    fn add_vertex(&mut self, k: LocKey, w: u64) {
        let id = self.id_of(k);
        self.vertex_w[id as usize] += w;
        self.changes += 1;
    }

    fn add_edge(&mut self, a: LocKey, b: LocKey, w: u64) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let ia = self.id_of(a);
        let ib = self.id_of(b);
        *self.edges.entry((ia, ib)).or_insert(0) += w;
        self.changes += 1;
    }

    fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.edges.is_empty()
    }

    /// Drains the delta into canonical (key-sorted) vertex and edge
    /// increment lists, resetting it to empty.
    #[allow(clippy::type_complexity)]
    fn drain(&mut self) -> (Vec<(LocKey, u64)>, Vec<(LocKey, LocKey, u64)>) {
        let mut vertices: Vec<(LocKey, u64)> = self
            .keys
            .iter()
            .zip(&self.vertex_w)
            .filter(|&(_, &w)| w > 0)
            .map(|(&k, &w)| (k, w))
            .collect();
        vertices.sort_unstable_by_key(|&(k, _)| k);
        let mut edges: Vec<(LocKey, LocKey, u64)> = self
            .edges
            .iter()
            .map(|(&(ia, ib), &w)| (self.keys[ia as usize], self.keys[ib as usize], w))
            .collect();
        edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        self.intern.clear();
        self.keys.clear();
        self.vertex_w.clear();
        self.edges.clear();
        self.changes = 0;
        (vertices, edges)
    }
}

/// One oracle replica's protocol core. See the [module docs](self).
pub struct OracleCore<A: Application> {
    config: OracleConfig,
    /// The key → partition map. Every shard replicates the *full* map
    /// (all map-updating multicasts target every shard group, in the same
    /// pairwise-consistent total order), but only the
    /// [`shard_of`]-owned slice is authoritative for "this key does not
    /// exist" answers and for [`OracleCore::location_view`].
    map: FastHashMap<LocKey, PartitionId>,
    /// Workload graph: vertex access counts and co-access edge weights
    /// (planner shard only; other shards accumulate into `delta`).
    vertices: FastHashMap<LocKey, u64>,
    edges: FastHashMap<(LocKey, LocKey), u64>,
    /// Changes accumulated since the last plan.
    changes: u64,
    /// A plan is being "computed" (timer pending).
    computing: bool,
    /// The computed plan awaiting its publication timer.
    pending_plan: Option<(MsgId, Payload<A>)>,
    /// Version of the last *applied* plan.
    plan_version: u64,
    /// When the last plan was applied (gates the next recompute).
    last_plan_at: SimTime,
    /// When the in-flight recompute started (plan-compute-time metric).
    compute_started_at: SimTime,
    /// Highest plan version this replica has proposed a recompute marker
    /// for. A local flood guard only — the marker itself is deduplicated
    /// across replicas by its message id.
    proposed_recompute: u64,
    /// Bounded per-key log of plan decisions. `MigrationDone` /
    /// `MigrationRevert` are resolved by replaying the key's history, so a
    /// revert of move v composes with a chained move at v+1, and decisions
    /// below the compaction floor are ignored (default-deny).
    history: PlanHistory,
    /// Normalized edge cut (cut / total edge weight) of the last *full*
    /// multilevel run — the warm-start quality reference.
    last_full_cut_frac: Option<f64>,
    /// Keys created or deleted since the last plan compute (warm-start
    /// churn gate).
    churn_since_plan: u64,
    /// Interned (counter, series) ids for [`mn::ORACLE_QUERIES`] — the
    /// oracle's per-delivery hot path — resolved lazily.
    query_ids: Option<(u64, dynastar_runtime::CounterId, dynastar_runtime::SeriesId)>,
    /// Pending graph delta not yet shipped to the planner (non-planner
    /// shards only).
    delta: DigestDelta,
    /// Sequence number of the next digest this shard ships.
    digest_seq: u32,
    /// Lowest digest seq this replica has *not* proposed a flush marker
    /// for — a local flood guard; the marker itself dedups by message id.
    proposed_flush: u32,
    /// When this shard last shipped a digest (replica-local; only gates
    /// flush-marker proposals, like the recompute interval gate).
    last_digest_at: SimTime,
    /// Reusable eviction scratch for [`shrink_weighted`] over vertices.
    shrink_vertices: Vec<(u64, LocKey)>,
    /// Reusable eviction scratch for [`shrink_weighted`] over edges.
    shrink_edges: Vec<(u64, (LocKey, LocKey))>,
    /// Reusable sort scratch for [`OracleCore::compute_plan`]'s edge pass.
    edge_scratch: Vec<((LocKey, LocKey), u64)>,
    _marker: std::marker::PhantomData<A>,
}

/// Manual impl: deriving would bound `A: Clone`, but only `A`'s associated
/// types need cloning. A clone is the full protocol state — what a
/// recovering oracle replica installs from a live peer.
impl<A: Application> Clone for OracleCore<A> {
    fn clone(&self) -> Self {
        OracleCore {
            config: self.config.clone(),
            map: self.map.clone(),
            vertices: self.vertices.clone(),
            edges: self.edges.clone(),
            changes: self.changes,
            computing: self.computing,
            pending_plan: self.pending_plan.clone(),
            plan_version: self.plan_version,
            last_plan_at: self.last_plan_at,
            compute_started_at: self.compute_started_at,
            proposed_recompute: self.proposed_recompute,
            history: self.history.clone(),
            last_full_cut_frac: self.last_full_cut_frac,
            churn_since_plan: self.churn_since_plan,
            query_ids: self.query_ids,
            delta: self.delta.clone(),
            digest_seq: self.digest_seq,
            proposed_flush: self.proposed_flush,
            last_digest_at: self.last_digest_at,
            // Scratch buffers carry no protocol state; a recovering
            // replica starts with fresh (empty) ones.
            shrink_vertices: Vec::new(),
            shrink_edges: Vec::new(),
            edge_scratch: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<A: Application> OracleCore<A> {
    /// Creates an oracle replica core.
    ///
    /// # Panics
    ///
    /// Panics if `config.partitions` or `config.shards` is zero, or if
    /// `config.shard` is out of range.
    pub fn new(config: OracleConfig) -> Self {
        assert!(config.partitions > 0, "oracle needs at least one partition");
        assert!(config.shards > 0, "oracle needs at least one shard");
        assert!(config.shard < config.shards, "shard index out of range");
        OracleCore {
            config,
            map: FastHashMap::default(),
            vertices: FastHashMap::default(),
            edges: FastHashMap::default(),
            changes: 0,
            computing: false,
            pending_plan: None,
            plan_version: 0,
            last_plan_at: SimTime::ZERO,
            compute_started_at: SimTime::ZERO,
            proposed_recompute: 0,
            history: PlanHistory::new(PLAN_HISTORY_PER_KEY),
            last_full_cut_frac: None,
            churn_since_plan: 0,
            query_ids: None,
            delta: DigestDelta::default(),
            digest_seq: 0,
            proposed_flush: 0,
            last_digest_at: SimTime::ZERO,
            shrink_vertices: Vec::new(),
            shrink_edges: Vec::new(),
            edge_scratch: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Whether this core is the planner shard (shard 0): the one that
    /// owns the workload graph and the recompute/plan machinery.
    fn is_planner(&self) -> bool {
        self.config.shard == 0
    }

    /// Re-enables or disables metric recording — used after installing a
    /// peer's state clone, which carries the *donor's* recording flag.
    pub fn set_record_metrics(&mut self, on: bool) {
        self.config.record_metrics = on;
    }

    /// Seeds the location map before the simulation starts.
    pub fn preload_map(&mut self, entries: impl IntoIterator<Item = (LocKey, PartitionId)>) {
        self.map.extend(entries);
    }

    /// Current location of a key (test/debug aid).
    pub fn location_of(&self, key: LocKey) -> Option<PartitionId> {
        self.map.get(&key).copied()
    }

    /// Diagnostic: this shard's *owned slice* of the key→partition map as
    /// `(key, partition)` pairs in key order. Shard views are disjoint and
    /// union to the authoritative map, so convergence checks against the
    /// servers' views merge the slices. With one shard this is the full
    /// map, as before sharding.
    pub fn location_view(&self) -> Vec<(u64, u32)> {
        let mut view: Vec<(u64, u32)> = self
            .map
            .iter()
            .filter(|&(&k, _)| shard_of(k, self.config.shards) == self.config.shard)
            .map(|(k, p)| (k.0, p.0))
            .collect();
        view.sort_unstable();
        view
    }

    /// Number of keys tracked.
    pub fn tracked_keys(&self) -> usize {
        self.map.len()
    }

    /// Version of the last applied plan.
    pub fn plan_version(&self) -> u64 {
        self.plan_version
    }

    /// Number of vertices currently in the workload graph.
    pub fn graph_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges currently in the workload graph.
    pub fn graph_edges(&self) -> usize {
        self.edges.len()
    }

    /// Handles an atomic multicast delivery addressed to the oracle.
    pub fn on_deliver(
        &mut self,
        payload: Payload<A>,
        now: SimTime,
        metrics: &mut Metrics,
    ) -> Vec<Effect<A>> {
        let mut eff = Vec::new();
        match payload {
            Payload::Exec { cmd, attempt } => {
                if self.config.record_metrics {
                    let (c, s) = match self.query_ids {
                        Some((reg, c, s)) if reg == metrics.registry_id() => (c, s),
                        _ => {
                            let c = metrics.counter_id(mn::ORACLE_QUERIES);
                            let s = metrics.series_id(mn::ORACLE_QUERIES);
                            self.query_ids = Some((metrics.registry_id(), c, s));
                            (c, s)
                        }
                    };
                    metrics.incr(c, 1);
                    metrics.record_at(s, now, 1.0);
                }
                self.handle_exec(cmd, attempt, &mut eff);
            }
            Payload::CreateKey { cmd, dest } => {
                let key = match &cmd.kind {
                    CommandKind::CreateKey { key, .. } => *key,
                    // detlint::allow(P003): constructor pairs CreateKey payloads with CreateKey commands; a mismatch is a local logic bug, not wire input
                    _ => unreachable!("CreateKey payload without CreateKey command"),
                };
                let ok = !self.map.contains_key(&key);
                if ok {
                    self.map.insert(key, dest);
                    self.churn_since_plan += 1;
                }
                // Rendezvous signal towards the partition (Task 2); `ok`
                // is encoded in `from_partition: None` + the separate nok
                // channel below.
                eff.push(Effect::Send {
                    to: Destination::Partition(dest),
                    msg: Direct::Signal { cmd: cmd.id, from_partition: None },
                });
                if !ok {
                    // Late duplicate: the partition will install nothing
                    // because the client already got `nok` from Exec of the
                    // loser; nothing more to do (map unchanged).
                }
            }
            Payload::DeleteKey { cmd, dest } => {
                let key = match &cmd.kind {
                    CommandKind::DeleteKey { key } => *key,
                    // detlint::allow(P003): constructor pairs DeleteKey payloads with DeleteKey commands; a mismatch is a local logic bug, not wire input
                    _ => unreachable!("DeleteKey payload without DeleteKey command"),
                };
                // Only delete if the key still lives where we routed the
                // delete; both oracle and partition observe the same order,
                // so their decisions agree.
                if self.map.get(&key) == Some(&dest) {
                    self.map.remove(&key);
                    self.vertices.remove(&key);
                    self.churn_since_plan += 1;
                }
                eff.push(Effect::Send {
                    to: Destination::Partition(dest),
                    msg: Direct::Signal { cmd: cmd.id, from_partition: None },
                });
            }
            Payload::Hint { vertices, edges } => {
                if self.is_planner() {
                    self.merge_graph(vertices, edges, metrics);
                    self.maybe_propose_recompute(now, &mut eff);
                } else {
                    // Non-planner shard: accumulate into the pending delta
                    // and ship a digest to the planner once the count gate
                    // opens. The gate reads only delivered state, so every
                    // replica of the shard drains the same delta at the
                    // same position and the digests dedup by message id.
                    for (k, w) in vertices {
                        self.delta.add_vertex(k, w);
                    }
                    for (a, b, w) in edges {
                        self.delta.add_edge(a, b, w);
                    }
                    if self.delta.changes >= self.config.digest_threshold {
                        self.emit_digest(now, &mut eff);
                    }
                }
            }
            Payload::GraphDigest { vertices, edges, .. } => {
                // Planner only (digests are multicast to shard 0 alone,
                // but the handler stays total for wire hygiene): merge the
                // shard's delta exactly like a hint batch.
                if self.is_planner() {
                    self.merge_graph(vertices, edges, metrics);
                    self.maybe_propose_recompute(now, &mut eff);
                }
            }
            Payload::DigestFlush { shard, seq } => {
                // Drain a lingering delta at the marker's delivery
                // position. A stale marker (the delta already shipped via
                // the count gate, bumping `digest_seq` past `seq`) no-ops.
                if shard == self.config.shard && seq == self.digest_seq && !self.delta.is_empty() {
                    self.emit_digest(now, &mut eff);
                }
            }
            Payload::Recompute { version } => {
                // Compute at the marker's delivery position so every
                // replica snapshots the same graph. Only log-deterministic
                // state is re-checked here (no local time): a marker that
                // raced a newer plan or an emptied keyspace is dropped.
                // Markers target the planner shard alone; a misdirected
                // one elsewhere is dropped by the planner check.
                if self.is_planner()
                    && version == self.plan_version + 1
                    && !self.computing
                    && !self.map.is_empty()
                {
                    self.start_recompute(now, &mut eff, metrics);
                } else if self.proposed_recompute < version {
                    // Keep the local guard monotone so a dropped marker
                    // does not block this replica from proposing again.
                    self.proposed_recompute = version;
                }
            }
            Payload::Plan { version, moves } => {
                for &(key, from, to) in &moves {
                    self.map.insert(key, to);
                    self.history.record_move(key, version, from, to);
                }
                self.plan_version = version;
                self.computing = false;
                self.changes = 0;
                self.last_plan_at = now;
                // Every shard applies the plan to its map replica, but
                // only the planner records it — or the counters would
                // multiply by the shard count.
                if self.config.record_metrics && self.is_planner() {
                    metrics.incr_counter(mn::PLANS_PUBLISHED, 1);
                    metrics.record_series(mn::PLAN_MOVES, now, moves.len() as f64);
                }
            }
            Payload::MigrationDone { version, key, from, to } => {
                // Replay the key's plan history with this move marked done:
                // the map lands on the destination of the last non-reverted
                // move, which a chained plan may have shifted past `to`.
                if let Settle::Applied { owner } =
                    self.history.settle(key, version, from, to, MoveOutcome::Done)
                {
                    self.map.insert(key, owner);
                }
            }
            Payload::MigrationRevert { version, key, from, to } => {
                // Replay with this move annulled: a revert of v composes
                // with a chained move at v+1 (owner stays at v+1's
                // destination) instead of bouncing the key back to `from`.
                // Duplicates and below-floor stragglers are Stale no-ops.
                if let Settle::Applied { owner } =
                    self.history.settle(key, version, from, to, MoveOutcome::Reverted)
                {
                    self.map.insert(key, owner);
                }
            }
            Payload::Access { cmd, target, expected, .. } => {
                // DS-SMR: the oracle co-delivers multi-partition accesses
                // and moves the touched keys to the target in its map.
                if self.config.mode.keeps_moved_state() {
                    let keys = cmd.keys();
                    let multi = {
                        let mut ps: Vec<PartitionId> = expected.iter().map(|&(_, p)| p).collect();
                        ps.sort_unstable();
                        ps.dedup();
                        ps.len() > 1
                    };
                    if multi {
                        for key in keys {
                            self.map.insert(key, target);
                        }
                    }
                }
            }
        }
        eff
    }

    /// Handles direct messages (partition rendezvous signals — the oracle
    /// does not block on them, so they are consumed silently).
    pub fn on_direct(
        &mut self,
        msg: Direct<A>,
        _now: SimTime,
        _metrics: &mut Metrics,
    ) -> Vec<Effect<A>> {
        let _ = msg;
        Vec::new()
    }

    /// Periodic check (driven by the hosting actor's tick): the planner
    /// proposes a recompute if the change threshold was crossed while the
    /// minimum-interval gate was still closed; other shards propose a
    /// digest flush for a lingering sub-threshold delta.
    pub fn on_tick(&mut self, now: SimTime, _metrics: &mut Metrics) -> Vec<Effect<A>> {
        let mut eff = Vec::new();
        self.maybe_propose_recompute(now, &mut eff);
        self.maybe_propose_flush(now, &mut eff);
        eff
    }

    /// Merges a hint or digest batch into the planner's workload graph,
    /// enforcing the graph caps.
    fn merge_graph(
        &mut self,
        vertices: Vec<(LocKey, u64)>,
        edges: Vec<(LocKey, LocKey, u64)>,
        metrics: &mut Metrics,
    ) {
        self.changes += vertices.len() as u64 + edges.len() as u64;
        for (k, w) in vertices {
            *self.vertices.entry(k).or_insert(0) += w;
        }
        for (a, b, w) in edges {
            let key = if a <= b { (a, b) } else { (b, a) };
            *self.edges.entry(key).or_insert(0) += w;
        }
        let evicted = shrink_weighted(
            &mut self.vertices,
            self.config.max_graph_vertices,
            &mut self.shrink_vertices,
        ) + shrink_weighted(
            &mut self.edges,
            self.config.max_graph_edges,
            &mut self.shrink_edges,
        );
        if evicted > 0 && self.config.record_metrics {
            metrics.incr_counter(mn::ORACLE_GRAPH_EVICTIONS, evicted);
        }
    }

    /// Drains the pending delta into a [`Payload::GraphDigest`] multicast
    /// to the planner shard. Every replica of this shard reaches this at
    /// the same delivery position with the same delta, so the digest's
    /// deterministic id dedups the copies.
    fn emit_digest(&mut self, now: SimTime, eff: &mut Vec<Effect<A>>) {
        let (vertices, edges) = self.delta.drain();
        if vertices.is_empty() && edges.is_empty() {
            return;
        }
        let shard = self.config.shard;
        let seq = self.digest_seq;
        self.digest_seq += 1;
        self.last_digest_at = now;
        eff.push(Effect::Multicast {
            mid: MsgId { origin: shard_origin(shard), seq, tag: tag::DIGEST },
            partitions: Vec::new(),
            oracle: OracleDest::Shard(0),
            payload: Payload::GraphDigest { shard, seq, vertices, edges },
        });
    }

    /// Proposes a [`Payload::DigestFlush`] marker when a non-planner
    /// shard's delta has idled past the digest interval — the trickle
    /// tail the count gate alone would strand. Mirrors the recompute
    /// marker: the interval reads replica-local time, so the *drain*
    /// happens at the marker's delivery position, identical everywhere.
    fn maybe_propose_flush(&mut self, now: SimTime, eff: &mut Vec<Effect<A>>) {
        if self.is_planner()
            || self.delta.is_empty()
            || now.saturating_duration_since(self.last_digest_at) < self.config.digest_interval
            || self.proposed_flush > self.digest_seq
        {
            return;
        }
        let shard = self.config.shard;
        let seq = self.digest_seq;
        self.proposed_flush = seq + 1;
        eff.push(Effect::Multicast {
            mid: MsgId { origin: shard_origin(shard), seq, tag: tag::FLUSH },
            partitions: Vec::new(),
            oracle: OracleDest::Shard(shard),
            payload: Payload::DigestFlush { shard, seq },
        });
    }

    /// Task 1: route a command, reply with a prophecy, dispatch.
    fn handle_exec(
        &mut self,
        cmd: crate::command::Command<A>,
        attempt: u32,
        eff: &mut Vec<Effect<A>>,
    ) {
        let client = cmd.client;
        match &cmd.kind {
            CommandKind::CreateKey { key, .. } => {
                let key = *key;
                // The owner shard of the key's slice is the single
                // authority for the exists/absent decision. Clients route
                // create queries there; a misdirected one is referred
                // back rather than answered from a possibly-lagging
                // foreign-slice replica.
                if shard_of(key, self.config.shards) != self.config.shard {
                    eff.push(Effect::Send {
                        to: Destination::Client(client),
                        msg: Direct::Retry { cmd: cmd.id, attempt },
                    });
                    return;
                }
                if self.map.contains_key(&key) {
                    eff.push(Effect::Send {
                        to: Destination::Client(client),
                        msg: Direct::Prophecy {
                            cmd: cmd.id,
                            ok: false,
                            locations: vec![(key, self.map[&key])],
                            version: self.plan_version,
                        },
                    });
                    return;
                }
                // Deterministic "random" partition pick: every oracle
                // replica derives the same choice from the command id.
                let dest = PartitionId(
                    ((cmd.id.origin.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ cmd.id.seq as u64)
                        % self.config.partitions as u64) as u32,
                );
                eff.push(Effect::Send {
                    to: Destination::Client(client),
                    msg: Direct::Prophecy {
                        cmd: cmd.id,
                        ok: true,
                        locations: vec![(key, dest)],
                        version: self.plan_version,
                    },
                });
                eff.push(Effect::Multicast {
                    mid: cmd.id.derived(tag::CREATE),
                    partitions: vec![dest],
                    // Every shard's map replica must observe the insert.
                    oracle: OracleDest::All,
                    payload: Payload::CreateKey { cmd, dest },
                });
            }
            CommandKind::DeleteKey { key } => {
                let key = *key;
                if shard_of(key, self.config.shards) != self.config.shard {
                    eff.push(Effect::Send {
                        to: Destination::Client(client),
                        msg: Direct::Retry { cmd: cmd.id, attempt },
                    });
                    return;
                }
                match self.map.get(&key).copied() {
                    None => eff.push(Effect::Send {
                        to: Destination::Client(client),
                        msg: Direct::Prophecy {
                            cmd: cmd.id,
                            ok: false,
                            locations: Vec::new(),
                            version: self.plan_version,
                        },
                    }),
                    Some(dest) => {
                        eff.push(Effect::Send {
                            to: Destination::Client(client),
                            msg: Direct::Prophecy {
                                cmd: cmd.id,
                                ok: true,
                                locations: vec![(key, dest)],
                                version: self.plan_version,
                            },
                        });
                        eff.push(Effect::Multicast {
                            mid: cmd.id.derived(tag::DELETE),
                            partitions: vec![dest],
                            oracle: OracleDest::All,
                            payload: Payload::DeleteKey { cmd, dest },
                        });
                    }
                }
            }
            CommandKind::Access { .. } => {
                let route = compute_route(&cmd, |k| self.map.get(&k).copied());
                let Some(route) = route else {
                    // A key is missing. Only the shard *owning* a missing
                    // key's slice may answer `nok` — a foreign-slice
                    // replica could merely be behind on that slice's
                    // create. If none of the missing keys is ours, refer
                    // the client back: the retry's attempt rotation
                    // reaches the owner within `shards` attempts.
                    let authoritative = self.config.shards == 1 || {
                        let keys = cmd.keys();
                        let missing_mine = keys.iter().any(|&k| {
                            !self.map.contains_key(&k)
                                && shard_of(k, self.config.shards) == self.config.shard
                        });
                        missing_mine || keys.iter().all(|k| self.map.contains_key(k))
                    };
                    if authoritative {
                        eff.push(Effect::Send {
                            to: Destination::Client(client),
                            msg: Direct::Prophecy {
                                cmd: cmd.id,
                                ok: false,
                                locations: Vec::new(),
                                version: self.plan_version,
                            },
                        });
                    } else {
                        eff.push(Effect::Send {
                            to: Destination::Client(client),
                            msg: Direct::Retry { cmd: cmd.id, attempt },
                        });
                    }
                    return;
                };
                let locations: Vec<(LocKey, PartitionId)> = cmd
                    .keys()
                    .into_iter()
                    .filter_map(|k| self.map.get(&k).map(|&p| (k, p)))
                    .collect();
                eff.push(Effect::Send {
                    to: Destination::Client(client),
                    msg: Direct::Prophecy {
                        cmd: cmd.id,
                        ok: true,
                        locations,
                        version: self.plan_version,
                    },
                });
                let keep = self.config.mode.keeps_moved_state() && route.is_multi_partition();
                eff.push(Effect::Multicast {
                    mid: cmd.id.derived(tag::ACCESS_BASE + attempt),
                    partitions: route.dests.clone(),
                    // DS-SMR keep moves keys in every shard's map replica.
                    oracle: if keep { OracleDest::All } else { OracleDest::None },
                    payload: Payload::Access {
                        cmd,
                        attempt,
                        expected: route.expected,
                        target: route.target,
                        keep,
                    },
                });
            }
        }
    }

    /// Proposes a recompute marker when the local gates pass. The compute
    /// itself runs at the marker's *delivery* (see [`Payload::Recompute`]):
    /// the interval gate reads replica-local delivery time, so acting on it
    /// directly would let replicas snapshot the workload graph at different
    /// log positions and publish divergent plans under one id.
    fn maybe_propose_recompute(&mut self, now: SimTime, eff: &mut Vec<Effect<A>>) {
        if !self.should_recompute(now) {
            return;
        }
        let version = self.plan_version + 1;
        if self.proposed_recompute >= version {
            return; // this version's marker is already in flight
        }
        self.proposed_recompute = version;
        eff.push(Effect::Multicast {
            mid: MsgId { origin: u64::MAX - 1, seq: version as u32, tag: tag::RECOMPUTE },
            partitions: Vec::new(),
            // Only the planner computes; the marker stays on its group.
            oracle: OracleDest::Shard(0),
            payload: Payload::Recompute { version },
        });
    }

    fn should_recompute(&self, now: SimTime) -> bool {
        self.config.mode.optimizes()
            && self.is_planner()
            && !self.computing
            && self.config.partitions > 1
            && self.changes >= self.config.repartition_threshold
            && !self.map.is_empty()
            && now.saturating_duration_since(self.last_plan_at) >= self.config.min_plan_interval
    }

    /// Computes a plan from the current graph snapshot and schedules its
    /// publication after the modelled compute time (§5.2's concurrent
    /// repartitioning).
    fn start_recompute(&mut self, now: SimTime, eff: &mut Vec<Effect<A>>, metrics: &mut Metrics) {
        self.computing = true;
        self.compute_started_at = now;
        let (plan_mid, payload, elements, warm, cut) = self.compute_plan();
        if self.config.record_metrics {
            if warm {
                metrics.incr_counter(mn::PLANS_WARM, 1);
            }
            metrics.record_series(mn::PLAN_EDGE_CUT, now, cut);
        }
        let after = self.config.compute_base
            + self.config.compute_per_element.saturating_mul(elements as u64);
        self.pending_plan = Some((plan_mid, payload));
        eff.push(Effect::SchedulePlan { after });
        if self.config.decay_hints {
            // Entries decayed to zero are dropped on both components —
            // leaving zero-weight vertices in place would leak memory under
            // a churning keyspace.
            self.vertices.retain(|_, w| {
                *w /= 2;
                *w > 0
            });
            self.edges.retain(|_, w| {
                *w /= 2;
                *w > 0
            });
        }
    }

    /// Builds the dense graph, runs the partitioner — the incremental
    /// warm-start path when eligible, the full multilevel pipeline
    /// otherwise — aligns labels with the current map and produces the
    /// Plan payload. Returns `(plan id, payload, modelled elements,
    /// warm-start used, normalized edge cut)`.
    ///
    /// Warm start seeds `partition_from`'s boundary refinement with the
    /// current location map (the surviving keys of the last published
    /// plan, mapped through the key index). It is taken only when (a) at
    /// least one full run has recorded a reference cut, (b) keyspace
    /// churn since the last plan stays under
    /// [`OracleConfig::warm_churn_limit`], and (c) the warm cut lands
    /// within [`OracleConfig::warm_quality_ratio`] of the reference;
    /// otherwise the full pipeline runs and re-records the reference.
    fn compute_plan(&mut self) -> (MsgId, Payload<A>, usize, bool, f64) {
        let keys: Vec<LocKey> = {
            let mut ks: Vec<LocKey> = self.map.keys().copied().collect();
            ks.sort_unstable();
            ks
        };
        let index: FastHashMap<LocKey, u32> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let mut b = GraphBuilder::new();
        if !keys.is_empty() {
            b.add_vertex(keys.len() as u32 - 1);
        }
        for (i, k) in keys.iter().enumerate() {
            let w = 1 + self.vertices.get(k).copied().unwrap_or(0);
            b.set_vertex_weight(i as u32, w);
        }
        // The hash map iterates in arbitrary order; sort into the scratch
        // buffer so the builder sees edges in key order and every replica
        // (and build profile) constructs the identical graph.
        let mut edge_scratch = std::mem::take(&mut self.edge_scratch);
        edge_scratch.clear();
        edge_scratch.extend(self.edges.iter().map(|(&e, &w)| (e, w)));
        edge_scratch.sort_unstable_by_key(|&(e, _)| e);
        for &((a, bk), w) in &edge_scratch {
            if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&bk)) {
                if w > 0 {
                    b.add_edge(ia, ib, w);
                }
            }
        }
        self.edge_scratch = edge_scratch;
        let g = b.build();
        let k = self.config.partitions;
        let cfg = PartitionConfig::default()
            .seed(self.plan_version + 1)
            .balance_factor(self.config.balance_factor);
        let prev = Partitioning::new(k, keys.iter().map(|kk| self.map[kk].0).collect());
        let total_ew = g.total_edge_weight();
        let cut_frac = |cut: u64| if total_ew == 0 { 0.0 } else { cut as f64 / total_ew as f64 };
        let churn_ok = (self.churn_since_plan as f64)
            <= self.config.warm_churn_limit * self.map.len().max(1) as f64;
        let mut warm_used = false;
        let mut plan: Option<Partitioning> = None;
        if self.config.warm_start && self.plan_version > 0 && churn_ok {
            if let Some(full_frac) = self.last_full_cut_frac {
                let warm = partition_from(&g, k, prev.assignment(), &cfg);
                let ok_cut = cut_frac(warm.edge_cut(&g))
                    <= self.config.warm_quality_ratio * full_frac + 1e-12;
                if ok_cut {
                    // `partition_from` refines in place under prev's
                    // labels, so the result needs no re-alignment.
                    warm_used = true;
                    plan = Some(warm);
                }
            }
        }
        let aligned = match plan {
            Some(warm) => warm,
            None => {
                let fresh = ml_partition(&g, k, &cfg);
                self.last_full_cut_frac = Some(cut_frac(fresh.edge_cut(&g)));
                align_labels(&prev, &fresh)
            }
        };
        self.churn_since_plan = 0;
        let mut moves: Vec<(LocKey, PartitionId, PartitionId)> = keys
            .iter()
            .enumerate()
            .filter_map(|(i, &key)| {
                let from = prev.part_of(i as u32);
                let to = aligned.part_of(i as u32);
                (from != to).then_some((key, PartitionId(from), PartitionId(to)))
            })
            .collect();
        // Hot keys first: the plan's move order is the cluster-wide
        // migration schedule (servers ship outbox entries in plan order and
        // the per-link in-flight cap defers the tail), so sorting by
        // workload-graph access weight moves the traffic-carrying keys while
        // link budget is still uncontended. Weight snapshot is pre-decay
        // (compute_plan runs before decay_hints) and the key tie-break keeps
        // the order deterministic across replicas.
        moves.sort_by(|a, b| {
            let wa = self.vertices.get(&a.0).copied().unwrap_or(0);
            let wb = self.vertices.get(&b.0).copied().unwrap_or(0);
            wb.cmp(&wa).then_with(|| a.0.cmp(&b.0))
        });
        let version = self.plan_version + 1;
        // Deterministic plan id: every oracle replica derives the same.
        let mid = MsgId { origin: u64::MAX - 1, seq: version as u32, tag: tag::PLAN };
        // Modelled compute cost: the warm path's measured wall-clock runs
        // an order of magnitude below the full pipeline's on the same
        // graph (results/BENCH_partitioner.json), so its modelled element
        // count scales down the same way.
        let elements = {
            let full = g.vertex_count() + g.edge_count();
            if warm_used {
                full / 10
            } else {
                full
            }
        };
        // Normalized cut: raw cut grows with accumulated hint weight, so
        // only the fraction is comparable across runs and shard counts.
        let cut = cut_frac(aligned.edge_cut(&g));
        (mid, Payload::Plan { version, moves }, elements, warm_used, cut)
    }

    /// Fires when the modelled compute time elapses: publish the pending
    /// plan to every partition and the oracle itself. A spurious firing
    /// with no plan pending doubles as a periodic re-evaluation point —
    /// if the change threshold was crossed while the timer was armed for
    /// other reasons, the recompute starts here instead of waiting for
    /// the next hint or tick.
    pub fn on_plan_timer(&mut self, now: SimTime, metrics: &mut Metrics) -> Vec<Effect<A>> {
        let Some((mid, payload)) = self.pending_plan.take() else {
            let mut eff = Vec::new();
            self.maybe_propose_recompute(now, &mut eff);
            return eff;
        };
        if self.config.record_metrics {
            metrics.record_histogram(
                mn::PLAN_COMPUTE_TIME,
                now.saturating_duration_since(self.compute_started_at),
            );
        }
        vec![Effect::Multicast {
            mid,
            partitions: (0..self.config.partitions).map(PartitionId).collect(),
            // Every shard applies the plan to its full-map replica.
            oracle: OracleDest::All,
            payload,
        }]
    }
}

impl<A: Application> std::fmt::Debug for OracleCore<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleCore")
            .field("keys", &self.map.len())
            .field("graph_vertices", &self.vertices.len())
            .field("graph_edges", &self.edges.len())
            .field("changes", &self.changes)
            .field("plan_version", &self.plan_version)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Command, CommandKind};
    use dynastar_runtime::NodeId;
    use std::collections::BTreeMap as Map;

    struct App;
    impl Application for App {
        type Op = ();
        type Value = u64;
        type Reply = ();
        fn locality(var: crate::command::VarId) -> LocKey {
            LocKey(var.0 / 10)
        }
        fn execute(_: &(), _: &mut Map<crate::command::VarId, Option<u64>>) {}
    }

    fn oracle(partitions: u32) -> OracleCore<App> {
        let mut o = OracleCore::new(OracleConfig {
            partitions,
            repartition_threshold: 5,
            min_plan_interval: SimDuration::from_millis(1),
            ..OracleConfig::default()
        });
        o.preload_map((0..4).map(|k| (LocKey(k), PartitionId((k % partitions as u64) as u32))));
        o
    }

    fn cmd(kind: CommandKind<App>) -> Command<App> {
        Command { id: MsgId::new(7, 0), client: NodeId::from_raw(9), kind }
    }

    fn access(vars: Vec<u64>) -> Command<App> {
        cmd(CommandKind::Access {
            op: (),
            vars: vars.into_iter().map(crate::command::VarId).collect(),
        })
    }

    fn now() -> SimTime {
        SimTime::from_secs(10)
    }

    /// Completes the recompute agreement round: pulls the proposed
    /// [`Payload::Recompute`] marker out of `eff` and delivers it back,
    /// returning the delivery's effects (which carry the `SchedulePlan`).
    fn deliver_marker(
        o: &mut OracleCore<App>,
        eff: &[Effect<App>],
        at: SimTime,
        m: &mut Metrics,
    ) -> Vec<Effect<App>> {
        let marker = eff
            .iter()
            .find_map(|e| match e {
                Effect::Multicast { payload: p @ Payload::Recompute { .. }, .. } => Some(p.clone()),
                _ => None,
            })
            .expect("recompute marker proposed");
        o.on_deliver(marker, at, m)
    }

    #[test]
    fn exec_routes_single_partition_access() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let eff =
            o.on_deliver(Payload::Exec { cmd: access(vec![0, 5]), attempt: 0 }, now(), &mut m);
        // Prophecy to the client + an Access multicast to partition 0.
        let has_prophecy = eff.iter().any(|e| {
            matches!(
                e,
                Effect::Send { to: Destination::Client(_), msg: Direct::Prophecy { ok: true, .. } }
            )
        });
        assert!(has_prophecy);
        let mcast = eff
            .iter()
            .find_map(|e| match e {
                Effect::Multicast {
                    partitions,
                    oracle,
                    payload: Payload::Access { target, .. },
                    ..
                } => Some((partitions.clone(), *oracle, *target)),
                _ => None,
            })
            .expect("access dispatched");
        assert_eq!(mcast.0, vec![PartitionId(0)]);
        assert_eq!(mcast.1, OracleDest::None, "oracle not a destination in DynaStar mode");
        assert_eq!(mcast.2, PartitionId(0));
        assert_eq!(m.counter(crate::metric_names::ORACLE_QUERIES), 1);
    }

    #[test]
    fn exec_unknown_key_is_nok() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let eff = o.on_deliver(Payload::Exec { cmd: access(vec![999]), attempt: 0 }, now(), &mut m);
        assert!(eff
            .iter()
            .any(|e| matches!(e, Effect::Send { msg: Direct::Prophecy { ok: false, .. }, .. })));
        assert!(!eff.iter().any(|e| matches!(e, Effect::Multicast { .. })));
    }

    #[test]
    fn create_picks_partition_and_coordinates() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let c = cmd(CommandKind::CreateKey { key: LocKey(77), vars: vec![] });
        let eff = o.on_deliver(Payload::Exec { cmd: c.clone(), attempt: 0 }, now(), &mut m);
        let dest = eff
            .iter()
            .find_map(|e| match e {
                Effect::Multicast {
                    oracle: OracleDest::All,
                    payload: Payload::CreateKey { dest, .. },
                    ..
                } => Some(*dest),
                _ => None,
            })
            .expect("create coordinated");
        // Map updates at CreateKey *delivery*, not dispatch.
        assert_eq!(o.location_of(LocKey(77)), None);
        let _ = o.on_deliver(Payload::CreateKey { cmd: c, dest }, now(), &mut m);
        assert_eq!(o.location_of(LocKey(77)), Some(dest));
    }

    #[test]
    fn duplicate_create_is_nok() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let c = cmd(CommandKind::CreateKey { key: LocKey(0), vars: vec![] });
        let eff = o.on_deliver(Payload::Exec { cmd: c, attempt: 0 }, now(), &mut m);
        assert!(eff
            .iter()
            .any(|e| matches!(e, Effect::Send { msg: Direct::Prophecy { ok: false, .. }, .. })));
    }

    #[test]
    fn delete_applies_only_if_location_unchanged() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let c = cmd(CommandKind::DeleteKey { key: LocKey(0) });
        // Stale delete routed to the wrong (old) partition is ignored.
        let _ = o.on_deliver(
            Payload::DeleteKey { cmd: c.clone(), dest: PartitionId(1) },
            now(),
            &mut m,
        );
        assert!(o.location_of(LocKey(0)).is_some());
        let _ = o.on_deliver(Payload::DeleteKey { cmd: c, dest: PartitionId(0) }, now(), &mut m);
        assert_eq!(o.location_of(LocKey(0)), None);
    }

    #[test]
    fn hints_trigger_plan_after_threshold_and_interval() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        // Below threshold: nothing.
        let eff = o.on_deliver(
            Payload::Hint { vertices: vec![(LocKey(0), 1)], edges: vec![] },
            SimTime::from_millis(0),
            &mut m,
        );
        assert!(eff.is_empty());
        // Past threshold and interval: a recompute marker is proposed; the
        // compute itself starts only at the marker's delivery (the agreed
        // log position every replica snapshots the graph at).
        let eff = o.on_deliver(
            Payload::Hint {
                vertices: (0..4).map(|k| (LocKey(k), 5)).collect(),
                edges: vec![(LocKey(0), LocKey(1), 20), (LocKey(2), LocKey(3), 20)],
            },
            SimTime::from_millis(2),
            &mut m,
        );
        assert!(
            !eff.iter().any(|e| matches!(e, Effect::SchedulePlan { .. })),
            "compute must wait for the marker's delivery"
        );
        let eff = deliver_marker(&mut o, &eff, SimTime::from_millis(3), &mut m);
        let schedule = eff.iter().any(|e| matches!(e, Effect::SchedulePlan { .. }));
        assert!(schedule, "plan compute should be scheduled at marker delivery");
        // The timer fires → the plan is multicast to all partitions + self.
        let eff = o.on_plan_timer(SimTime::from_millis(200), &mut m);
        let plan = eff.iter().find_map(|e| match e {
            Effect::Multicast {
                partitions,
                oracle: OracleDest::All,
                payload: Payload::Plan { version, .. },
                ..
            } => Some((partitions.len(), *version)),
            _ => None,
        });
        let (nparts, version) = plan.expect("plan published");
        assert_eq!(nparts, 2);
        assert_eq!(version, 1);
    }

    #[test]
    fn recompute_marker_is_proposed_once_per_version() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let hint = || Payload::Hint {
            vertices: (0..4).map(|k| (LocKey(k), 5)).collect(),
            edges: vec![(LocKey(0), LocKey(1), 20)],
        };
        let proposals = |eff: &[Effect<App>]| {
            eff.iter()
                .filter(|e| {
                    matches!(e, Effect::Multicast { payload: Payload::Recompute { .. }, .. })
                })
                .count()
        };
        let eff = o.on_deliver(hint(), SimTime::from_millis(2), &mut m);
        assert_eq!(proposals(&eff), 1, "gates open: the marker is proposed");
        // Gates still open before the marker delivers: no duplicate — the
        // proposal for this version is already in flight.
        let eff = o.on_deliver(hint(), SimTime::from_millis(4), &mut m);
        assert_eq!(proposals(&eff), 0);
        assert_eq!(proposals(&o.on_tick(SimTime::from_millis(5), &mut m)), 0);

        // A marker raced by an already-installed newer plan is dropped
        // (no compute) but must not wedge future proposals.
        let mut o2 = oracle(2);
        let _ = o2.on_deliver(Payload::Plan { version: 1, moves: vec![] }, SimTime::ZERO, &mut m);
        let eff = o2.on_deliver(Payload::Recompute { version: 1 }, SimTime::from_millis(1), &mut m);
        assert!(eff.is_empty(), "stale marker must not start a compute");
        let eff = o2.on_deliver(hint(), SimTime::from_millis(10), &mut m);
        assert_eq!(proposals(&eff), 1, "replica can still propose the next version");
    }

    #[test]
    fn skewed_replicas_publish_identical_plans_via_marker() {
        // Regression for a split-brain wedge: the minimum-interval
        // recompute gate mixes replica-local delivery time, so two oracle
        // replicas delivering the same hint log can pass it at different
        // hints. Acting on the gate directly, each would snapshot a
        // different workload graph and publish divergent plans under the
        // same deterministic plan id — receivers keep whichever copy
        // arrives first, and key ownership splits. The marker pins the
        // compute to one log position, so payloads must match exactly.
        let mut a = oracle(2);
        let mut b = oracle(2);
        let mut m = Metrics::new();
        let h1 = || Payload::Hint {
            vertices: (0..4).map(|k| (LocKey(k), 5)).collect(),
            edges: vec![(LocKey(0), LocKey(1), 100), (LocKey(2), LocKey(3), 100)],
        };
        let h2 = || Payload::Hint {
            vertices: (0..4).map(|k| (LocKey(k), 5)).collect(),
            edges: vec![(LocKey(0), LocKey(3), 1000), (LocKey(1), LocKey(2), 1000)],
        };
        // Replica A's local clock has the interval gate open at the first
        // hint; replica B's opens only at the second. Without the marker,
        // A would compute from {h1} and B from {h1, h2}.
        let eff_a = a.on_deliver(h1(), SimTime::from_millis(2), &mut m);
        let marker = eff_a
            .iter()
            .find_map(|e| match e {
                Effect::Multicast { payload: p @ Payload::Recompute { .. }, .. } => Some(p.clone()),
                _ => None,
            })
            .expect("replica A proposes at the first hint");
        let _ = b.on_deliver(h1(), SimTime::from_micros(500), &mut m);
        let _ = a.on_deliver(h2(), SimTime::from_millis(3), &mut m);
        let _ = b.on_deliver(h2(), SimTime::from_micros(1600), &mut m);
        // The marker occupies the same log position on both replicas (B's
        // own proposal, if any, is deduplicated into it by message id).
        let _ = a.on_deliver(marker.clone(), SimTime::from_millis(4), &mut m);
        let _ = b.on_deliver(marker, SimTime::from_millis(2), &mut m);
        let plan_of = |eff: &[Effect<App>]| {
            eff.iter().find_map(|e| match e {
                Effect::Multicast { payload: Payload::Plan { version, moves }, .. } => {
                    Some((*version, moves.clone()))
                }
                _ => None,
            })
        };
        let pa = plan_of(&a.on_plan_timer(SimTime::from_millis(100), &mut m))
            .expect("replica A publishes");
        let pb = plan_of(&b.on_plan_timer(SimTime::from_millis(90), &mut m))
            .expect("replica B publishes");
        assert_eq!(pa, pb, "same log must yield byte-identical plans on every replica");
    }

    #[test]
    fn second_recompute_takes_the_warm_start_path() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let hint = || Payload::Hint {
            vertices: (0..4).map(|k| (LocKey(k), 50)).collect(),
            edges: vec![(LocKey(0), LocKey(1), 100), (LocKey(2), LocKey(3), 100)],
        };
        // First recompute: no reference cut yet -> full multilevel.
        let eff = o.on_deliver(hint(), SimTime::from_millis(2), &mut m);
        let eff = deliver_marker(&mut o, &eff, SimTime::from_millis(3), &mut m);
        assert!(eff.iter().any(|e| matches!(e, Effect::SchedulePlan { .. })));
        assert_eq!(m.counter(crate::metric_names::PLANS_WARM), 0, "first plan must run full");
        let eff = o.on_plan_timer(SimTime::from_millis(100), &mut m);
        let plan = eff
            .iter()
            .find_map(|e| match e {
                Effect::Multicast { payload: p @ Payload::Plan { .. }, .. } => Some(p.clone()),
                _ => None,
            })
            .expect("first plan published");
        let _ = o.on_deliver(plan, SimTime::from_millis(100), &mut m);
        assert_eq!(o.plan_version(), 1);
        // Second recompute over a stable keyspace: warm start.
        let eff = o.on_deliver(hint(), SimTime::from_millis(200), &mut m);
        let eff = deliver_marker(&mut o, &eff, SimTime::from_millis(201), &mut m);
        assert!(eff.iter().any(|e| matches!(e, Effect::SchedulePlan { .. })));
        assert_eq!(m.counter(crate::metric_names::PLANS_WARM), 1, "second plan should warm-start");
    }

    #[test]
    fn churned_keyspace_disables_warm_start() {
        let mut o = OracleCore::<App>::new(OracleConfig {
            partitions: 2,
            repartition_threshold: 5,
            min_plan_interval: SimDuration::from_millis(1),
            warm_churn_limit: 0.25,
            ..OracleConfig::default()
        });
        o.preload_map((0..4).map(|k| (LocKey(k), PartitionId((k % 2) as u32))));
        let mut m = Metrics::new();
        let hint = || Payload::Hint {
            vertices: (0..4).map(|k| (LocKey(k), 50)).collect(),
            edges: vec![(LocKey(0), LocKey(1), 100), (LocKey(2), LocKey(3), 100)],
        };
        let eff = o.on_deliver(hint(), SimTime::from_millis(2), &mut m);
        let _ = deliver_marker(&mut o, &eff, SimTime::from_millis(3), &mut m);
        let eff = o.on_plan_timer(SimTime::from_millis(100), &mut m);
        let plan = eff
            .iter()
            .find_map(|e| match e {
                Effect::Multicast { payload: p @ Payload::Plan { .. }, .. } => Some(p.clone()),
                _ => None,
            })
            .expect("first plan published");
        let _ = o.on_deliver(plan, SimTime::from_millis(100), &mut m);
        // Churn past the 25% limit: create 3 fresh keys (3/7 > 0.25).
        for k in 10..13u64 {
            let c = cmd(CommandKind::CreateKey { key: LocKey(k), vars: vec![] });
            let _ = o.on_deliver(
                Payload::CreateKey { cmd: c, dest: PartitionId(0) },
                SimTime::from_millis(150),
                &mut m,
            );
        }
        let eff = o.on_deliver(hint(), SimTime::from_millis(200), &mut m);
        let _ = deliver_marker(&mut o, &eff, SimTime::from_millis(201), &mut m);
        assert_eq!(
            m.counter(crate::metric_names::PLANS_WARM),
            0,
            "churned keyspace must fall back to the full pipeline"
        );
    }

    #[test]
    fn plan_delivery_updates_map_and_version() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let _ = o.on_deliver(
            Payload::Plan { version: 3, moves: vec![(LocKey(0), PartitionId(0), PartitionId(1))] },
            now(),
            &mut m,
        );
        assert_eq!(o.location_of(LocKey(0)), Some(PartitionId(1)));
        assert_eq!(o.plan_version(), 3);
    }

    #[test]
    fn graph_cap_evicts_lowest_weight_entries() {
        let mut o: OracleCore<App> = OracleCore::new(OracleConfig {
            partitions: 2,
            repartition_threshold: u64::MAX, // never recompute in this test
            decay_hints: false,
            max_graph_vertices: 8,
            max_graph_edges: 4,
            ..OracleConfig::default()
        });
        let mut m = Metrics::new();
        // A churning keyspace: 100 distinct keys, most seen once, a few hot.
        for k in 0..100u64 {
            let w = if k < 4 { 1_000 } else { 1 };
            let _ = o.on_deliver(
                Payload::Hint {
                    vertices: vec![(LocKey(k), w)],
                    edges: vec![(LocKey(k), LocKey(k + 1), w)],
                },
                now(),
                &mut m,
            );
        }
        assert!(o.graph_vertices() <= 8, "vertices capped, got {}", o.graph_vertices());
        assert!(o.graph_edges() <= 4, "edges capped, got {}", o.graph_edges());
        assert!(m.counter(crate::metric_names::ORACLE_GRAPH_EVICTIONS) > 0);
    }

    #[test]
    fn recompute_decay_drops_zero_weight_vertices() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        // Weight-1 vertices decay to zero at the recompute and must be
        // dropped, not retained forever.
        let eff = o.on_deliver(
            Payload::Hint {
                vertices: (0..4).map(|k| (LocKey(k), 1)).collect(),
                edges: vec![(LocKey(0), LocKey(1), 20)],
            },
            SimTime::from_millis(2),
            &mut m,
        );
        let eff = deliver_marker(&mut o, &eff, SimTime::from_millis(3), &mut m);
        assert!(eff.iter().any(|e| matches!(e, Effect::SchedulePlan { .. })));
        assert_eq!(o.graph_vertices(), 0, "decayed-to-zero vertices linger");
    }

    #[test]
    fn dssmr_access_migrates_keys_in_map() {
        let mut o: OracleCore<App> = OracleCore::new(OracleConfig {
            partitions: 2,
            mode: Mode::DsSmr,
            ..OracleConfig::default()
        });
        o.preload_map([(LocKey(0), PartitionId(0)), (LocKey(1), PartitionId(1))]);
        let mut m = Metrics::new();
        let c = access(vec![0, 10]); // keys 0 and 1
        let _ = o.on_deliver(
            Payload::Access {
                cmd: c,
                attempt: 0,
                expected: vec![
                    (crate::command::VarId(0), PartitionId(0)),
                    (crate::command::VarId(10), PartitionId(1)),
                ],
                target: PartitionId(1),
                keep: true,
            },
            now(),
            &mut m,
        );
        assert_eq!(o.location_of(LocKey(0)), Some(PartitionId(1)), "key migrated to target");
        assert_eq!(o.location_of(LocKey(1)), Some(PartitionId(1)));
    }

    /// A plan-timer firing with no plan pending doubles as a periodic
    /// re-evaluation point: if the change threshold was crossed while the
    /// timer was armed, the recompute starts right there.
    #[test]
    fn spurious_plan_timer_starts_overdue_recompute() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        // Nothing pending, nothing overdue: a spurious firing is a no-op.
        assert!(o.on_plan_timer(SimTime::from_millis(1), &mut m).is_empty());
        // Cross the change threshold *below* the min interval so the hint
        // itself cannot start the recompute (delivered at t=0 with a 1 ms
        // interval floor measured from t=0... use t=0 for the hint).
        let eff = o.on_deliver(
            Payload::Hint {
                vertices: (0..4).map(|k| (LocKey(k), 5)).collect(),
                edges: vec![(LocKey(0), LocKey(1), 20), (LocKey(2), LocKey(3), 20)],
            },
            SimTime::from_millis(0),
            &mut m,
        );
        assert!(
            !eff.iter().any(|e| matches!(e, Effect::SchedulePlan { .. })),
            "hint within the min interval must not start the recompute"
        );
        // The timer fires later with no pending plan: the overdue recompute
        // is proposed here instead of waiting for the next hint, and starts
        // at the marker's delivery.
        let eff = o.on_plan_timer(SimTime::from_millis(50), &mut m);
        assert!(
            eff.iter()
                .any(|e| matches!(e, Effect::Multicast { payload: Payload::Recompute { .. }, .. })),
            "spurious timer must propose the overdue recompute"
        );
        let eff = deliver_marker(&mut o, &eff, SimTime::from_millis(51), &mut m);
        assert!(eff.iter().any(|e| matches!(e, Effect::SchedulePlan { .. })));
        // And its completion publishes as usual, recording compute time.
        let eff = o.on_plan_timer(SimTime::from_millis(150), &mut m);
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Multicast { payload: Payload::Plan { version: 1, .. }, .. }
        )));
        let h = m.histogram(crate::metric_names::PLAN_COMPUTE_TIME).expect("compute time recorded");
        assert_eq!(h.count(), 1);
    }

    /// `MigrationRevert` restores a key's pre-plan location (first decision
    /// for the migration wins), so later prophecies route clients to the
    /// partition that actually holds the data.
    #[test]
    fn migration_revert_rolls_back_map_entry() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let _ = o.on_deliver(
            Payload::Plan { version: 1, moves: vec![(LocKey(0), PartitionId(0), PartitionId(1))] },
            now(),
            &mut m,
        );
        assert_eq!(o.location_of(LocKey(0)), Some(PartitionId(1)));
        let revert = Payload::MigrationRevert {
            version: 1,
            key: LocKey(0),
            from: PartitionId(0),
            to: PartitionId(1),
        };
        let _ = o.on_deliver(revert.clone(), now(), &mut m);
        assert_eq!(o.location_of(LocKey(0)), Some(PartitionId(0)), "revert rolls the map back");
        // A racing Done delivered after the revert settled must not flip
        // the entry again, and a duplicate revert is idempotent.
        let _ = o.on_deliver(
            Payload::MigrationDone {
                version: 1,
                key: LocKey(0),
                from: PartitionId(0),
                to: PartitionId(1),
            },
            now(),
            &mut m,
        );
        let _ = o.on_deliver(revert, now(), &mut m);
        assert_eq!(o.location_of(LocKey(0)), Some(PartitionId(0)));
    }

    /// `MigrationDone` settles the migration first-wins: a stray revert
    /// arriving after it must leave the committed location alone.
    #[test]
    fn migration_done_blocks_later_revert() {
        let mut o = oracle(2);
        let mut m = Metrics::new();
        let _ = o.on_deliver(
            Payload::Plan { version: 1, moves: vec![(LocKey(0), PartitionId(0), PartitionId(1))] },
            now(),
            &mut m,
        );
        let _ = o.on_deliver(
            Payload::MigrationDone {
                version: 1,
                key: LocKey(0),
                from: PartitionId(0),
                to: PartitionId(1),
            },
            now(),
            &mut m,
        );
        let _ = o.on_deliver(
            Payload::MigrationRevert {
                version: 1,
                key: LocKey(0),
                from: PartitionId(0),
                to: PartitionId(1),
            },
            now(),
            &mut m,
        );
        assert_eq!(o.location_of(LocKey(0)), Some(PartitionId(1)), "done settled first");
    }

    // --- shrink_weighted edge cases -------------------------------------

    #[test]
    fn shrink_cap_zero_empties_map() {
        let mut map: FastHashMap<u64, u64> = (0..8u64).map(|k| (k, 10 + k)).collect();
        let mut scratch = Vec::new();
        let removed = shrink_weighted(&mut map, 0, &mut scratch);
        assert_eq!(removed, 8);
        assert!(map.is_empty());
    }

    #[test]
    fn shrink_all_equal_weights_is_content_deterministic() {
        // All-equal weights: the (weight, key) selection must fall back to
        // key order, independent of hash-map iteration order.
        let run = |insert_order: &[u64]| -> Vec<u64> {
            let mut map: FastHashMap<u64, u64> = FastHashMap::default();
            for &k in insert_order {
                map.insert(k, 8); // halves to 4, nothing decays away
            }
            let mut scratch = Vec::new();
            shrink_weighted(&mut map, 3, &mut scratch);
            let mut left: Vec<u64> = map.keys().copied().collect();
            left.sort_unstable();
            left
        };
        let a = run(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let b = run(&[7, 3, 5, 1, 6, 0, 2, 4]);
        assert_eq!(a.len(), 3);
        assert_eq!(a, b, "survivors must not depend on insertion order");
        assert_eq!(a, vec![5, 6, 7], "ties evict the lowest keys");
    }

    #[test]
    fn shrink_exactly_at_cap_is_noop() {
        let mut map: FastHashMap<u64, u64> = (0..5u64).map(|k| (k, 1)).collect();
        let mut scratch = Vec::new();
        // len == cap: no decay pass, no eviction, weights untouched.
        assert_eq!(shrink_weighted(&mut map, 5, &mut scratch), 0);
        assert_eq!(map.len(), 5);
        assert!(map.values().all(|&w| w == 1), "at-cap map must not decay");
    }

    #[test]
    fn shrink_reuses_scratch_buffer() {
        let mut scratch = Vec::new();
        let mut map: FastHashMap<u64, u64> = (0..100u64).map(|k| (k, 100 + k)).collect();
        shrink_weighted(&mut map, 10, &mut scratch);
        let cap_after_first = scratch.capacity();
        assert!(cap_after_first >= 90);
        let mut map2: FastHashMap<u64, u64> = (0..50u64).map(|k| (k, 100 + k)).collect();
        shrink_weighted(&mut map2, 10, &mut scratch);
        assert_eq!(scratch.capacity(), cap_after_first, "second pass must reuse the buffer");
    }

    // --- oracle sharding -------------------------------------------------

    fn sharded(shards: u32, shard: u32) -> OracleCore<App> {
        let mut o = OracleCore::new(OracleConfig {
            partitions: 2,
            repartition_threshold: 5,
            min_plan_interval: SimDuration::from_millis(1),
            shards,
            shard,
            digest_threshold: 4,
            digest_interval: SimDuration::from_millis(10),
            ..OracleConfig::default()
        });
        o.preload_map((0..4).map(|k| (LocKey(k), PartitionId((k % 2) as u32))));
        o
    }

    #[test]
    fn location_view_reports_only_owned_slice() {
        let shards = 4u32;
        let full: Vec<(u64, u32)> = (0..4).map(|k| (k, (k % 2) as u32)).collect();
        let mut union: Vec<(u64, u32)> = Vec::new();
        for s in 0..shards {
            let o = sharded(shards, s);
            let view = o.location_view();
            for &(k, _) in &view {
                assert_eq!(shard_of(LocKey(k), shards), s, "key {k} outside shard {s}'s slice");
            }
            union.extend(view);
        }
        union.sort_unstable();
        assert_eq!(union, full, "shard views must partition the full map");
    }

    #[test]
    fn non_planner_ships_digest_at_threshold() {
        let mut o = sharded(4, 1);
        let mut m = Metrics::new();
        // 3 changes: below the threshold of 4 — nothing ships.
        let eff = o.on_deliver(
            Payload::Hint {
                vertices: vec![(LocKey(0), 5), (LocKey(1), 5)],
                edges: vec![(LocKey(0), LocKey(1), 9)],
            },
            SimTime::from_millis(1),
            &mut m,
        );
        assert!(eff.is_empty(), "sub-threshold delta must not ship");
        assert_eq!(o.graph_vertices(), 0, "non-planner must not grow its own graph");
        // One more change crosses the gate: a digest ships to the planner.
        let eff = o.on_deliver(
            Payload::Hint { vertices: vec![(LocKey(2), 7)], edges: vec![] },
            SimTime::from_millis(2),
            &mut m,
        );
        let digest = eff
            .iter()
            .find_map(|e| match e {
                Effect::Multicast {
                    mid,
                    oracle: OracleDest::Shard(0),
                    payload: Payload::GraphDigest { shard, seq, vertices, edges },
                    ..
                } => Some((*mid, *shard, *seq, vertices.clone(), edges.clone())),
                _ => None,
            })
            .expect("digest shipped at threshold");
        assert_eq!(digest.0, MsgId { origin: shard_origin(1), seq: 0, tag: tag::DIGEST });
        assert_eq!(digest.1, 1);
        assert_eq!(digest.2, 0);
        // Canonical key order, weights accumulated across hints.
        assert_eq!(digest.3, vec![(LocKey(0), 5), (LocKey(1), 5), (LocKey(2), 7)]);
        assert_eq!(digest.4, vec![(LocKey(0), LocKey(1), 9)]);
    }

    #[test]
    fn planner_merges_digest_like_hints() {
        let mut o = sharded(1, 0);
        let mut m = Metrics::new();
        let eff = o.on_deliver(
            Payload::GraphDigest {
                shard: 2,
                seq: 0,
                vertices: (0..4).map(|k| (LocKey(k), 5)).collect(),
                edges: vec![(LocKey(0), LocKey(1), 20), (LocKey(2), LocKey(3), 20)],
            },
            SimTime::from_millis(2),
            &mut m,
        );
        assert_eq!(o.graph_vertices(), 4);
        assert_eq!(o.graph_edges(), 2);
        // 6 changes >= threshold 5: the digest triggers the recompute
        // proposal exactly as a hint batch would.
        assert!(eff
            .iter()
            .any(|e| matches!(e, Effect::Multicast { payload: Payload::Recompute { .. }, .. })));
    }

    #[test]
    fn flush_marker_drains_lingering_delta() {
        let mut o = sharded(4, 2);
        let mut m = Metrics::new();
        let _ = o.on_deliver(
            Payload::Hint { vertices: vec![(LocKey(0), 3)], edges: vec![] },
            SimTime::from_millis(1),
            &mut m,
        );
        // Before the interval elapses a tick proposes nothing.
        assert!(o.on_tick(SimTime::from_millis(5), &mut m).is_empty());
        let eff = o.on_tick(SimTime::from_millis(20), &mut m);
        let (shard, seq) = eff
            .iter()
            .find_map(|e| match e {
                Effect::Multicast {
                    oracle: OracleDest::Shard(s),
                    payload: Payload::DigestFlush { shard, seq },
                    ..
                } => {
                    assert_eq!(*s, *shard, "flush marker targets its own shard group");
                    Some((*shard, *seq))
                }
                _ => None,
            })
            .expect("idle delta proposes a flush");
        assert_eq!((shard, seq), (2, 0));
        // A duplicate tick must not re-propose the same flush.
        assert!(o.on_tick(SimTime::from_millis(40), &mut m).is_empty());
        // Delivery of the marker drains the delta into a digest.
        let eff =
            o.on_deliver(Payload::DigestFlush { shard, seq }, SimTime::from_millis(41), &mut m);
        assert!(eff
            .iter()
            .any(|e| matches!(e, Effect::Multicast { payload: Payload::GraphDigest { .. }, .. })));
        // A stale (already-drained) marker no-ops.
        let eff =
            o.on_deliver(Payload::DigestFlush { shard, seq }, SimTime::from_millis(42), &mut m);
        assert!(eff.is_empty(), "stale flush marker must no-op");
    }

    #[test]
    fn missing_foreign_key_refers_client_back() {
        // Find a key absent from the map whose slice belongs to shard 1,
        // and query shard 0 (which cannot authoritatively reject it).
        let shards = 4u32;
        let missing = (100..).find(|&k| shard_of(LocKey(k), shards) == 1).unwrap();
        let mut m = Metrics::new();
        let mut non_owner = sharded(shards, 0);
        let eff = non_owner.on_deliver(
            Payload::Exec { cmd: access(vec![missing * 10]), attempt: 0 },
            now(),
            &mut m,
        );
        assert!(
            eff.iter().any(|e| matches!(e, Effect::Send { msg: Direct::Retry { .. }, .. })),
            "non-owner shard must refer, not reject"
        );
        assert!(!eff
            .iter()
            .any(|e| matches!(e, Effect::Send { msg: Direct::Prophecy { .. }, .. })));
        // The owner shard answers nok authoritatively.
        let mut owner = sharded(shards, 1);
        let eff = owner.on_deliver(
            Payload::Exec { cmd: access(vec![missing * 10]), attempt: 0 },
            now(),
            &mut m,
        );
        assert!(eff
            .iter()
            .any(|e| matches!(e, Effect::Send { msg: Direct::Prophecy { ok: false, .. }, .. })));
    }

    #[test]
    fn create_at_non_owner_shard_refers_client_back() {
        let shards = 4u32;
        let key = (100..).find(|&k| shard_of(LocKey(k), shards) == 3).unwrap();
        let mut o = sharded(shards, 0);
        let mut m = Metrics::new();
        let c = cmd(CommandKind::CreateKey { key: LocKey(key), vars: vec![] });
        let eff = o.on_deliver(Payload::Exec { cmd: c, attempt: 0 }, now(), &mut m);
        assert!(eff.iter().any(|e| matches!(e, Effect::Send { msg: Direct::Retry { .. }, .. })));
        assert!(!eff.iter().any(|e| matches!(e, Effect::Multicast { .. })));
    }
}
