//! Plan-history replay for migration settling.
//!
//! PR 6 settled `(version, key)` migration outcomes first-decision-wins in a
//! bounded [`RotatingSet`](dynastar_runtime::RotatingSet): whichever of
//! `MigrationDone` / `MigrationRevert` was delivered first won, and a revert
//! restored the key's *previous* location unconditionally. That is wrong the
//! moment plans chain: if plan v moves a key A→B and plan v+1 re-routes it
//! B→C while the v-transfer is still in flight, a give-up revert of v must
//! *not* put the key back at A — the cluster has already agreed (in total
//! order) that it belongs at C. The rotating set also *forgot* old decisions
//! under churn, so a late duplicate revert could re-settle as "first" and
//! silently flip ownership.
//!
//! [`PlanHistory`] replaces both uses. Per key it keeps a bounded,
//! version-ordered log of move records `(version, from, to, outcome)` plus a
//! monotone *floor*: the highest version folded out of the log. Settling a
//! decision marks the record and **replays** the whole history to compute the
//! current owner:
//!
//! * start from the base location (the destination of the last folded move,
//!   if any),
//! * walk records in version order: a `Reverted` move is skipped (annulled),
//!   any other move sets the location to its destination.
//!
//! The final location is the destination of the last non-reverted move — so
//! a revert of v with a chained move at v+1 leaves the owner at v+1's
//! destination, and a revert of the *last* move falls back to where the key
//! stood before it.
//!
//! Duplicates and stragglers are **default-deny**: a decision at or below the
//! floor, or for an already-decided record, returns [`Settle::Stale`] and
//! changes nothing. This is the opposite polarity of the rotating set (which
//! treated unknown as first) and is what makes the bound safe: forgetting a
//! decided move can only cause a late duplicate to be *ignored*, never
//! replayed.
//!
//! All state lives in `BTreeMap`s / `VecDeque`s and every operation is a pure
//! function of delivery order, so replicas driving this from the same total
//! order stay byte-identical.

use std::collections::{BTreeMap, VecDeque};

use crate::command::{LocKey, PartitionId};

/// Live records kept per key before the oldest fold into the floor. Decided
/// records fold eagerly, so the cap only bites when a key has this many
/// *undecided* chained moves — far beyond any real plan cadence.
pub const PLAN_HISTORY_PER_KEY: usize = 16;

/// Outcome of one planned move of one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveOutcome {
    /// Plan delivered, transfer not yet decided.
    Pending,
    /// `MigrationDone` delivered in total order.
    Done,
    /// `MigrationRevert` delivered in total order (source gave up).
    Reverted,
}

/// One planned move of one key, as recorded at plan delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveRecord {
    /// Plan version that scheduled the move.
    pub version: u64,
    /// Partition the key was leaving.
    pub from: PartitionId,
    /// Partition the key was moving to.
    pub to: PartitionId,
    /// Current outcome.
    pub outcome: MoveOutcome,
}

/// Result of [`PlanHistory::settle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Settle {
    /// First decision for this `(version, key)`; `owner` is the replayed
    /// current owner of the key after applying it.
    Applied { owner: PartitionId },
    /// Duplicate, or below the compaction floor — ignored.
    Stale,
}

/// Bounded per-key history of plan decisions.
#[derive(Debug, Clone, Default)]
struct KeyHistory {
    /// Highest move version folded out of `records`. Decisions at or below
    /// the floor are stale by definition.
    floor: u64,
    /// Owner implied by the folded prefix (destination of the last folded
    /// non-reverted move), if any move was ever folded.
    base: Option<PartitionId>,
    /// Version-ordered live records (floor-exclusive).
    records: VecDeque<MoveRecord>,
}

impl KeyHistory {
    /// Replay: base location, then every non-reverted move in version order.
    fn replay(&self) -> Option<PartitionId> {
        self.replay_versioned().map(|(loc, _)| loc)
    }

    /// Replay, also yielding the version of the move that set the final
    /// location (the floor for the folded base).
    fn replay_versioned(&self) -> Option<(PartitionId, u64)> {
        let mut loc = self.base.map(|b| (b, self.floor));
        for r in &self.records {
            if r.outcome != MoveOutcome::Reverted {
                loc = Some((r.to, r.version));
            }
        }
        loc
    }

    /// Fold fully-decided records off the front into `floor`/`base`, and
    /// enforce the per-key cap by folding oldest records even if pending
    /// (a pending move folded out counts as applied — same polarity as
    /// replay, and its eventual decision will land below the floor and be
    /// dropped as stale).
    fn compact(&mut self, cap: usize) {
        while let Some(front) = self.records.front() {
            let decided = front.outcome != MoveOutcome::Pending;
            if !decided && self.records.len() <= cap {
                break;
            }
            let r = self.records.pop_front().expect("front checked");
            self.floor = self.floor.max(r.version);
            if r.outcome != MoveOutcome::Reverted {
                self.base = Some(r.to);
            }
        }
    }
}

/// Bounded per-key log of plan decisions with settle-by-replay.
///
/// One instance lives in each [`ServerCore`](crate::server::ServerCore) and
/// [`OracleCore`](crate::oracle::OracleCore); both are driven purely from
/// totally-ordered deliveries, so all replicas hold identical histories.
#[derive(Debug, Clone)]
pub struct PlanHistory {
    keys: BTreeMap<LocKey, KeyHistory>,
    /// Max live records per key before oldest are folded into the floor.
    cap: usize,
}

impl PlanHistory {
    pub fn new(cap: usize) -> Self {
        Self { keys: BTreeMap::new(), cap: cap.max(1) }
    }

    /// Record a planned move at plan delivery. Idempotent per
    /// `(version, key)`; out-of-order versions are ignored (plans are
    /// delivered in total order, so versions only grow).
    pub fn record_move(&mut self, key: LocKey, version: u64, from: PartitionId, to: PartitionId) {
        let h = self.keys.entry(key).or_default();
        if version <= h.floor {
            return;
        }
        if let Some(back) = h.records.back() {
            if version <= back.version {
                return;
            }
        }
        h.records.push_back(MoveRecord { version, from, to, outcome: MoveOutcome::Pending });
        h.compact(self.cap);
    }

    /// Settle a `MigrationDone` / `MigrationRevert` decision and replay the
    /// key's history. If the record is missing but the version is above the
    /// floor (possible only if the record was capped out — deliveries are
    /// totally ordered so the plan always precedes its decision), the record
    /// is recreated from the message's own `(from, to)`, which every
    /// decision payload carries.
    pub fn settle(
        &mut self,
        key: LocKey,
        version: u64,
        from: PartitionId,
        to: PartitionId,
        outcome: MoveOutcome,
    ) -> Settle {
        debug_assert!(outcome != MoveOutcome::Pending, "settle with a decision");
        let cap = self.cap;
        let h = self.keys.entry(key).or_default();
        if version <= h.floor {
            return Settle::Stale;
        }
        match h.records.iter_mut().find(|r| r.version == version) {
            Some(r) => {
                if r.outcome != MoveOutcome::Pending {
                    return Settle::Stale;
                }
                r.outcome = outcome;
            }
            None => {
                let idx = h.records.partition_point(|r| r.version < version);
                h.records.insert(idx, MoveRecord { version, from, to, outcome });
            }
        }
        h.compact(cap);
        let owner = h.replay();
        match owner {
            Some(owner) => Settle::Applied { owner },
            // Every path that reaches here inserted at least a base.
            None => {
                Settle::Applied { owner: if outcome == MoveOutcome::Reverted { from } else { to } }
            }
        }
    }

    /// Has `(version, key)` been decided (done or reverted)? Versions at or
    /// below the floor count as decided — default-deny for stragglers.
    pub fn decided(&self, version: u64, key: LocKey) -> bool {
        match self.keys.get(&key) {
            None => false,
            Some(h) => {
                version <= h.floor
                    || h.records
                        .iter()
                        .any(|r| r.version == version && r.outcome != MoveOutcome::Pending)
            }
        }
    }

    /// Current owner of `key` implied by replaying its history, if the key
    /// has any history at all.
    pub fn resolved_owner(&self, key: LocKey) -> Option<PartitionId> {
        self.keys.get(&key).and_then(KeyHistory::replay)
    }

    /// [`Self::resolved_owner`] plus the version of the move that made it
    /// owner — the version a primary shipment to that owner must carry so
    /// the receiver's plan-version buffering resolves it correctly.
    pub fn resolved_owner_versioned(&self, key: LocKey) -> Option<(PartitionId, u64)> {
        self.keys.get(&key).and_then(KeyHistory::replay_versioned)
    }

    /// Was this specific move decided `Reverted`? Below-floor versions
    /// answer `false` — the outcome is forgotten, and callers use this only
    /// to skip taking ownership for a freshly delivered (hence above-floor)
    /// plan move.
    pub fn reverted(&self, version: u64, key: LocKey) -> bool {
        self.keys.get(&key).is_some_and(|h| {
            h.records.iter().any(|r| r.version == version && r.outcome == MoveOutcome::Reverted)
        })
    }

    /// Number of keys with live history (for tests / introspection).
    pub fn tracked_keys(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: LocKey = LocKey(7);
    const A: PartitionId = PartitionId(0);
    const B: PartitionId = PartitionId(1);
    const C: PartitionId = PartitionId(2);

    #[test]
    fn done_settles_at_destination() {
        let mut h = PlanHistory::new(64);
        h.record_move(K, 1, A, B);
        assert_eq!(h.settle(K, 1, A, B, MoveOutcome::Done), Settle::Applied { owner: B });
        assert_eq!(h.resolved_owner(K), Some(B));
        assert!(h.decided(1, K));
    }

    #[test]
    fn revert_of_sole_move_restores_source() {
        let mut h = PlanHistory::new(64);
        h.record_move(K, 1, A, B);
        assert_eq!(h.settle(K, 1, A, B, MoveOutcome::Reverted), Settle::Applied { owner: A });
        // With no surviving move the history cannot name the key's home —
        // settle's fallback (the revert's own `from`) supplied it above,
        // and callers of resolved_owner treat None as "stays put".
        assert_eq!(h.resolved_owner(K), None);
    }

    #[test]
    fn revert_composes_with_chained_move() {
        // Plan 1: A→B in flight; plan 2 re-routes B→C; then the v1 transfer
        // gives up. The revert must NOT bounce the key back to A: replay
        // skips the annulled v1 move and keeps v2's destination.
        let mut h = PlanHistory::new(64);
        h.record_move(K, 1, A, B);
        h.record_move(K, 2, B, C);
        assert_eq!(h.settle(K, 1, A, B, MoveOutcome::Reverted), Settle::Applied { owner: C });
        assert_eq!(h.settle(K, 2, B, C, MoveOutcome::Done), Settle::Applied { owner: C });
        assert_eq!(h.resolved_owner(K), Some(C));
    }

    #[test]
    fn revert_of_chained_move_falls_back() {
        // v1 done, v2 reverted → key stands where v1 put it.
        let mut h = PlanHistory::new(64);
        h.record_move(K, 1, A, B);
        h.record_move(K, 2, B, C);
        assert_eq!(h.settle(K, 2, B, C, MoveOutcome::Reverted), Settle::Applied { owner: B });
        assert_eq!(h.settle(K, 1, A, B, MoveOutcome::Done), Settle::Applied { owner: B });
    }

    #[test]
    fn duplicate_decisions_are_stale() {
        let mut h = PlanHistory::new(64);
        h.record_move(K, 1, A, B);
        assert_eq!(h.settle(K, 1, A, B, MoveOutcome::Done), Settle::Applied { owner: B });
        assert_eq!(h.settle(K, 1, A, B, MoveOutcome::Reverted), Settle::Stale);
        assert_eq!(h.settle(K, 1, A, B, MoveOutcome::Done), Settle::Stale);
        assert_eq!(h.resolved_owner(K), Some(B));
    }

    #[test]
    fn late_duplicate_below_floor_is_stale_even_after_churn() {
        // Regression for the RotatingSet amnesia bug: after the bounded log
        // folds a decision out, a late duplicate revert must stay ignored —
        // never re-apply as "first".
        let mut h = PlanHistory::new(4);
        let mut at = A;
        for v in 1..=64u64 {
            let to = if at == A { B } else { A };
            h.record_move(K, v, at, to);
            assert!(matches!(h.settle(K, v, at, to, MoveOutcome::Done), Settle::Applied { .. }));
            at = to;
        }
        let owner = h.resolved_owner(K).unwrap();
        // Version 1 is long folded out; the duplicate revert is dropped.
        assert_eq!(h.settle(K, 1, A, B, MoveOutcome::Reverted), Settle::Stale);
        assert_eq!(h.resolved_owner(K), Some(owner));
        assert!(h.decided(1, K), "below-floor counts as decided (default-deny)");
    }

    #[test]
    fn missing_record_recreated_from_message() {
        // Decision for a version we never recorded (capped out) but above
        // the floor: recreate from the payload's own from/to.
        let mut h = PlanHistory::new(64);
        assert_eq!(h.settle(K, 3, B, C, MoveOutcome::Done), Settle::Applied { owner: C });
        assert_eq!(h.resolved_owner(K), Some(C));
    }

    #[test]
    fn pending_cap_raises_floor() {
        let mut h = PlanHistory::new(2);
        h.record_move(K, 1, A, B);
        h.record_move(K, 2, B, C);
        h.record_move(K, 3, C, A); // folds v1 out even though pending
        assert!(h.decided(1, K), "folded pending move is below the floor");
        assert_eq!(h.settle(K, 1, A, B, MoveOutcome::Reverted), Settle::Stale);
        assert_eq!(h.settle(K, 3, C, A, MoveOutcome::Done), Settle::Applied { owner: A });
    }

    #[test]
    fn replay_is_order_independent_of_decision_arrival() {
        // Decisions for v1 and v2 can be delivered in either order (they
        // come from different source partitions); replay must converge.
        let mk = || {
            let mut h = PlanHistory::new(64);
            h.record_move(K, 1, A, B);
            h.record_move(K, 2, B, C);
            h
        };
        let mut h1 = mk();
        h1.settle(K, 1, A, B, MoveOutcome::Reverted);
        h1.settle(K, 2, B, C, MoveOutcome::Done);
        let mut h2 = mk();
        h2.settle(K, 2, B, C, MoveOutcome::Done);
        h2.settle(K, 1, A, B, MoveOutcome::Reverted);
        assert_eq!(h1.resolved_owner(K), h2.resolved_owner(K));
        assert_eq!(h1.resolved_owner(K), Some(C));
    }
}
