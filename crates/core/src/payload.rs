//! Wire payloads: atomically multicast messages and direct (unordered)
//! messages.

use dynastar_amcast::MsgId;
use dynastar_runtime::NodeId;

use crate::command::{Application, Command, LocKey, PartitionId, VarId};

/// Payloads carried by the atomic multicast layer (everything whose
/// relative order matters).
#[derive(Debug)]
pub enum Payload<A: Application> {
    /// Client → oracle: request routing (and dispatch) of a command
    /// (Algorithm 1 line 2).
    Exec {
        /// The command.
        cmd: Command<A>,
        /// Dispatch attempt number (0 = first try); bumped on retries so
        /// every dispatch multicast has a fresh message id.
        attempt: u32,
    },
    /// Oracle or cached client → involved partitions: execute an access
    /// command. Carries the sender's routing decision so all destinations
    /// agree without consulting their own (possibly differing) maps.
    Access {
        /// The command.
        cmd: Command<A>,
        /// Dispatch attempt number.
        attempt: u32,
        /// For every accessed variable, the partition expected to hold it.
        expected: Vec<(VarId, PartitionId)>,
        /// The partition chosen to execute (most variables, ties by id).
        target: PartitionId,
        /// DS-SMR mode: borrowed keys stay at the target (permanent
        /// migration) instead of returning.
        keep: bool,
    },
    /// Oracle → {oracle, partition}: coordinate creation of a new key
    /// (Algorithm 2 Task 1 / Algorithm 3 Task 2).
    CreateKey {
        /// The create command.
        cmd: Command<A>,
        /// The partition chosen for the new key.
        dest: PartitionId,
    },
    /// Oracle → {oracle, partition}: coordinate removal of a key.
    DeleteKey {
        /// The delete command.
        cmd: Command<A>,
        /// The partition currently owning the key.
        dest: PartitionId,
    },
    /// Partition → oracle: workload-graph hints (Algorithm 2 Task 4).
    Hint {
        /// `(key, access count)` vertex increments.
        vertices: Vec<(LocKey, u64)>,
        /// `(key a, key b, weight)` co-access edge increments.
        edges: Vec<(LocKey, LocKey, u64)>,
    },
    /// Oracle → all partitions + oracle: a new partitioning plan
    /// (Algorithm 2 Task 5 / Algorithm 3 Task 3).
    Plan {
        /// Monotone plan version.
        version: u64,
        /// Key movements: `(key, from, to)`.
        moves: Vec<(LocKey, PartitionId, PartitionId)>,
    },
    /// Oracle replicas → oracle: agree on the log position from which the
    /// next repartitioning computes. The recompute gates mix replica-local
    /// delivery time (the minimum-interval check), so replicas can pass
    /// them at *different* hints; acting on the gates directly would have
    /// each replica snapshot a different workload graph and publish
    /// divergent plans under the same deterministic plan id — receivers
    /// then keep whichever copy arrives first and the cluster's view of
    /// the plan splits. Instead a replica whose local gates pass proposes
    /// this marker (same id on every replica, delivered once), and the
    /// compute snapshots the graph at the marker's delivery position —
    /// identical everywhere.
    Recompute {
        /// The plan version this proposal would produce.
        version: u64,
    },
    /// Destination replicas → {source, destination, oracle}: a *staged*
    /// migration's chunks are all buffered at the destination; delivery
    /// in total order is the commit point at which the destination
    /// installs them and takes over. Every destination replica submits
    /// the same deterministic message id, so the multicast layer delivers
    /// it once. See DESIGN.md "Staged migration".
    MigrationDone {
        /// The plan version that started the migration.
        version: u64,
        /// The migrated key.
        key: LocKey,
        /// The old owner.
        from: PartitionId,
        /// The new owner.
        to: PartitionId,
    },
    /// Source replicas → {source, destination, oracle}: chunk delivery to
    /// the destination group exhausted its retries; cancel the staged
    /// migration and fall back to the previous plan for this key.
    /// Delivery in total order decides the race against
    /// [`Payload::MigrationDone`]: whichever lands first wins, the other
    /// is ignored.
    MigrationRevert {
        /// The plan version that started the migration.
        version: u64,
        /// The key whose move is cancelled.
        key: LocKey,
        /// The old owner (ownership returns here).
        from: PartitionId,
        /// The destination that never finished receiving.
        to: PartitionId,
    },
    /// Non-planner oracle shard → planner shard: a drained slice of the
    /// shard's pending workload-graph delta. The planner merges digests
    /// into its graph exactly like [`Payload::Hint`]s; every replica of
    /// the originating shard drains the same delta at the same delivery
    /// position and submits the same deterministic message id, so the
    /// multicast layer delivers each digest once.
    GraphDigest {
        /// The originating oracle shard.
        shard: u32,
        /// The shard's digest sequence number (dedups the replicas'
        /// copies via the message id).
        seq: u32,
        /// `(key, access count)` vertex increments since the last digest.
        vertices: Vec<(LocKey, u64)>,
        /// `(key a, key b, weight)` edge increments since the last digest.
        edges: Vec<(LocKey, LocKey, u64)>,
    },
    /// Oracle shard replicas → own shard group: agree on the log position
    /// at which a lingering (sub-threshold) delta is drained into a
    /// digest. Same reasoning as [`Payload::Recompute`]: the trickle
    /// timer is replica-local, so acting on it directly would have each
    /// replica drain a different delta; the marker's delivery position
    /// makes the drain identical everywhere.
    DigestFlush {
        /// The shard whose delta should be drained.
        shard: u32,
        /// The digest sequence this flush proposes to emit; stale
        /// markers (the delta already shipped via the count gate) no-op.
        seq: u32,
    },
}

/// Direct point-to-point messages (reliable, unordered across sources;
/// made per-link FIFO by the transport). Sent replica→replica or
/// replica→client; receivers deduplicate since every replica of a group
/// sends a copy.
#[derive(Debug)]
pub enum Direct<A: Application> {
    /// Oracle → client: the prophecy (Algorithm 1 line 3).
    Prophecy {
        /// The command this answers.
        cmd: MsgId,
        /// `false` when the command cannot execute (unknown/duplicate key).
        ok: bool,
        /// Fresh `key → partition` facts for the client's cache.
        locations: Vec<(LocKey, PartitionId)>,
        /// The oracle's current plan version (cache stamping).
        version: u64,
    },
    /// Executing partition → client: the command's result.
    Reply {
        /// The command this answers.
        cmd: MsgId,
        /// Attempt being answered.
        attempt: u32,
        /// The application-level reply.
        reply: A::Reply,
    },
    /// Partition → client: routing was stale; re-resolve via the oracle
    /// (§4.3).
    Retry {
        /// The command to retry.
        cmd: MsgId,
        /// Attempt that failed.
        attempt: u32,
    },
    /// Partition → client: a create/delete completed ("ok", Algorithm 3
    /// line 22).
    Ack {
        /// The completed command.
        cmd: MsgId,
    },
    /// Non-target partition → target: the variables the target borrows
    /// (Algorithm 3 line 16). `None` values mean "the variable does not
    /// exist here" — still an authoritative answer.
    VarsForCmd {
        /// The command being served.
        cmd: MsgId,
        /// Attempt being served.
        attempt: u32,
        /// The sending partition.
        from: PartitionId,
        /// The borrowed variables.
        vars: Vec<(VarId, Option<A::Value>)>,
    },
    /// Target → non-target partitions: borrowed variables going home with
    /// their post-execution values (Algorithm 3 line 13).
    VarsReturn {
        /// The command that borrowed.
        cmd: MsgId,
        /// Attempt that borrowed.
        attempt: u32,
        /// The returned variables (post-execution).
        vars: Vec<(VarId, Option<A::Value>)>,
    },
    /// Any involved partition → target: the command cannot execute here
    /// (stale routing); abandon it.
    Abort {
        /// The doomed command.
        cmd: MsgId,
        /// Attempt that failed.
        attempt: u32,
        /// Partition that detected the mismatch.
        missing_at: PartitionId,
    },
    /// Oracle ⇄ partition rendezvous for create/delete coordination
    /// (Algorithm 2 Task 2/3, Algorithm 3 Task 2).
    Signal {
        /// The create/delete command.
        cmd: MsgId,
        /// Sending side's group: `None` = oracle, `Some(p)` = partition.
        from_partition: Option<PartitionId>,
    },
    /// Old owner → new owner: a migrating key's variables (plan
    /// application, Algorithm 3 Task 3).
    PlanVars {
        /// The plan version that triggered the migration.
        version: u64,
        /// The migrating key.
        key: LocKey,
        /// The sending (old owner) partition.
        from: PartitionId,
        /// The key's variables present at the old owner (`None` entries in
        /// supplements mean the variable was deleted while lent).
        vars: Vec<(VarId, Option<A::Value>)>,
        /// Variables of the key currently lent out; they follow in a
        /// supplement once returned. Commands touching them must wait.
        pending: Vec<VarId>,
        /// `false` for supplements delivering previously-pending variables.
        primary: bool,
    },
    /// Old owner → new owner: one rate-limited chunk of a *staged*
    /// migration's variables. No dedup key: chunks are resent on timeout
    /// and receivers handle them idempotently (buffering overwrites with
    /// identical data) and *always* answer with a
    /// [`Direct::PlanVarsAck`], even for duplicates, so a lost ack does
    /// not wedge the sender.
    PlanVarsChunk {
        /// The plan version that triggered the migration.
        version: u64,
        /// The migrating key.
        key: LocKey,
        /// The sending (old owner) partition.
        from: PartitionId,
        /// Chunk index, `0..total`.
        chunk: u32,
        /// Total number of chunks for this key.
        total: u32,
        /// The chunk's variables.
        vars: Vec<(VarId, Option<A::Value>)>,
    },
    /// New owner → old owner: acknowledges receipt of one staged chunk.
    /// No dedup key: acks are idempotent at the sender (a stale ack for
    /// an already-acked chunk is ignored).
    PlanVarsAck {
        /// The plan version of the migration.
        version: u64,
        /// The migrating key.
        key: LocKey,
        /// The acknowledged chunk index.
        chunk: u32,
    },
    /// S-SMR state exchange: each involved partition sends its variables to
    /// every other involved partition, then all execute.
    SsmrExchange {
        /// The command being exchanged for.
        cmd: MsgId,
        /// Attempt number.
        attempt: u32,
        /// The sending partition.
        from: PartitionId,
        /// Its variables (authoritative `None` = absent).
        vars: Vec<(VarId, Option<A::Value>)>,
    },
}

/// Deduplication key for direct messages: every replica of a group sends
/// its own copy of group-originated messages, so receivers drop all but
/// the first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DedupKey {
    /// Key for [`Direct::VarsForCmd`].
    VarsForCmd(MsgId, u32, PartitionId),
    /// Key for [`Direct::VarsReturn`].
    VarsReturn(MsgId, u32),
    /// Key for [`Direct::Abort`].
    Abort(MsgId, u32, PartitionId),
    /// Key for [`Direct::Signal`].
    Signal(MsgId, Option<PartitionId>),
    /// Key for [`Direct::PlanVars`]; the bool is `primary`.
    PlanVars(u64, LocKey, PartitionId, bool),
    /// Key for [`Direct::SsmrExchange`].
    SsmrExchange(MsgId, u32, PartitionId),
}

impl<A: Application> Direct<A> {
    /// The receiver-side dedup key, when the message type needs one.
    /// Client-addressed messages return `None`: clients dedup against
    /// their single outstanding command instead.
    pub fn dedup_key(&self) -> Option<DedupKey> {
        match self {
            Direct::Prophecy { .. }
            | Direct::Reply { .. }
            | Direct::Retry { .. }
            | Direct::Ack { .. } => None,
            // Deliberately no dedup: retransmitted chunks/acks must reach
            // the idempotent handlers (a deduped resend would never be
            // re-acked and the transfer would stall forever).
            Direct::PlanVarsChunk { .. } | Direct::PlanVarsAck { .. } => None,
            Direct::VarsForCmd { cmd, attempt, from, .. } => {
                Some(DedupKey::VarsForCmd(*cmd, *attempt, *from))
            }
            Direct::VarsReturn { cmd, attempt, .. } => Some(DedupKey::VarsReturn(*cmd, *attempt)),
            Direct::Abort { cmd, attempt, missing_at } => {
                Some(DedupKey::Abort(*cmd, *attempt, *missing_at))
            }
            Direct::Signal { cmd, from_partition } => Some(DedupKey::Signal(*cmd, *from_partition)),
            Direct::PlanVars { version, key, from, primary, .. } => {
                Some(DedupKey::PlanVars(*version, *key, *from, *primary))
            }
            Direct::SsmrExchange { cmd, attempt, from, .. } => {
                Some(DedupKey::SsmrExchange(*cmd, *attempt, *from))
            }
        }
    }
}

/// Where a core wants a direct message sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// Every replica of a partition group.
    Partition(PartitionId),
    /// Every replica of every oracle shard group.
    Oracle,
    /// A single client process.
    Client(NodeId),
}

/// Which oracle shard groups a multicast also targets (beyond its
/// partition groups). The oracle is sharded into `O` independent
/// replicated groups (DESIGN.md §7); `O = 1` collapses every variant to
/// the single oracle group, reproducing the unsharded wire traffic
/// byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleDest {
    /// No oracle shard is a destination.
    None,
    /// Every oracle shard group — map-updating traffic (create/delete
    /// coordination, plans, migration settling) that all slices must
    /// observe in the same total order.
    All,
    /// One oracle shard group by shard index.
    Shard(u32),
}

/// An effect requested by a protocol core (oracle/server/client logic),
/// turned into actual I/O by the hosting actor.
#[derive(Debug)]
pub enum Effect<A: Application> {
    /// Atomically multicast `payload` to `groups` with message id `mid`.
    /// Group ids follow the cluster convention: partition `i` = group `i`,
    /// oracle shard `s` = group `k + s` for `k` partitions.
    Multicast {
        /// Unique (or deterministically shared) message id.
        mid: MsgId,
        /// Destination partition groups.
        partitions: Vec<PartitionId>,
        /// Oracle shard groups that are also destinations.
        oracle: OracleDest,
        /// The payload.
        payload: Payload<A>,
    },
    /// Send a direct message.
    Send {
        /// The destination.
        to: Destination,
        /// The message.
        msg: Direct<A>,
    },
    /// Oracle only: schedule plan publication after the modelled
    /// partitioner compute time.
    SchedulePlan {
        /// Modelled compute duration.
        after: dynastar_runtime::SimDuration,
    },
    /// Partition only: wake the core at the given time (modelled CPU
    /// becomes free).
    Wake {
        /// Absolute wake-up time.
        at: dynastar_runtime::SimTime,
    },
}

impl<A: Application> Clone for Payload<A> {
    fn clone(&self) -> Self {
        match self {
            Payload::Exec { cmd, attempt } => Payload::Exec { cmd: cmd.clone(), attempt: *attempt },
            Payload::Access { cmd, attempt, expected, target, keep } => Payload::Access {
                cmd: cmd.clone(),
                attempt: *attempt,
                expected: expected.clone(),
                target: *target,
                keep: *keep,
            },
            Payload::CreateKey { cmd, dest } => {
                Payload::CreateKey { cmd: cmd.clone(), dest: *dest }
            }
            Payload::DeleteKey { cmd, dest } => {
                Payload::DeleteKey { cmd: cmd.clone(), dest: *dest }
            }
            Payload::Hint { vertices, edges } => {
                Payload::Hint { vertices: vertices.clone(), edges: edges.clone() }
            }
            Payload::Plan { version, moves } => {
                Payload::Plan { version: *version, moves: moves.clone() }
            }
            Payload::Recompute { version } => Payload::Recompute { version: *version },
            Payload::MigrationDone { version, key, from, to } => {
                Payload::MigrationDone { version: *version, key: *key, from: *from, to: *to }
            }
            Payload::MigrationRevert { version, key, from, to } => {
                Payload::MigrationRevert { version: *version, key: *key, from: *from, to: *to }
            }
            Payload::GraphDigest { shard, seq, vertices, edges } => Payload::GraphDigest {
                shard: *shard,
                seq: *seq,
                vertices: vertices.clone(),
                edges: edges.clone(),
            },
            Payload::DigestFlush { shard, seq } => {
                Payload::DigestFlush { shard: *shard, seq: *seq }
            }
        }
    }
}

impl<A: Application> Clone for Direct<A> {
    fn clone(&self) -> Self {
        match self {
            Direct::Prophecy { cmd, ok, locations, version } => Direct::Prophecy {
                cmd: *cmd,
                ok: *ok,
                locations: locations.clone(),
                version: *version,
            },
            Direct::Reply { cmd, attempt, reply } => {
                Direct::Reply { cmd: *cmd, attempt: *attempt, reply: reply.clone() }
            }
            Direct::Retry { cmd, attempt } => Direct::Retry { cmd: *cmd, attempt: *attempt },
            Direct::Ack { cmd } => Direct::Ack { cmd: *cmd },
            Direct::VarsForCmd { cmd, attempt, from, vars } => {
                Direct::VarsForCmd { cmd: *cmd, attempt: *attempt, from: *from, vars: vars.clone() }
            }
            Direct::VarsReturn { cmd, attempt, vars } => {
                Direct::VarsReturn { cmd: *cmd, attempt: *attempt, vars: vars.clone() }
            }
            Direct::Abort { cmd, attempt, missing_at } => {
                Direct::Abort { cmd: *cmd, attempt: *attempt, missing_at: *missing_at }
            }
            Direct::Signal { cmd, from_partition } => {
                Direct::Signal { cmd: *cmd, from_partition: *from_partition }
            }
            Direct::PlanVars { version, key, from, vars, pending, primary } => Direct::PlanVars {
                version: *version,
                key: *key,
                from: *from,
                vars: vars.clone(),
                pending: pending.clone(),
                primary: *primary,
            },
            Direct::PlanVarsChunk { version, key, from, chunk, total, vars } => {
                Direct::PlanVarsChunk {
                    version: *version,
                    key: *key,
                    from: *from,
                    chunk: *chunk,
                    total: *total,
                    vars: vars.clone(),
                }
            }
            Direct::PlanVarsAck { version, key, chunk } => {
                Direct::PlanVarsAck { version: *version, key: *key, chunk: *chunk }
            }
            Direct::SsmrExchange { cmd, attempt, from, vars } => Direct::SsmrExchange {
                cmd: *cmd,
                attempt: *attempt,
                from: *from,
                vars: vars.clone(),
            },
        }
    }
}

impl<A: Application> Clone for Effect<A> {
    fn clone(&self) -> Self {
        match self {
            Effect::Multicast { mid, partitions, oracle, payload } => Effect::Multicast {
                mid: *mid,
                partitions: partitions.clone(),
                oracle: *oracle,
                payload: payload.clone(),
            },
            Effect::Send { to, msg } => Effect::Send { to: *to, msg: msg.clone() },
            Effect::SchedulePlan { after } => Effect::SchedulePlan { after: *after },
            Effect::Wake { at } => Effect::Wake { at: *at },
        }
    }
}
