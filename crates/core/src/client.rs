//! The client protocol core (paper Algorithm 1 and the §4.3 location
//! cache) and the workload-driver abstraction.

use dynastar_amcast::MsgId;
use dynastar_runtime::{
    CounterId, FastHashMap, HistogramId, Metrics, NodeId, SeriesId, SimDuration, SimTime,
};
use rand::rngs::StdRng;

use crate::command::{Application, Command, CommandKind, LocKey, Mode, PartitionId};
use crate::metric_names as mn;
use crate::payload::{Direct, Effect, OracleDest, Payload};
use crate::routing::{compute_route, exec_shard};

/// Generates the stream of commands a closed-loop client issues.
///
/// Implementations may keep state (e.g. the social graph for Chirper, the
/// warehouse layout for TPC-C); `next_command` is called once per completed
/// command.
pub trait Workload<A: Application>: 'static {
    /// The next command to issue at simulated time `now`, or `None` when
    /// the workload is done.
    fn next_command(&mut self, now: SimTime, rng: &mut StdRng) -> Option<CommandKind<A>>;

    /// Observes a completed command at time `now` (default: ignore).
    fn on_completed(&mut self, now: SimTime, cmd: &Command<A>, reply: Option<&A::Reply>) {
        let _ = (now, cmd, reply);
    }

    /// Delay before the next command is issued (default: zero — a pure
    /// closed loop). A paced workload returns a positive duration to
    /// model think time, stretching a bounded command budget across a
    /// long run (e.g. so a short recorded history spans a mid-run fault
    /// window).
    fn think_time(&mut self, now: SimTime, rng: &mut StdRng) -> SimDuration {
        let _ = (now, rng);
        SimDuration::ZERO
    }
}

/// Completion notification surfaced to the driving actor.
#[derive(Debug, Clone)]
pub enum ClientEvent<A: Application> {
    /// The outstanding command finished.
    Completed {
        /// The finished command.
        cmd: Command<A>,
        /// The application reply (`None` for create/delete acks).
        reply: Option<A::Reply>,
        /// End-to-end latency.
        latency: SimDuration,
        /// Whether the command ultimately failed (`nok` prophecy).
        ok: bool,
    },
}

#[derive(Debug)]
struct Outstanding<A: Application> {
    cmd: Command<A>,
    attempt: u32,
    issued_at: SimTime,
}

/// Client-side protocol logic: location cache, oracle fallback, retry.
///
/// Drive it with [`ClientCore::issue`], [`ClientCore::on_direct`] and
/// [`ClientCore::on_timeout`]; a closed-loop client issues the next
/// command when [`ClientEvent::Completed`] surfaces.
pub struct ClientCore<A: Application> {
    id: NodeId,
    mode: Mode,
    seq: u32,
    /// `key → (partition, plan version the fact came from)`. Entries from a
    /// plan older than [`ClientCore::plan_version`] are flushed wholesale
    /// when a newer version is observed — without the version tag, every
    /// stale entry would cost its own NOK round-trip before being evicted.
    cache: FastHashMap<LocKey, (PartitionId, u64)>,
    /// Highest oracle plan version observed in prophecies.
    plan_version: u64,
    outstanding: Option<Outstanding<A>>,
    /// Base delay before re-dispatching after a `Retry` (stale routing).
    /// Zero (the default) re-dispatches immediately; non-zero turns the
    /// retry storm a migration causes into backpressure — each retry of
    /// the same command backs off exponentially from this base.
    retry_backoff: SimDuration,
    /// A retry the core chose to delay: `(attempt, due)`. Dispatched when
    /// the actor's backoff timer fires ([`ClientCore::on_backoff`]);
    /// cleared by completion or response timeout.
    deferred: Option<(u32, SimTime)>,
    /// Number of oracle shard groups in the deployment; oracle `Exec`
    /// queries route by [`exec_shard`].
    oracle_shards: u32,
    /// Whether routing facts are cached at all. Disabled, every command
    /// goes through an oracle query — the permanently-cold-cache client
    /// the fig8 flash-crowd benchmark models.
    caching: bool,
    /// Interned metric handles for the per-command completion path, tagged
    /// with the registry they were minted under — the threaded harness
    /// hands cores a fresh scratch `Metrics` per call, so a bare cache
    /// would index into the wrong instance.
    mids: Option<(u64, ClientMetricIds)>,
}

/// Dense metric ids recorded per completed/retried/timed-out command.
#[derive(Debug, Clone, Copy)]
struct ClientMetricIds {
    cmd_retry: CounterId,
    s_cmd_retry: SeriesId,
    cmd_completed: CounterId,
    s_cmd_completed: SeriesId,
    cmd_latency: HistogramId,
    cmd_timeout: CounterId,
    cmd_retry_backoff: CounterId,
    cmd_failed: CounterId,
}

impl<A: Application> ClientCore<A> {
    /// Creates a client core. `id` doubles as the message-id origin.
    pub fn new(id: NodeId, mode: Mode) -> Self {
        ClientCore {
            id,
            mode,
            seq: 0,
            cache: FastHashMap::default(),
            plan_version: 0,
            outstanding: None,
            retry_backoff: SimDuration::ZERO,
            deferred: None,
            oracle_shards: 1,
            caching: true,
            mids: None,
        }
    }

    /// Sets the base retry backoff (see the field docs). Zero disables
    /// deferral and reproduces the immediate-retry behaviour.
    pub fn set_retry_backoff(&mut self, backoff: SimDuration) {
        self.retry_backoff = backoff;
    }

    /// Tells the core how many oracle shard groups the deployment runs,
    /// so `Exec` queries route to the right shard (see [`exec_shard`]).
    pub fn set_oracle_shards(&mut self, shards: u32) {
        assert!(shards > 0, "need at least one oracle shard");
        self.oracle_shards = shards;
    }

    /// Enables or disables the location cache. Disabled, every dispatch
    /// goes through the oracle and prophecy facts are not retained.
    pub fn set_location_cache(&mut self, on: bool) {
        self.caching = on;
        if !on {
            self.cache.clear();
        }
    }

    /// The interned metric ids, resolving them on first use (and again
    /// whenever a different registry shows up).
    fn mids(&mut self, metrics: &mut Metrics) -> ClientMetricIds {
        if let Some((reg, ids)) = self.mids {
            if reg == metrics.registry_id() {
                return ids;
            }
        }
        let ids = ClientMetricIds {
            cmd_retry: metrics.counter_id(mn::CMD_RETRY),
            s_cmd_retry: metrics.series_id(mn::CMD_RETRY),
            cmd_completed: metrics.counter_id(mn::CMD_COMPLETED),
            s_cmd_completed: metrics.series_id(mn::CMD_COMPLETED),
            cmd_latency: metrics.histogram_id(mn::CMD_LATENCY),
            cmd_timeout: metrics.counter_id(mn::CMD_TIMEOUT),
            cmd_retry_backoff: metrics.counter_id(mn::CMD_RETRY_BACKOFF),
            cmd_failed: metrics.counter_id(mn::CMD_FAILED),
        };
        self.mids = Some((metrics.registry_id(), ids));
        ids
    }

    /// Pre-populates the location cache (S-SMR's static map, or warm-start
    /// experiments). Entries are tagged with the initial plan version 0, so
    /// the first observed repartitioning flushes them.
    pub fn preload_cache(&mut self, entries: impl IntoIterator<Item = (LocKey, PartitionId)>) {
        self.cache.extend(entries.into_iter().map(|(k, p)| (k, (p, 0))));
    }

    /// Number of cached locations (test/debug aid).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Highest plan version this client has observed (test/debug aid).
    pub fn plan_version(&self) -> u64 {
        self.plan_version
    }

    /// Whether a command is in flight.
    pub fn is_busy(&self) -> bool {
        self.outstanding.is_some()
    }

    /// The in-flight command id, if any.
    pub fn outstanding_cmd(&self) -> Option<MsgId> {
        self.outstanding.as_ref().map(|o| o.cmd.id)
    }

    /// Issues a new command (closed loop: at most one outstanding).
    ///
    /// # Panics
    ///
    /// Panics if a command is already outstanding.
    pub fn issue(&mut self, kind: CommandKind<A>, now: SimTime) -> Vec<Effect<A>> {
        assert!(self.outstanding.is_none(), "client is closed-loop: command already in flight");
        let cmd =
            Command { id: MsgId::new(self.id.as_raw() as u64, self.seq), client: self.id, kind };
        self.seq += 1;
        self.outstanding = Some(Outstanding { cmd: cmd.clone(), attempt: 0, issued_at: now });
        self.dispatch(cmd, 0)
    }

    /// Dispatches (or re-dispatches) the outstanding command: straight to
    /// the partitions when the cache can route it, through the oracle
    /// otherwise.
    fn dispatch(&mut self, cmd: Command<A>, attempt: u32) -> Vec<Effect<A>> {
        if let CommandKind::Access { .. } = cmd.kind {
            if let Some(route) = compute_route(&cmd, |k| self.cache.get(&k).map(|&(p, _)| p)) {
                let keep = self.mode.keeps_moved_state() && route.is_multi_partition();
                return vec![Effect::Multicast {
                    mid: cmd.id.derived(10 + attempt),
                    partitions: route.dests.clone(),
                    // DS-SMR keep moves keys in every shard's map replica.
                    oracle: if keep { OracleDest::All } else { OracleDest::None },
                    payload: Payload::Access {
                        cmd,
                        attempt,
                        expected: route.expected,
                        target: route.target,
                        keep,
                    },
                }];
            }
        }
        // Cold cache, stale cache, or create/delete: involve the oracle —
        // the one shard the query's routing function picks, rotating with
        // the attempt so `Retry` referrals reach the owner shard.
        let shard = exec_shard(&cmd, attempt, self.oracle_shards);
        vec![Effect::Multicast {
            mid: cmd.id.derived(100 + attempt),
            partitions: Vec::new(),
            oracle: OracleDest::Shard(shard),
            payload: Payload::Exec { cmd, attempt },
        }]
    }

    /// Handles a direct message from a server or the oracle.
    pub fn on_direct(
        &mut self,
        msg: Direct<A>,
        now: SimTime,
        metrics: &mut Metrics,
    ) -> (Vec<Effect<A>>, Option<ClientEvent<A>>) {
        match msg {
            Direct::Prophecy { cmd, ok, locations, version } => {
                if version > self.plan_version {
                    // A new plan superseded every older cached fact, not
                    // just this command's keys: flush them all instead of
                    // paying one NOK round-trip per stale entry.
                    self.plan_version = version;
                    self.cache.retain(|_, &mut (_, v)| v >= version);
                }
                if self.caching && version >= self.plan_version {
                    for (k, p) in locations {
                        self.cache.insert(k, (p, version));
                    }
                }
                let matches = self.outstanding.as_ref().map(|o| o.cmd.id) == Some(cmd);
                if matches && !ok {
                    // Command cannot execute (unknown variable, duplicate
                    // create): complete unsuccessfully.
                    if let Some(out) = self.outstanding.take() {
                        self.deferred = None;
                        let latency = now.saturating_duration_since(out.issued_at);
                        let ids = self.mids(metrics);
                        metrics.incr(ids.cmd_failed, 1);
                        return (
                            Vec::new(),
                            Some(ClientEvent::Completed {
                                cmd: out.cmd,
                                reply: None,
                                latency,
                                ok: false,
                            }),
                        );
                    }
                }
                (Vec::new(), None)
            }
            Direct::Reply { cmd, reply, .. } => self.complete(cmd, Some(reply), now, metrics),
            Direct::Ack { cmd } => self.complete(cmd, None, now, metrics),
            Direct::Retry { cmd, attempt } => {
                let matches = self
                    .outstanding
                    .as_ref()
                    .map(|o| o.cmd.id == cmd && o.attempt == attempt)
                    .unwrap_or(false);
                if !matches {
                    return (Vec::new(), None);
                }
                let ids = self.mids(metrics);
                metrics.incr(ids.cmd_retry, 1);
                metrics.record_at(ids.s_cmd_retry, now, 1.0);
                // Our cached locations for this command were stale.
                let Some(out) = self.outstanding.as_mut() else {
                    return (Vec::new(), None);
                };
                for k in out.cmd.keys() {
                    self.cache.remove(&k);
                }
                out.attempt += 1;
                let (cmd, attempt) = (out.cmd.clone(), out.attempt);
                if self.retry_backoff > SimDuration::ZERO {
                    // Stale routing usually means a migration is mid-flight:
                    // back off instead of hammering the moving key. Delay
                    // doubles per attempt of this command, capped at 64×.
                    let shift = attempt.min(6);
                    let delay = self.retry_backoff.saturating_mul(1u64 << shift);
                    let due = now + delay;
                    self.deferred = Some((attempt, due));
                    metrics.incr(ids.cmd_retry_backoff, 1);
                    return (vec![Effect::Wake { at: due }], None);
                }
                (self.dispatch(cmd, attempt), None)
            }
            // detlint::allow(T002): clients consume only the client-addressed subset (Prophecy/Reply/Retry); the remaining Direct variants are server-to-server traffic that a client must ignore, not enumerate
            _ => (Vec::new(), None),
        }
    }

    fn complete(
        &mut self,
        cmd: MsgId,
        reply: Option<A::Reply>,
        now: SimTime,
        metrics: &mut Metrics,
    ) -> (Vec<Effect<A>>, Option<ClientEvent<A>>) {
        let matches = self.outstanding.as_ref().map(|o| o.cmd.id) == Some(cmd);
        if !matches {
            return (Vec::new(), None); // late duplicate from an old attempt
        }
        let Some(out) = self.outstanding.take() else {
            return (Vec::new(), None);
        };
        self.deferred = None;
        let latency = now.saturating_duration_since(out.issued_at);
        let ids = self.mids(metrics);
        metrics.incr(ids.cmd_completed, 1);
        metrics.record_at(ids.s_cmd_completed, now, 1.0);
        metrics.observe(ids.cmd_latency, latency);
        (Vec::new(), Some(ClientEvent::Completed { cmd: out.cmd, reply, latency, ok: true }))
    }

    /// Dispatches a retry the core delayed for backpressure, once the
    /// actor's backoff timer fires. A stale wake-up (the command already
    /// completed, timed out, or retried through another path) is a no-op.
    pub fn on_backoff(&mut self, now: SimTime) -> Vec<Effect<A>> {
        let Some((attempt, due)) = self.deferred else {
            return Vec::new();
        };
        if now < due {
            return Vec::new(); // superseded wake-up; a later timer is set
        }
        self.deferred = None;
        let matches = self.outstanding.as_ref().map(|o| o.attempt == attempt).unwrap_or(false);
        if !matches {
            return Vec::new();
        }
        let Some(out) = self.outstanding.as_ref() else {
            return Vec::new();
        };
        let (cmd, attempt) = (out.cmd.clone(), out.attempt);
        self.dispatch(cmd, attempt)
    }

    /// Re-dispatches the outstanding command through the oracle after a
    /// response timeout (lost messages / leader churn).
    pub fn on_timeout(&mut self, _now: SimTime, metrics: &mut Metrics) -> Vec<Effect<A>> {
        if self.outstanding.is_none() {
            return Vec::new();
        }
        self.deferred = None;
        let ids = self.mids(metrics);
        metrics.incr(ids.cmd_timeout, 1);
        let Some(out) = self.outstanding.as_mut() else {
            return Vec::new();
        };
        out.attempt += 1;
        for k in out.cmd.keys() {
            self.cache.remove(&k);
        }
        let (cmd, attempt) = (out.cmd.clone(), out.attempt);
        self.dispatch(cmd, attempt)
    }
}

impl<A: Application> std::fmt::Debug for ClientCore<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientCore")
            .field("id", &self.id)
            .field("seq", &self.seq)
            .field("cache", &self.cache.len())
            .field("busy", &self.outstanding.is_some())
            .finish()
    }
}
