//! The application model: variables, locality keys, commands.

use std::collections::BTreeMap;
use std::fmt;

use dynastar_amcast::MsgId;
use dynastar_runtime::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of one state variable (the unit of storage and of on-demand
/// movement — a TPC-C row, a Chirper user record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u64);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a locality key (the unit of *location*: a vertex of the
/// oracle's workload graph — a TPC-C district or warehouse, a Chirper
/// user). Every variable belongs to exactly one key via
/// [`Application::locality`]; all variables of a key live in the same
/// partition and migrate together on repartitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocKey(pub u64);

impl fmt::Display for LocKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Identifier of a state partition (a replicated server group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartitionId(pub u32);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A replicated application: deterministic command execution over declared
/// variables.
///
/// Implementations are pure — `execute` must be a deterministic function of
/// its inputs, because every replica of a partition executes the same
/// commands independently (the state-machine-replication contract).
///
/// # Example
///
/// ```
/// use std::collections::BTreeMap;
/// use dynastar_core::{Application, LocKey, VarId};
///
/// /// A bank of counters: one counter per variable, one key per variable.
/// struct Counters;
/// impl Application for Counters {
///     type Op = i64; // add this amount to every declared variable
///     type Value = i64;
///     type Reply = i64; // sum after the update
///
///     fn locality(var: VarId) -> LocKey {
///         LocKey(var.0)
///     }
///
///     fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
///         let mut sum = 0;
///         for v in vars.values_mut() {
///             let cur = v.unwrap_or(0) + op;
///             *v = Some(cur);
///             sum += cur;
///         }
///         sum
///     }
/// }
/// ```
pub trait Application: Sized + Send + Sync + 'static {
    /// Operation descriptor carried by [`CommandKind::Access`].
    type Op: Clone + fmt::Debug + Send + Sync + 'static;
    /// The value of one variable.
    type Value: Clone + fmt::Debug + Send + Sync + 'static;
    /// The reply returned to the client.
    type Reply: Clone + fmt::Debug + Send + Sync + 'static;

    /// The locality key of a variable. Must be a pure function: every
    /// process derives locations from it.
    fn locality(var: VarId) -> LocKey;

    /// Executes `op` over exactly the declared variables.
    ///
    /// Entries are `None` when the variable does not currently exist;
    /// writing `Some` creates or updates it, writing `None` deletes it.
    /// Must be deterministic.
    fn execute(op: &Self::Op, vars: &mut BTreeMap<VarId, Option<Self::Value>>) -> Self::Reply;

    /// Splits an operation's declared variables into read and write sets
    /// for the parallel execution scheduler (P-SMR / CBASE-style
    /// dependency tracking).
    ///
    /// The default declares every variable a write, which serializes the
    /// command against every overlapping predecessor — always safe, never
    /// wrong, just pessimistic. Override for read-mostly operations so
    /// non-conflicting commands can occupy parallel workers.
    ///
    /// Classification only shapes the *timing model*: state application
    /// itself stays in delivery order on every replica, so an inaccurate
    /// classification can cost or gain modelled time but can never change
    /// replies or state.
    fn classify(op: &Self::Op, vars: &[VarId]) -> AccessSets {
        let _ = op;
        AccessSets { reads: Vec::new(), writes: vars.to_vec() }
    }
}

/// The read and write sets of one operation, as declared by
/// [`Application::classify`].
///
/// Two commands conflict iff one's write set intersects the other's
/// read∪write set; read-read overlap never conflicts.
#[derive(Debug, Clone, Default)]
pub struct AccessSets {
    /// Variables the operation only reads.
    pub reads: Vec<VarId>,
    /// Variables the operation may write.
    pub writes: Vec<VarId>,
}

impl AccessSets {
    /// A set that reads everything and writes nothing.
    pub fn read_only(vars: &[VarId]) -> Self {
        AccessSets { reads: vars.to_vec(), writes: Vec::new() }
    }

    /// A set that writes everything (the pessimistic default).
    pub fn write_all(vars: &[VarId]) -> Self {
        AccessSets { reads: Vec::new(), writes: vars.to_vec() }
    }

    /// Whether `self` (the later command) must wait for `earlier`.
    ///
    /// Symmetric CBASE rule: conflict iff self.writes ∩ (earlier.reads ∪
    /// earlier.writes) ≠ ∅ or self.reads ∩ earlier.writes ≠ ∅.
    pub fn conflicts_with(&self, earlier: &AccessSets) -> bool {
        let hits = |a: &[VarId], b: &[VarId]| a.iter().any(|v| b.contains(v));
        hits(&self.writes, &earlier.writes)
            || hits(&self.writes, &earlier.reads)
            || hits(&self.reads, &earlier.writes)
    }
}

/// What a command does.
#[derive(Debug)]
pub enum CommandKind<A: Application> {
    /// Creates a new locality key (a new workload-graph vertex) with
    /// initial variables. Routed through the oracle, which picks the
    /// partition (paper: `create(v)`).
    CreateKey {
        /// The new key.
        key: LocKey,
        /// Initial variables (all must belong to `key`).
        vars: Vec<(VarId, A::Value)>,
    },
    /// Reads and/or writes existing variables (paper: `access(ω)`).
    Access {
        /// The operation to execute.
        op: A::Op,
        /// Every variable the operation may touch.
        vars: Vec<VarId>,
    },
    /// Removes a locality key and all its variables (paper: `delete(v)`).
    DeleteKey {
        /// The key to remove.
        key: LocKey,
    },
}

/// A client command: identity, reply address and payload.
#[derive(Debug)]
pub struct Command<A: Application> {
    /// Globally unique command id (`origin` = client id, `tag` = 0).
    pub id: MsgId,
    /// Where to send the reply.
    pub client: NodeId,
    /// The command body.
    pub kind: CommandKind<A>,
}

impl<A: Application> Clone for CommandKind<A> {
    fn clone(&self) -> Self {
        match self {
            CommandKind::CreateKey { key, vars } => {
                CommandKind::CreateKey { key: *key, vars: vars.clone() }
            }
            CommandKind::Access { op, vars } => {
                CommandKind::Access { op: op.clone(), vars: vars.clone() }
            }
            CommandKind::DeleteKey { key } => CommandKind::DeleteKey { key: *key },
        }
    }
}

impl<A: Application> Clone for Command<A> {
    fn clone(&self) -> Self {
        Command { id: self.id, client: self.client, kind: self.kind.clone() }
    }
}

impl<A: Application> Command<A> {
    /// The variables this command accesses.
    pub fn vars(&self) -> Vec<VarId> {
        match &self.kind {
            CommandKind::CreateKey { vars, .. } => vars.iter().map(|&(v, _)| v).collect(),
            CommandKind::Access { vars, .. } => vars.clone(),
            CommandKind::DeleteKey { .. } => Vec::new(),
        }
    }

    /// The distinct locality keys this command touches, sorted.
    pub fn keys(&self) -> Vec<LocKey> {
        match &self.kind {
            CommandKind::CreateKey { key, .. } | CommandKind::DeleteKey { key } => vec![*key],
            CommandKind::Access { vars, .. } => {
                let mut keys: Vec<LocKey> = vars.iter().map(|&v| A::locality(v)).collect();
                keys.sort_unstable();
                keys.dedup();
                keys
            }
        }
    }
}

/// The replication scheme a cluster runs (see the paper's §5.5, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// DynaStar: dynamic partitioning, borrow-execute-return multi-partition
    /// commands, oracle-driven graph repartitioning.
    Dynastar,
    /// S-SMR (Bezerra et al.): static partitioning; multi-partition commands
    /// execute at *every* involved partition after a state exchange. With a
    /// partitioner-optimized initial placement this is the paper's S-SMR\*.
    SSmr,
    /// DS-SMR (Le et al., DSN'16): dynamic but naive — variables migrate
    /// permanently to wherever they were last used, no workload-graph
    /// optimization.
    DsSmr,
}

impl Mode {
    /// Whether multi-partition commands move state to the target (DynaStar
    /// and DS-SMR) or exchange-and-execute-everywhere (S-SMR).
    pub fn moves_state(self) -> bool {
        !matches!(self, Mode::SSmr)
    }

    /// Whether moved variables stay at the target (DS-SMR) instead of
    /// returning home (DynaStar).
    pub fn keeps_moved_state(self) -> bool {
        matches!(self, Mode::DsSmr)
    }

    /// Whether the oracle runs graph-partitioning optimization.
    pub fn optimizes(self) -> bool {
        matches!(self, Mode::Dynastar)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Dynastar => write!(f, "DynaStar"),
            Mode::SSmr => write!(f, "S-SMR"),
            Mode::DsSmr => write!(f, "DS-SMR"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestApp;
    impl Application for TestApp {
        type Op = ();
        type Value = u64;
        type Reply = ();
        fn locality(var: VarId) -> LocKey {
            LocKey(var.0 / 10)
        }
        fn execute(_: &(), _: &mut BTreeMap<VarId, Option<u64>>) {}
    }

    fn cmd(kind: CommandKind<TestApp>) -> Command<TestApp> {
        Command { id: MsgId::new(1, 0), client: NodeId::from_raw(0), kind }
    }

    #[test]
    fn access_keys_are_sorted_and_deduped() {
        let c = cmd(CommandKind::Access { op: (), vars: vec![VarId(25), VarId(3), VarId(21)] });
        assert_eq!(c.keys(), vec![LocKey(0), LocKey(2)]);
        assert_eq!(c.vars(), vec![VarId(25), VarId(3), VarId(21)]);
    }

    #[test]
    fn create_and_delete_have_one_key() {
        let c = cmd(CommandKind::CreateKey { key: LocKey(4), vars: vec![(VarId(40), 1)] });
        assert_eq!(c.keys(), vec![LocKey(4)]);
        assert_eq!(c.vars(), vec![VarId(40)]);
        let d = cmd(CommandKind::DeleteKey { key: LocKey(4) });
        assert_eq!(d.keys(), vec![LocKey(4)]);
        assert!(d.vars().is_empty());
    }

    #[test]
    fn default_classify_is_all_writes() {
        let sets = TestApp::classify(&(), &[VarId(1), VarId(2)]);
        assert!(sets.reads.is_empty());
        assert_eq!(sets.writes, vec![VarId(1), VarId(2)]);
    }

    #[test]
    fn conflict_rule_is_cbase_symmetric() {
        let r =
            |vs: &[u64]| AccessSets::read_only(&vs.iter().map(|&v| VarId(v)).collect::<Vec<_>>());
        let w =
            |vs: &[u64]| AccessSets::write_all(&vs.iter().map(|&v| VarId(v)).collect::<Vec<_>>());
        // read-read never conflicts
        assert!(!r(&[1, 2]).conflicts_with(&r(&[1, 2])));
        // write-write on the same var conflicts
        assert!(w(&[1]).conflicts_with(&w(&[1])));
        // read-after-write and write-after-read both conflict
        assert!(r(&[1]).conflicts_with(&w(&[1])));
        assert!(w(&[1]).conflicts_with(&r(&[1])));
        // disjoint sets never conflict
        assert!(!w(&[1]).conflicts_with(&w(&[2])));
        assert!(!r(&[1]).conflicts_with(&w(&[2])));
    }

    #[test]
    fn mode_flags() {
        assert!(Mode::Dynastar.moves_state());
        assert!(!Mode::Dynastar.keeps_moved_state());
        assert!(Mode::Dynastar.optimizes());
        assert!(!Mode::SSmr.moves_state());
        assert!(Mode::DsSmr.moves_state());
        assert!(Mode::DsSmr.keeps_moved_state());
        assert!(!Mode::DsSmr.optimizes());
        assert_eq!(Mode::Dynastar.to_string(), "DynaStar");
    }
}
