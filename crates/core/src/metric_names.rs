//! Canonical metric names recorded by the protocol cores.
//!
//! Experiment binaries read these from the simulation's
//! [`Metrics`](dynastar_runtime::Metrics) registry; keeping the names in
//! one place keeps the cores and the harness in sync.

/// Counter + per-second series: commands completed (client side).
pub const CMD_COMPLETED: &str = "cmd.completed";
/// Histogram: end-to-end command latency (client side).
pub const CMD_LATENCY: &str = "cmd.latency";
/// Counter + series: commands that involved multiple partitions.
pub const CMD_MULTI: &str = "cmd.multi_partition";
/// Counter + series: single-partition commands.
pub const CMD_SINGLE: &str = "cmd.single_partition";
/// Counter + series: client retries caused by stale routing.
pub const CMD_RETRY: &str = "cmd.retry";
/// Counter: client response timeouts (re-dispatch through the oracle).
pub const CMD_TIMEOUT: &str = "cmd.timeout";
/// Counter: commands that completed unsuccessfully at the client (oracle
/// NOK: unknown variable or duplicate create). Stale routing never lands
/// here — it is retried — so under migration churn this must stay zero.
pub const CMD_FAILED: &str = "cmd.failed";
/// Counter: retries the client deliberately delayed because the cluster
/// signalled stale routing while a migration was in flight (backpressure;
/// see `ClusterConfig::client_retry_backoff`).
pub const CMD_RETRY_BACKOFF: &str = "cmd.retry_backoff";
/// Counter + series: variables shipped between partitions (borrows,
/// returns and migrations) — the paper's "objects exchanged".
pub const OBJECTS_EXCHANGED: &str = "objects.exchanged";
/// Counter + series: queries answered by the oracle (`Exec` deliveries).
pub const ORACLE_QUERIES: &str = "oracle.queries";
/// Counter: repartitioning plans published.
pub const PLANS_PUBLISHED: &str = "oracle.plans";
/// Series: locality keys moved by plans.
pub const PLAN_MOVES: &str = "oracle.plan_moves";
/// Series: normalized edge cut (cut / total edge weight) of each computed
/// plan — plan-quality tracking; fig8's shard sweep shows the fraction is
/// independent of the oracle shard count.
pub const PLAN_EDGE_CUT: &str = "oracle.plan_edge_cut";
/// Counter: workload-graph entries (vertices + edges) evicted to honour
/// the oracle's graph caps.
pub const ORACLE_GRAPH_EVICTIONS: &str = "oracle.graph_evictions";
/// Counter: plans computed via the warm-start incremental partitioner
/// path (`partition_from`) instead of a full multilevel run.
pub const PLANS_WARM: &str = "oracle.plans_warm";
/// Histogram: modelled wall time between a plan recompute starting and its
/// publication (oracle side).
pub const PLAN_COMPUTE_TIME: &str = "oracle.plan_compute_time";

/// Counter: staged-migration chunks shipped by source partitions
/// (including retransmissions).
pub const MIGRATION_CHUNKS_SENT: &str = "migration.chunks_sent";
/// Counter: staged-migration chunk retransmissions after an ack timeout.
pub const MIGRATION_CHUNK_RETRIES: &str = "migration.chunk_retries";
/// Counter: staged migrations abandoned after exhausting chunk retries;
/// the key's move is rolled back to the previous plan.
pub const MIGRATION_REVERTS: &str = "migration.reverts";
/// Counter: key moves that took the staged (chunked, rate-limited)
/// migration path instead of the classic single shipment.
pub const MIGRATION_KEYS_STAGED: &str = "migration.keys_staged";
/// Counter: staged key moves deferred at plan time because the
/// source→destination link already carried
/// `migration_max_inflight_per_link` transfers.
pub const MIGRATION_DEFERRED: &str = "migration.deferred";
/// Counter: deferred key moves promoted into a freed in-flight slot.
pub const MIGRATION_RELEASED: &str = "migration.released";

/// Counter: commands admitted to a worker while at least one other command
/// was still executing (modelled intra-partition parallelism realized).
pub const EXEC_PARALLEL: &str = "exec.parallel";
/// Counter: commands whose admission waited on a read/write conflict with
/// an in-flight predecessor (counted once per command attempt).
pub const EXEC_SERIALIZED: &str = "exec.serialized";
/// Counter: commands whose admission waited because the dependency window
/// was at capacity (counted once per command attempt).
pub const EXEC_WINDOW_STALL: &str = "exec.window_stall";

/// Histogram: commands per flushed ordering batch (leader side). Counts
/// are encoded in µs units (the histogram type stores durations).
pub const BATCH_SIZE: &str = "batch.size";
/// Histogram: consensus slots in flight right after each batch flush (how
/// full the pipelining window runs). Counts encoded in µs units.
pub const BATCH_OCCUPANCY: &str = "batch.occupancy";
/// Counter: batches flushed because they reached `max_batch` commands.
pub const BATCH_FLUSH_FULL: &str = "batch.flush_full";
/// Counter: batches flushed by the delay bound (partial batches).
pub const BATCH_FLUSH_DELAY: &str = "batch.flush_delay";
/// Counter: commands ordered through batches (sums batch sizes).
pub const BATCH_COMMANDS: &str = "batch.commands";

/// Counter: nodes crashed by fault injection (recorded by the harness).
pub const FAULT_CRASHES: &str = "fault.crashes";
/// Counter: crashed nodes restarted (crash-recovery model).
pub const FAULT_RESTARTS: &str = "fault.restarts";
/// Counter: nodes disconnected by fault injection.
pub const FAULT_DISCONNECTS: &str = "fault.disconnects";
/// Counter: disconnected nodes reconnected.
pub const FAULT_RECONNECTS: &str = "fault.reconnects";
/// Counter: transport frames retransmitted (timeout or NACK driven).
pub const NET_RETRANSMISSIONS: &str = "net.retransmissions";
/// Counter: per-peer stream resets after an epoch change (peer restarted).
pub const NET_STREAM_RESETS: &str = "net.stream_resets";
/// Counter: frames declared lost after retransmission gave up (the
/// receiver is told to jump past them; upper layers re-send semantically).
pub const NET_FRAMES_ABANDONED: &str = "net.frames_abandoned";
/// Histogram: out-of-order frames buffered in FIFO reorder buffers,
/// sampled at each transport maintenance round (counts in µs units).
pub const NET_FIFO_BUFFERED: &str = "net.fifo_buffered";
/// Counter: out-of-order frames dropped because a peer's reorder buffer
/// hit its cap (recovered later by retransmission).
pub const NET_FIFO_DROPS: &str = "net.fifo_drops";
/// Counter: sends dropped by the network model (random loss, link-fault
/// loss, or destination disconnected). Recorded by the simulator.
pub const NET_DROPPED_SENDS: &str = "net.dropped_sends";
/// Counter: recovery state snapshots served to restarted/lagging replicas.
pub const RECOVERY_SNAPSHOTS: &str = "recovery.snapshots";
/// Counter: approximate elements (log entries + bookkeeping rows) shipped
/// in recovery snapshots.
pub const RECOVERY_SNAPSHOT_ELEMENTS: &str = "recovery.snapshot_elements";
/// Counter: recoveries completed (quorum of snapshots installed).
pub const RECOVERY_COMPLETIONS: &str = "recovery.completions";
/// Counter: leader changes observed at replicas (rising edges of
/// local leadership).
pub const LEADER_ELECTIONS: &str = "leader.elections";

/// Per-partition series: commands executed by partition `p`.
pub fn partition_executed(p: u32) -> String {
    format!("part.{p}.executed")
}

/// Per-partition series: multi-partition commands executed by partition `p`
/// (as target or contributor).
pub fn partition_multi(p: u32) -> String {
    format!("part.{p}.multi_partition")
}

/// Per-partition series: objects sent or received by partition `p`.
pub fn partition_objects(p: u32) -> String {
    format!("part.{p}.objects_exchanged")
}

/// Per-worker histogram: modelled busy time charged to execution worker
/// `w` (one observation per admitted command; the count is the worker's
/// share of the load).
pub fn exec_worker_busy(w: u32) -> String {
    format!("exec.worker.{w}.busy")
}
