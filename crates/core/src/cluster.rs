//! Cluster assembly: actors that wire the protocol cores to the
//! simulation runtime, and a builder for complete deployments.
//!
//! Topology convention: partitions `0..k` are multicast groups `0..k`; the
//! `O` oracle shards are groups `k..k+O` (shard `s` is group `k+s`; the
//! default `O = 1` reproduces the single-oracle deployment exactly). Every
//! group has the same replica count (the paper gives the oracle the same
//! resources as every partition).

use std::collections::BTreeMap;
use std::sync::Arc;

use dynastar_amcast::{
    GroupId, McastMember, McastOutput, McastWire, MemberId, MemberSnapshot, MsgId, Topology,
};
use dynastar_paxos::{Ballot, BatchConfig, GroupConfig};
use dynastar_runtime::fifo::{FifoLinks, Frame};
use dynastar_runtime::{
    Actor, Ctx, FastHashMap, Metrics, NetConfig, NodeId, SimConfig, SimDuration, SimTime,
    Simulation,
};

use crate::client::{ClientCore, ClientEvent, Workload};
use crate::command::{Application, LocKey, Mode, PartitionId, VarId};
use crate::metric_names;
use crate::oracle::{OracleConfig, OracleCore};
use crate::payload::{Destination, Direct, Effect, OracleDest, Payload};
use crate::server::{ExecConfig, ServerConfig, ServerCore};

/// Timer tags used by the actors.
mod timer {
    /// Periodic multicast/consensus tick.
    pub const TICK: u64 = 1;
    /// Oracle plan-compute completion.
    pub const PLAN: u64 = 2;
    /// Client response timeout.
    pub const TIMEOUT: u64 = 3;
    /// Client initial-issue stagger.
    pub const START: u64 = 4;
    /// Partition modelled-CPU wake-up.
    pub const WAKE: u64 = 5;
    /// Transport retransmission check (clients; servers piggyback on TICK).
    pub const RETX: u64 = 6;
    /// Recovery snapshot-request retry (restarted/lagging replicas).
    pub const RECOVER: u64 = 7;
    /// Client retry-backoff wake-up (deferred stale-routing retry).
    pub const BACKOFF: u64 = 8;
    /// Client think-time wake-up (paced workloads; see
    /// [`crate::Workload::think_time`]).
    pub const THINK: u64 = 9;
}

/// Everything that travels between nodes: FIFO-framed wire messages plus
/// transport-level cumulative acks (the ARQ layer that makes links
/// reliable under message loss, as the paper's §2.1 channel model
/// assumes).
///
/// Every stream-carrying message is stamped with the *incarnation epochs*
/// of both endpoints. A node that restarts loses its volatile sequencing
/// state and comes back under a higher epoch (persisted across the crash),
/// so both sides can tell a fresh stream from a stale one and resynchronize
/// instead of misinterpreting renumbered frames as duplicates — the
/// crash-recovery analogue of TCP connection teardown + re-establishment.
#[derive(Debug)]
pub enum Msg<A: Application> {
    /// A sequenced protocol frame. The body travels behind an `Arc` so a
    /// fan-out to N peers, the per-peer retransmission buffers, and the
    /// receivers' reorder buffers all share one allocation — the frame
    /// itself is two words plus a sequence number, so queue moves and
    /// retransmission clones never copy payload bytes.
    Frame {
        /// Sender's incarnation epoch.
        src_epoch: u64,
        /// The receiver epoch the sender believes is current.
        dst_epoch: u64,
        /// The sequenced payload.
        frame: Frame<Arc<Inner<A>>>,
    },
    /// Selective ack: every frame with `seq < up_to` was received, and the
    /// listed later frames are missing (retransmit them now).
    Ack {
        /// Sender's incarnation epoch.
        src_epoch: u64,
        /// The receiver epoch the sender believes is current.
        dst_epoch: u64,
        /// The receiver's next expected sequence number.
        up_to: u64,
        /// Holes above `up_to` the receiver is waiting for.
        missing: Vec<u64>,
    },
    /// The sender permanently abandoned every frame below `from_seq`
    /// (retransmission gave up while the peer was unreachable); the
    /// receiver must advance its expectation past the gap or the stream
    /// stalls forever. Upper layers re-send semantically.
    Jump {
        /// Sender's incarnation epoch.
        src_epoch: u64,
        /// The receiver epoch the sender believes is current.
        dst_epoch: u64,
        /// First sequence number still obtainable from the sender.
        from_seq: u64,
    },
    /// "Your view of my epoch is stale — I am at `epoch` now." Sent
    /// (rate-limited) in response to traffic addressed to a previous
    /// incarnation, so peers resynchronize their streams promptly instead
    /// of waiting to hear a fresh frame.
    EpochNotice {
        /// The sender's current incarnation epoch.
        epoch: u64,
    },
}

impl<A: Application> Clone for Msg<A> {
    fn clone(&self) -> Self {
        match self {
            Msg::Frame { src_epoch, dst_epoch, frame } => Msg::Frame {
                src_epoch: *src_epoch,
                dst_epoch: *dst_epoch,
                frame: Frame { seq: frame.seq, inner: frame.inner.clone() },
            },
            Msg::Ack { src_epoch, dst_epoch, up_to, missing } => Msg::Ack {
                src_epoch: *src_epoch,
                dst_epoch: *dst_epoch,
                up_to: *up_to,
                missing: missing.clone(),
            },
            Msg::Jump { src_epoch, dst_epoch, from_seq } => {
                Msg::Jump { src_epoch: *src_epoch, dst_epoch: *dst_epoch, from_seq: *from_seq }
            }
            Msg::EpochNotice { epoch } => Msg::EpochNotice { epoch: *epoch },
        }
    }
}

/// The unframed message body.
#[derive(Debug)]
pub enum Inner<A: Application> {
    /// Atomic multicast traffic. Payloads travel behind an `Arc` so the
    /// many per-replica copies share one allocation.
    Wire(McastWire<Arc<Payload<A>>>),
    /// Direct protocol messages.
    Direct(Direct<A>),
    /// Crash-recovery state transfer between replicas of one group.
    Recovery(RecoveryMsg<A>),
}

impl<A: Application> Clone for Inner<A> {
    fn clone(&self) -> Self {
        match self {
            Inner::Wire(w) => Inner::Wire(w.clone()),
            Inner::Direct(d) => Inner::Direct(d.clone()),
            Inner::Recovery(r) => Inner::Recovery(r.clone()),
        }
    }
}

/// Recovery protocol between the replicas of one group: a restarted (or
/// irrecoverably lagging) replica asks its peers for state; each live peer
/// answers with its consensus/multicast snapshot plus a clone of its
/// protocol core. The requester installs once it holds a quorum of
/// snapshots (consensus safety needs the quorum — see
/// [`dynastar_paxos::RecoveryReport`]); the core comes from the snapshot
/// the multicast layer picks as its bookkeeping donor, keeping replica
/// state and log position consistent.
pub enum RecoveryMsg<A: Application> {
    /// "Send me your state" — from a recovering replica to its group peers.
    Request,
    /// A live peer's state donation (boxed: it dwarfs regular traffic).
    Response(Box<RecoveryPayload<A>>),
}

impl<A: Application> Clone for RecoveryMsg<A> {
    fn clone(&self) -> Self {
        match self {
            RecoveryMsg::Request => RecoveryMsg::Request,
            RecoveryMsg::Response(p) => RecoveryMsg::Response(p.clone()),
        }
    }
}

impl<A: Application> std::fmt::Debug for RecoveryMsg<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryMsg::Request => f.write_str("RecoveryMsg::Request"),
            RecoveryMsg::Response(_) => f.write_str("RecoveryMsg::Response(..)"),
        }
    }
}

/// One peer's full state donation: multicast/consensus snapshot + core.
pub struct RecoveryPayload<A: Application> {
    snapshot: MemberSnapshot<Arc<Payload<A>>>,
    core: CoreSnapshot<A>,
}

impl<A: Application> Clone for RecoveryPayload<A> {
    fn clone(&self) -> Self {
        RecoveryPayload { snapshot: self.snapshot.clone(), core: self.core.clone() }
    }
}

/// A cloned protocol core travelling inside a [`RecoveryPayload`].
// One per actor (never collected in bulk), so variant size skew is moot.
#[allow(clippy::large_enum_variant)]
enum CoreSnapshot<A: Application> {
    Partition(ServerCore<A>),
    Oracle(OracleCore<A>),
}

impl<A: Application> Clone for CoreSnapshot<A> {
    fn clone(&self) -> Self {
        match self {
            CoreSnapshot::Partition(c) => CoreSnapshot::Partition(c.clone()),
            CoreSnapshot::Oracle(c) => CoreSnapshot::Oracle(c.clone()),
        }
    }
}

/// Node addressing shared by every actor.
#[derive(Debug)]
struct RouteTable {
    /// `groups[g][replica]` = node id.
    groups: Vec<Vec<NodeId>>,
    /// First oracle shard's group (shard `s` is `oracle_base + s`).
    oracle_base: GroupId,
    /// Number of oracle shard groups.
    oracle_shards: u32,
}

impl RouteTable {
    fn node_of(&self, m: MemberId) -> NodeId {
        self.groups[m.group.0 as usize][m.index]
    }

    fn group_nodes(&self, g: GroupId) -> &[NodeId] {
        &self.groups[g.0 as usize]
    }

    fn partition_group(&self, p: PartitionId) -> GroupId {
        GroupId(p.0)
    }

    fn oracle_group(&self, shard: u32) -> GroupId {
        debug_assert!(shard < self.oracle_shards);
        GroupId(self.oracle_base.0 + shard)
    }

    /// All oracle shard groups, in shard order.
    fn oracle_groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        (0..self.oracle_shards).map(|s| GroupId(self.oracle_base.0 + s))
    }
}

/// Whether `DYNASTAR_TRACE_ARQ` diagnostics are enabled. Sampled once per
/// process: the check sits on the per-frame receive path, and an
/// `env::var_os` there (a linear scan of the environment plus an
/// allocation) costs more than the rest of the ARQ bookkeeping combined.
fn trace_arq() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    // detlint::allow(D003): opt-in diagnostic gate only — the flag toggles eprintln tracing and never feeds protocol or simulation state
    *ON.get_or_init(|| std::env::var_os("DYNASTAR_TRACE_ARQ").is_some())
}

/// Retransmission timeout for unacknowledged frames.
const RETX_AFTER: SimDuration = SimDuration::from_millis(300);
/// Give up on a peer's unacked frames after this long (crashed peer).
const RETX_GIVE_UP: SimDuration = SimDuration::from_secs(30);
/// Ack after this many unacknowledged received frames (or lazily on the
/// periodic ack flush) — batching keeps ack traffic a small fraction of
/// data traffic.
const ACK_EVERY: u64 = 64;
/// Retransmit at most this many frames per peer per timeout-driven scan.
/// Timeout retransmission is only the fallback for stream *tails* (frames
/// with nothing after them); holes inside the stream are healed precisely
/// by the selective-repeat NACKs in [`Msg::Ack`].
const RETX_WINDOW: usize = 32;
/// Maximum holes reported per ack.
const NACK_LIMIT: usize = 64;
/// Minimum spacing of lazy ack flushes.
const ACK_FLUSH_EVERY: SimDuration = SimDuration::from_millis(100);

/// Minimum spacing of epoch notices / jump announcements per peer.
const SIGNAL_EVERY: SimDuration = SimDuration::from_millis(100);

/// One peer's outstanding frames: seq → (frame, first send, latest send).
/// Frames share their body with the in-flight copy via `Arc`, so buffering
/// for retransmission costs a refcount, not a deep clone.
type SendBuf<A> = std::collections::BTreeMap<u64, (Frame<Arc<Inner<A>>>, SimTime, SimTime)>;

/// Shared actor plumbing: FIFO links + a simple ARQ (cumulative acks,
/// timeout retransmission) + message fan-out, epoch-aware so streams
/// resynchronize after either endpoint restarts (see [`Msg`]).
struct Wiring<A: Application> {
    routes: Arc<RouteTable>,
    fifo: FifoLinks<NodeId, Arc<Inner<A>>>,
    /// Reorder-buffer cap handed to [`FifoLinks`]; kept so a restarted
    /// actor can rebuild its wiring with the same bound.
    fifo_cap: usize,
    /// FIFO drops already surfaced to the metrics registry (the fifo layer
    /// keeps a monotone total; this remembers how much was reported).
    reported_fifo_drops: u64,
    /// Sent frames not yet acknowledged: per peer, seq → (frame, first
    /// send, latest (re)send). Retransmission backs off from the latest
    /// send; the give-up clock runs from the first, so resending a frame
    /// does not keep it alive forever against an unreachable peer.
    unacked: FastHashMap<NodeId, SendBuf<A>>,
    /// Last cumulative ack value sent to each peer.
    acked_to_peer: FastHashMap<NodeId, u64>,
    /// Last time lazy acks were flushed.
    last_ack_flush: SimTime,
    /// This node's incarnation epoch (0 at first boot, +1 per restart).
    my_epoch: u64,
    /// Highest incarnation epoch observed per peer (absent = 0).
    peer_epochs: FastHashMap<NodeId, u64>,
    /// Last time an epoch notice or jump was sent to each peer.
    last_signal: FastHashMap<NodeId, SimTime>,
}

impl<A: Application> Wiring<A> {
    fn new(routes: Arc<RouteTable>, fifo_cap: usize) -> Self {
        Self::with_epoch(routes, fifo_cap, 0)
    }

    fn with_epoch(routes: Arc<RouteTable>, fifo_cap: usize, my_epoch: u64) -> Self {
        Wiring {
            routes,
            fifo: FifoLinks::with_buffer_cap(fifo_cap),
            fifo_cap,
            reported_fifo_drops: 0,
            unacked: FastHashMap::default(),
            acked_to_peer: FastHashMap::default(),
            last_ack_flush: SimTime::ZERO,
            my_epoch,
            peer_epochs: FastHashMap::default(),
            last_signal: FastHashMap::default(),
        }
    }

    fn peer_epoch(&self, peer: NodeId) -> u64 {
        self.peer_epochs.get(&peer).copied().unwrap_or(0)
    }

    /// Sends one framed body to `to`. Fan-out callers wrap the body in an
    /// `Arc` once and pass clones, so every recipient (and every
    /// retransmission buffer entry) shares a single allocation.
    fn send(&mut self, ctx: &mut Ctx<'_, Msg<A>>, to: NodeId, inner: Arc<Inner<A>>) {
        let frame = self.fifo.wrap(to, inner);
        let now = ctx.now();
        self.unacked.entry(to).or_default().insert(frame.seq, (frame.clone(), now, now));
        let dst_epoch = self.peer_epoch(to);
        ctx.send(to, Msg::Frame { src_epoch: self.my_epoch, dst_epoch, frame });
    }

    /// Reconciles the epoch stamps on an incoming message. Returns `false`
    /// if the message belongs to a stale stream and must be dropped.
    fn sync_epochs(
        &mut self,
        ctx: &mut Ctx<'_, Msg<A>>,
        from: NodeId,
        src_epoch: u64,
        dst_epoch: u64,
    ) -> bool {
        if src_epoch < self.peer_epoch(from) {
            return false; // a previous incarnation of the peer
        }
        if src_epoch > self.peer_epoch(from) {
            self.note_peer_epoch(ctx, from, src_epoch);
        }
        if dst_epoch != self.my_epoch {
            // Addressed to a previous incarnation of this node: its
            // sequence numbers mean nothing to our fresh stream state.
            // Tell the peer so it resynchronizes.
            self.announce_epoch(ctx, from);
            return false;
        }
        true
    }

    /// Adopts a higher epoch for `peer`: both directions of the stream are
    /// reset (the peer's restart wiped its volatile sequencing state), and
    /// our unacknowledged frames are renumbered from 0 — in their original
    /// order — and retransmitted, so nothing already handed to [`Self::send`]
    /// is lost by the restart.
    fn note_peer_epoch(&mut self, ctx: &mut Ctx<'_, Msg<A>>, peer: NodeId, epoch: u64) {
        if epoch <= self.peer_epoch(peer) {
            return;
        }
        self.peer_epochs.insert(peer, epoch);
        ctx.metrics_mut().incr_counter(metric_names::NET_STREAM_RESETS, 1);
        self.fifo.reset_receive(&peer);
        self.acked_to_peer.remove(&peer);
        self.fifo.reset_send(&peer);
        if let Some(buf) = self.unacked.remove(&peer) {
            let now = ctx.now();
            let mut renumbered = std::collections::BTreeMap::new();
            for (_old_seq, (frame, first_sent, _last_sent)) in buf {
                let f = self.fifo.wrap(peer, frame.inner);
                // The give-up clock keeps running from the original send.
                renumbered.insert(f.seq, (f, first_sent, now));
            }
            ctx.metrics_mut()
                .incr_counter(metric_names::NET_RETRANSMISSIONS, renumbered.len() as u64);
            for (f, _, _) in renumbered.values() {
                ctx.send(
                    peer,
                    Msg::Frame { src_epoch: self.my_epoch, dst_epoch: epoch, frame: f.clone() },
                );
            }
            self.unacked.insert(peer, renumbered);
        }
    }

    /// Rate-limited "I am at epoch E now" notice.
    fn announce_epoch(&mut self, ctx: &mut Ctx<'_, Msg<A>>, peer: NodeId) {
        if !self.signal_due(ctx.now(), peer) {
            return;
        }
        ctx.send(peer, Msg::EpochNotice { epoch: self.my_epoch });
    }

    /// Rate-limited jump announcement: tells `peer` to skip past frames we
    /// no longer hold, up to the first one we can still deliver.
    fn send_jump(&mut self, ctx: &mut Ctx<'_, Msg<A>>, peer: NodeId) {
        if !self.signal_due(ctx.now(), peer) {
            return;
        }
        let from_seq = self
            .unacked
            .get(&peer)
            .and_then(|buf| buf.keys().next().copied())
            .unwrap_or_else(|| self.fifo.next_seq_to(&peer));
        let dst_epoch = self.peer_epoch(peer);
        ctx.send(peer, Msg::Jump { src_epoch: self.my_epoch, dst_epoch, from_seq });
    }

    fn signal_due(&mut self, now: SimTime, peer: NodeId) -> bool {
        if let Some(&last) = self.last_signal.get(&peer) {
            if now.saturating_duration_since(last) < SIGNAL_EVERY {
                return false;
            }
        }
        self.last_signal.insert(peer, now);
        true
    }

    /// Unwraps released frame bodies for consumption: sole owner → move,
    /// otherwise (sender still buffering for retransmission, or a fan-out
    /// sibling in flight) one deep clone — the only payload copy on the
    /// whole delivery path.
    fn unwrap_released(ready: Vec<Arc<Inner<A>>>) -> Vec<Inner<A>> {
        ready.into_iter().map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone())).collect()
    }

    /// Accepts an incoming message; returns the in-order released inner
    /// messages (empty for acks/out-of-order frames).
    fn receive(&mut self, ctx: &mut Ctx<'_, Msg<A>>, from: NodeId, msg: Msg<A>) -> Vec<Inner<A>> {
        match msg {
            Msg::Frame { src_epoch, dst_epoch, frame } => {
                if !self.sync_epochs(ctx, from, src_epoch, dst_epoch) {
                    return Vec::new();
                }
                let ready = Self::unwrap_released(self.fifo.accept(from, frame));
                let drops = self.fifo.dropped_count();
                if drops > self.reported_fifo_drops {
                    ctx.metrics_mut().incr_counter(
                        metric_names::NET_FIFO_DROPS,
                        drops - self.reported_fifo_drops,
                    );
                    self.reported_fifo_drops = drops;
                }
                if trace_arq() {
                    let buffered = self.fifo.buffered_count();
                    if buffered > 200 && buffered.is_multiple_of(100) {
                        eprintln!(
                            "[arq] t={} node has {buffered} frames buffered behind gaps (from {from})",
                            ctx.now()
                        );
                    }
                }
                // Ack in batches: promptly once enough progress piles up,
                // otherwise lazily from the periodic flush. This keeps ack
                // traffic a small fraction of data traffic while bounding
                // the sender's retransmission buffer.
                let expected = self.fifo.expected_from(&from);
                let acked = self.acked_to_peer.get(&from).copied().unwrap_or(0);
                let missing = self.fifo.missing_from(&from, NACK_LIMIT);
                if expected >= acked + ACK_EVERY || !missing.is_empty() {
                    self.acked_to_peer.insert(from, expected);
                    self.send_ack(ctx, from, expected, missing);
                }
                ready
            }
            Msg::Ack { src_epoch, dst_epoch, up_to, missing } => {
                if !self.sync_epochs(ctx, from, src_epoch, dst_epoch) {
                    return Vec::new();
                }
                let now = ctx.now();
                let mut resends = Vec::new();
                // Set when the receiver waits on a frame we abandoned: it
                // can only make progress if told to jump the gap.
                let mut unsatisfiable_hole = false;
                match self.unacked.get_mut(&from) {
                    Some(buf) => {
                        // Drop cumulatively-acked frames in place; a
                        // `split_off` here would rebuild the whole tree on
                        // every ack.
                        while buf.first_key_value().map(|(&s, _)| s < up_to).unwrap_or(false) {
                            buf.pop_first();
                        }
                        // Selective repeat: resend exactly the reported holes.
                        for seq in missing {
                            if let Some((frame, _first_sent, last_sent)) = buf.get_mut(&seq) {
                                // Rate-limit per frame: a hole may be reported
                                // by several acks before the resend lands.
                                if now.saturating_duration_since(*last_sent)
                                    >= SimDuration::from_millis(20)
                                {
                                    *last_sent = now;
                                    resends.push(frame.clone());
                                }
                            } else if seq >= up_to {
                                // Frames leave the buffer only via cumulative
                                // ack or give-up; an unheld hole was given up.
                                unsatisfiable_hole = true;
                            }
                        }
                        if buf.is_empty() {
                            self.unacked.remove(&from);
                        }
                    }
                    None => {
                        if !missing.is_empty() {
                            unsatisfiable_hole = true;
                        }
                    }
                }
                if !resends.is_empty() {
                    ctx.metrics_mut()
                        .incr_counter(metric_names::NET_RETRANSMISSIONS, resends.len() as u64);
                }
                let dst_epoch = self.peer_epoch(from);
                for frame in resends {
                    ctx.send(from, Msg::Frame { src_epoch: self.my_epoch, dst_epoch, frame });
                }
                if unsatisfiable_hole {
                    self.send_jump(ctx, from);
                }
                Vec::new()
            }
            Msg::Jump { src_epoch, dst_epoch, from_seq } => {
                if !self.sync_epochs(ctx, from, src_epoch, dst_epoch) {
                    return Vec::new();
                }
                // The sender abandoned everything below `from_seq`; release
                // whatever buffered frames become deliverable past the gap.
                Self::unwrap_released(self.fifo.force_advance(&from, from_seq))
            }
            Msg::EpochNotice { epoch } => {
                self.note_peer_epoch(ctx, from, epoch);
                Vec::new()
            }
        }
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_, Msg<A>>, to: NodeId, up_to: u64, missing: Vec<u64>) {
        let dst_epoch = self.peer_epoch(to);
        ctx.send(to, Msg::Ack { src_epoch: self.my_epoch, dst_epoch, up_to, missing });
    }

    /// Transport maintenance: lazy ack flush + retransmission scan, rate
    /// limited to once per [`ACK_FLUSH_EVERY`] regardless of how often the
    /// hosting actor ticks.
    fn maintain(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        let now = ctx.now();
        if now.saturating_duration_since(self.last_ack_flush) < ACK_FLUSH_EVERY {
            return;
        }
        self.last_ack_flush = now;
        // Sample the reorder-buffer depth (count encoded in µs units) so
        // experiments can see how close links run to `fifo_cap`.
        ctx.metrics_mut().record_histogram(
            metric_names::NET_FIFO_BUFFERED,
            SimDuration::from_micros(self.fifo.buffered_count() as u64),
        );
        self.flush_acks(ctx);
        self.retransmit_due(ctx);
    }

    /// Flushes lazy acks for peers with unacknowledged receive progress.
    fn flush_acks(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        let mut peers: Vec<NodeId> = self.fifo.receive_peers().copied().collect();
        // Fixed send order: hash-map iteration order varies per instance,
        // and send order feeds the deterministic event schedule.
        peers.sort_unstable();
        for peer in peers {
            let expected = self.fifo.expected_from(&peer);
            let acked = self.acked_to_peer.get(&peer).copied().unwrap_or(0);
            let missing = self.fifo.missing_from(&peer, NACK_LIMIT);
            if expected > acked || !missing.is_empty() {
                self.acked_to_peer.insert(peer, expected);
                self.send_ack(ctx, peer, expected, missing);
            }
        }
    }

    /// Retransmits frames unacknowledged past the timeout. Frames
    /// unacknowledged for [`RETX_GIVE_UP`] (the peer crashed, or was
    /// partitioned away for longer than we buffer) are abandoned — counted,
    /// and announced to the peer with a [`Msg::Jump`] so its stream heals
    /// with an explicit gap instead of stalling forever once it returns.
    fn retransmit_due(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        let now = ctx.now();
        let mut dead_peers = Vec::new();
        let mut all_resends: Vec<(NodeId, Frame<Arc<Inner<A>>>)> = Vec::new();
        // Fixed scan order (see flush_acks): resend order must not depend
        // on hash-map iteration order or same-seed runs diverge.
        let mut scan: Vec<NodeId> = self.unacked.keys().copied().collect();
        scan.sort_unstable();
        for peer in scan {
            let Some(buf) = self.unacked.get_mut(&peer) else { continue };
            let mut resends = Vec::new();
            let mut expired = false;
            for (frame, first_sent, last_sent) in buf.values_mut() {
                // Give-up measures from the *first* send: a peer that has
                // acked nothing for this long is crashed or partitioned
                // away, and resending cannot keep the frame alive.
                if now.saturating_duration_since(*first_sent) >= RETX_GIVE_UP {
                    expired = true;
                    break;
                }
                let age = now.saturating_duration_since(*last_sent);
                if age >= RETX_AFTER {
                    *last_sent = now;
                    resends.push(frame.clone());
                    if resends.len() >= RETX_WINDOW {
                        // Pace the recovery: the receiver's cumulative ack
                        // will advance once the head of the stream heals,
                        // releasing the rest without retransmission.
                        break;
                    }
                } else {
                    // Frames are buffered in send order, so once one is
                    // too young the rest (sent later) are too. A refreshed
                    // prefix can hide an older suffix for at most one scan
                    // interval — an acceptable retransmission delay.
                    break;
                }
            }
            if expired {
                if trace_arq() {
                    eprintln!(
                        "[arq] t={} giving up on peer {peer}: dropping {} unacked frames",
                        now,
                        buf.len()
                    );
                }
                ctx.metrics_mut()
                    .incr_counter(metric_names::NET_FRAMES_ABANDONED, buf.len() as u64);
                dead_peers.push(peer);
                continue;
            }
            all_resends.extend(resends.into_iter().map(|f| (peer, f)));
        }
        if !all_resends.is_empty() {
            ctx.metrics_mut()
                .incr_counter(metric_names::NET_RETRANSMISSIONS, all_resends.len() as u64);
        }
        for (peer, frame) in all_resends {
            let dst_epoch = self.peer_epoch(peer);
            ctx.send(peer, Msg::Frame { src_epoch: self.my_epoch, dst_epoch, frame });
        }
        for peer in dead_peers {
            self.unacked.remove(&peer);
            // Announce the gap so the stream resumes when the peer returns.
            self.send_jump(ctx, peer);
        }
    }

    fn send_direct_to(&mut self, ctx: &mut Ctx<'_, Msg<A>>, dest: Destination, msg: Direct<A>) {
        match dest {
            Destination::Partition(p) => {
                let g = self.routes.partition_group(p);
                let inner = Arc::new(Inner::Direct(msg));
                // Clone the routes handle (refcount bump), not the node
                // list: `send` needs `&mut self` while we iterate.
                let routes = Arc::clone(&self.routes);
                for &node in routes.group_nodes(g) {
                    self.send(ctx, node, Arc::clone(&inner));
                }
            }
            Destination::Oracle => {
                // Every replica of every oracle shard group, in shard
                // order: the sender cannot know which shard cares, and
                // receiver-side dedup makes the extra copies harmless.
                let inner = Arc::new(Inner::Direct(msg));
                let routes = Arc::clone(&self.routes);
                for g in routes.oracle_groups() {
                    for &node in routes.group_nodes(g) {
                        self.send(ctx, node, Arc::clone(&inner));
                    }
                }
            }
            Destination::Client(node) => {
                self.send(ctx, node, Arc::new(Inner::Direct(msg)));
            }
        }
    }

    /// Resolves a core's multicast effect into destination group ids.
    fn mcast_groups(&self, partitions: &[PartitionId], oracle: OracleDest) -> Vec<GroupId> {
        let mut gs: Vec<GroupId> =
            partitions.iter().map(|&p| self.routes.partition_group(p)).collect();
        match oracle {
            OracleDest::None => {}
            OracleDest::All => gs.extend(self.routes.oracle_groups()),
            OracleDest::Shard(s) => gs.push(self.routes.oracle_group(s)),
        }
        gs.sort_unstable();
        gs.dedup();
        gs
    }

    /// Client-side multicast: clients are not group members, they submit
    /// directly to every replica of every destination group.
    fn submit_as_client(
        &mut self,
        ctx: &mut Ctx<'_, Msg<A>>,
        mid: MsgId,
        groups: Vec<GroupId>,
        payload: Payload<A>,
    ) {
        // One allocation for the whole fan-out: every destination replica
        // receives a clone of the same `Arc`'d submit message.
        let inner = Arc::new(Inner::Wire(McastWire::Submit {
            mid,
            dests: groups.clone(),
            payload: Arc::new(payload),
        }));
        let routes = Arc::clone(&self.routes);
        for &g in &groups {
            for &node in routes.group_nodes(g) {
                self.send(ctx, node, Arc::clone(&inner));
            }
        }
    }
}

/// The protocol core a server actor hosts.
// One per actor (never collected in bulk), so variant size skew is moot.
#[allow(clippy::large_enum_variant)]
enum Role<A: Application> {
    Partition(ServerCore<A>),
    Oracle(OracleCore<A>),
}

impl<A: Application> Role<A> {
    fn snapshot(&self) -> CoreSnapshot<A> {
        match self {
            Role::Partition(c) => CoreSnapshot::Partition(c.clone()),
            Role::Oracle(c) => CoreSnapshot::Oracle(c.clone()),
        }
    }
}

/// How often a recovering replica re-requests missing peer snapshots.
const RECOVERY_RETRY: SimDuration = SimDuration::from_millis(500);

/// One peer's donated state: its multicast snapshot + protocol core.
type Donation<A> = (MemberSnapshot<Arc<Payload<A>>>, CoreSnapshot<A>);

/// Encodes the consensus-critical stable-storage blob: the promised ballot
/// (Paxos safety requires it to survive crashes) and the incarnation epoch
/// (transport stream identity). 24 bytes little-endian:
/// `[promised.round][promised.owner][epoch]`.
fn encode_stable(promised: Ballot, epoch: u64) -> [u8; 24] {
    let mut b = [0u8; 24];
    b[0..8].copy_from_slice(&promised.round.to_le_bytes());
    b[8..16].copy_from_slice(&(promised.owner as u64).to_le_bytes());
    b[16..24].copy_from_slice(&epoch.to_le_bytes());
    b
}

/// Decodes [`encode_stable`]'s blob; an empty/foreign blob reads as a
/// first boot (initial ballot, epoch 0).
fn decode_stable(blob: &[u8]) -> (Ballot, u64) {
    if blob.len() != 24 {
        return (Ballot::INITIAL, 0);
    }
    let mut words = blob.chunks_exact(8).map(|c| {
        let mut w = [0u8; 8];
        w.copy_from_slice(c);
        u64::from_le_bytes(w)
    });
    match (words.next(), words.next(), words.next()) {
        (Some(round), Some(owner), Some(epoch)) => (Ballot { round, owner: owner as usize }, epoch),
        // Unreachable given the length guard above, but a garbled blob
        // must read as first boot, never panic the replica.
        _ => (Ballot::INITIAL, 0),
    }
}

/// A replica actor: one multicast member plus a partition or oracle core.
///
/// Implements the crash-recovery fault model: the promised ballot and the
/// incarnation epoch live in simulated stable storage; everything else is
/// volatile. After a restart the actor comes back `recovering` — it
/// ignores protocol traffic, asks its group peers for state, and installs
/// once a quorum of [`RecoveryMsg::Response`]s arrived (consensus safety
/// needs the quorum; see [`dynastar_paxos::RecoveryReport`]). A replica
/// that falls farther behind than peers retain log for takes the same
/// state-transfer path without restarting. Groups need ≥ 3 replicas for
/// recovery to terminate — smaller groups cannot assemble a quorum of
/// *peer* snapshots.
pub struct ServerActor<A: Application> {
    member: McastMember<Arc<Payload<A>>>,
    role: Role<A>,
    wiring: Wiring<A>,
    tick: SimDuration,
    /// This replica's multicast address (kept for reconstruction).
    me: MemberId,
    topo: Topology,
    group_cfg: GroupConfig,
    /// Whether this replica records group-level metrics (replica 0 only,
    /// so per-group series are not multiplied by the replication factor).
    record_metrics: bool,
    /// Incarnation epoch (0 at first boot, +1 per restart; persisted).
    epoch: u64,
    /// Last `(promised, epoch)` written to stable storage.
    persisted: (Ballot, u64),
    /// Set between a restart (or far-lag detection) and snapshot install.
    recovering: bool,
    /// Peer state donations collected while recovering.
    recovery_snaps: BTreeMap<NodeId, Donation<A>>,
    /// Previous `is_leader()` observation, for the election counter.
    was_leader: bool,
}

impl<A: Application> ServerActor<A> {
    /// A value `persisted` can never legitimately hold, forcing the first
    /// [`Self::persist_consensus`] to write.
    const NEVER_PERSISTED: (Ballot, u64) =
        (Ballot { round: u64::MAX, owner: usize::MAX }, u64::MAX);

    #[allow(clippy::too_many_arguments)]
    fn new(
        member: McastMember<Arc<Payload<A>>>,
        role: Role<A>,
        wiring: Wiring<A>,
        tick: SimDuration,
        me: MemberId,
        topo: Topology,
        group_cfg: GroupConfig,
        record_metrics: bool,
    ) -> Self {
        ServerActor {
            member,
            role,
            wiring,
            tick,
            me,
            topo,
            group_cfg,
            record_metrics,
            epoch: 0,
            persisted: Self::NEVER_PERSISTED,
            recovering: false,
            recovery_snaps: BTreeMap::new(),
            was_leader: false,
        }
    }

    /// Node ids of this replica's group peers (everyone but itself).
    fn group_peers(&self) -> Vec<NodeId> {
        let mine = self.wiring.routes.node_of(self.me);
        self.wiring
            .routes
            .group_nodes(self.me.group)
            .iter()
            .copied()
            .filter(|&n| n != mine)
            .collect()
    }

    /// Writes the consensus-critical blob to stable storage when it
    /// changed. Handlers run atomically with respect to crash events, so
    /// persisting at the end of a handler is equivalent to persisting
    /// before the promise left the node.
    fn persist_consensus(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        let promised = self.member.promised();
        if (promised, self.epoch) != self.persisted {
            self.persisted = (promised, self.epoch);
            ctx.persist(&encode_stable(promised, self.epoch));
        }
    }

    /// Drains leader-side batching statistics from the consensus layer.
    /// Every replica drains (the per-flush samples are bounded but must
    /// not accumulate forever); only the designated metrics replica
    /// publishes them. Batch sizes and window occupancies are counts,
    /// recorded into duration histograms in µs units.
    fn drain_batch_stats(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        let stats = self.member.take_batch_stats();
        if !self.record_metrics || stats.batches == 0 {
            return;
        }
        let m = ctx.metrics_mut();
        m.incr_counter(metric_names::BATCH_FLUSH_FULL, stats.flush_full);
        m.incr_counter(metric_names::BATCH_FLUSH_DELAY, stats.flush_delay);
        m.incr_counter(metric_names::BATCH_COMMANDS, stats.batched_cmds);
        for &(size, occupancy) in &stats.samples {
            m.record_histogram(metric_names::BATCH_SIZE, SimDuration::from_micros(size as u64));
            m.record_histogram(
                metric_names::BATCH_OCCUPANCY,
                SimDuration::from_micros(occupancy as u64),
            );
        }
    }

    /// Counts rising edges of local leadership.
    fn note_leadership(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        let lead = self.member.is_leader();
        if lead && !self.was_leader {
            ctx.metrics_mut().incr_counter(metric_names::LEADER_ELECTIONS, 1);
        }
        self.was_leader = lead;
    }

    /// Enters the recovering state and solicits peer snapshots.
    fn begin_recovery(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        self.recovering = true;
        self.recovery_snaps.clear();
        self.was_leader = false;
        self.request_snapshots(ctx);
        ctx.set_timer(RECOVERY_RETRY, timer::RECOVER);
    }

    fn request_snapshots(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        for peer in self.group_peers() {
            if !self.recovery_snaps.contains_key(&peer) {
                self.wiring.send(ctx, peer, Arc::new(Inner::Recovery(RecoveryMsg::Request)));
            }
        }
    }

    fn handle_recovery(&mut self, ctx: &mut Ctx<'_, Msg<A>>, from: NodeId, msg: RecoveryMsg<A>) {
        match msg {
            RecoveryMsg::Request => {
                // Only group peers are answered, and only with coherent
                // state — a replica mid-recovery has none to give.
                if self.recovering || !self.wiring.routes.group_nodes(self.me.group).contains(&from)
                {
                    return;
                }
                let snapshot = self.member.snapshot();
                let elements = snapshot.approx_elements();
                let core = self.role.snapshot();
                let m = ctx.metrics_mut();
                m.incr_counter(metric_names::RECOVERY_SNAPSHOTS, 1);
                m.incr_counter(metric_names::RECOVERY_SNAPSHOT_ELEMENTS, elements);
                self.wiring.send(
                    ctx,
                    from,
                    Arc::new(Inner::Recovery(RecoveryMsg::Response(Box::new(RecoveryPayload {
                        snapshot,
                        core,
                    })))),
                );
            }
            RecoveryMsg::Response(payload) => {
                if !self.recovering {
                    return; // late or duplicate donation
                }
                self.recovery_snaps.insert(from, (payload.snapshot, payload.core));
                self.try_install(ctx);
            }
        }
    }

    /// Installs the donated state once a quorum of snapshots is held.
    fn try_install(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        if self.recovery_snaps.len() < self.group_cfg.quorum() {
            return;
        }
        let floor = self.persisted.0;
        let snaps: Vec<MemberSnapshot<Arc<Payload<A>>>> =
            self.recovery_snaps.values().map(|(s, _)| s.clone()).collect();
        let (member, out, donor) =
            McastMember::recover(self.me, self.topo.clone(), self.group_cfg.clone(), floor, &snaps);
        self.member = member;
        // The core must come from the same donor the multicast layer took
        // its bookkeeping from, or replica state and log position diverge.
        // `donor` indexes the same snapshot list we just passed to
        // recover(); if it is somehow out of range, stay in recovery and
        // let the retry timer re-request snapshots instead of panicking.
        let Some(donor_core) = self.recovery_snaps.values().nth(donor).map(|d| d.1.clone()) else {
            return;
        };
        self.role = match donor_core {
            CoreSnapshot::Partition(mut c) => {
                c.set_record_metrics(self.record_metrics);
                Role::Partition(c)
            }
            CoreSnapshot::Oracle(mut c) => {
                c.set_record_metrics(self.record_metrics);
                Role::Oracle(c)
            }
        };
        self.recovering = false;
        self.recovery_snaps.clear();
        ctx.cancel_timer(timer::RECOVER);
        ctx.metrics_mut().incr_counter(metric_names::RECOVERY_COMPLETIONS, 1);
        self.absorb(ctx, out);
        self.note_leadership(ctx);
        self.persist_consensus(ctx);
    }

    /// Routes a multicast-layer output: sends wires, feeds deliveries to
    /// the core, and recursively handles the effects.
    fn absorb(&mut self, ctx: &mut Ctx<'_, Msg<A>>, out: McastOutput<Arc<Payload<A>>>) {
        // Deliveries are in total order — process FIFO.
        let mut deliveries: std::collections::VecDeque<_> = out.delivered.into();
        for (to, wire) in out.outgoing {
            let node = self.wiring.routes.node_of(to);
            self.wiring.send(ctx, node, Arc::new(Inner::Wire(wire)));
        }
        while let Some(d) = deliveries.pop_front() {
            let now = ctx.now();
            let payload = Arc::try_unwrap(d.payload).unwrap_or_else(|a| (*a).clone());
            let effects = {
                let metrics = ctx.metrics_mut();
                match &mut self.role {
                    Role::Partition(core) => core.on_deliver(payload, now, metrics),
                    Role::Oracle(core) => core.on_deliver(payload, now, metrics),
                }
            };
            self.apply_effects(ctx, effects, &mut deliveries);
        }
    }

    fn apply_effects(
        &mut self,
        ctx: &mut Ctx<'_, Msg<A>>,
        effects: Vec<Effect<A>>,
        deliveries: &mut std::collections::VecDeque<dynastar_amcast::Delivery<Arc<Payload<A>>>>,
    ) {
        for eff in effects {
            match eff {
                Effect::Multicast { mid, partitions, oracle, payload } => {
                    let groups = self.wiring.mcast_groups(&partitions, oracle);
                    let out = self.member.submit(mid, groups, Arc::new(payload));
                    for (to, wire) in out.outgoing {
                        let node = self.wiring.routes.node_of(to);
                        self.wiring.send(ctx, node, Arc::new(Inner::Wire(wire)));
                    }
                    deliveries.extend(out.delivered);
                }
                Effect::Send { to, msg } => self.wiring.send_direct_to(ctx, to, msg),
                Effect::SchedulePlan { after } => ctx.set_timer(after, timer::PLAN),
                Effect::Wake { at } => {
                    let delay = at.saturating_duration_since(ctx.now());
                    ctx.set_timer(delay, timer::WAKE);
                }
            }
        }
    }

    fn handle_direct(&mut self, ctx: &mut Ctx<'_, Msg<A>>, msg: Direct<A>) {
        let now = ctx.now();
        let effects = {
            let metrics = ctx.metrics_mut();
            match &mut self.role {
                Role::Partition(core) => core.on_direct(msg, now, metrics),
                Role::Oracle(core) => core.on_direct(msg, now, metrics),
            }
        };
        let mut deliveries = std::collections::VecDeque::new();
        self.apply_effects(ctx, effects, &mut deliveries);
        while let Some(d) = deliveries.pop_front() {
            let now = ctx.now();
            let payload = Arc::try_unwrap(d.payload).unwrap_or_else(|a| (*a).clone());
            let effects = {
                let metrics = ctx.metrics_mut();
                match &mut self.role {
                    Role::Partition(core) => core.on_deliver(payload, now, metrics),
                    Role::Oracle(core) => core.on_deliver(payload, now, metrics),
                }
            };
            self.apply_effects(ctx, effects, &mut deliveries);
        }
    }
}

impl<A: Application> Actor<Msg<A>> for ServerActor<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        ctx.set_timer(self.tick, timer::TICK);
        self.persist_consensus(ctx);
    }

    /// Diagnostic convergence probe: partitions report their owned keys,
    /// oracle replicas their key→partition map. A recovering replica
    /// reports `None` — its placeholder core is not authoritative.
    fn location_view(&self) -> Option<Vec<(u64, u32)>> {
        if self.recovering {
            return None;
        }
        match &self.role {
            Role::Partition(core) => Some(core.location_view()),
            Role::Oracle(core) => Some(core.location_view()),
        }
    }

    /// Crash-recovery boot: volatile state (multicast member, protocol
    /// core, transport streams) is re-created empty under a bumped
    /// incarnation epoch, the consensus floor is read back from stable
    /// storage, and the actor enters recovery to rebuild from a quorum of
    /// peer snapshots.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Msg<A>>, stable: &[u8]) {
        let (floor, old_epoch) = decode_stable(stable);
        self.epoch = old_epoch + 1;
        // Persist immediately: a crash during recovery must still bump.
        self.persisted = (floor, self.epoch);
        ctx.persist(&encode_stable(floor, self.epoch));
        let routes = Arc::clone(&self.wiring.routes);
        self.wiring = Wiring::with_epoch(routes, self.wiring.fifo_cap, self.epoch);
        // Placeholder member/core: gated behind `recovering`, replaced
        // wholesale at install (the t0 preload cannot be replayed, so a
        // restarted replica always takes the snapshot path).
        self.member =
            McastMember::with_group_config(self.me, self.topo.clone(), self.group_cfg.clone());
        self.was_leader = false;
        ctx.set_timer(self.tick, timer::TICK);
        self.begin_recovery(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<A>>, from: NodeId, msg: Msg<A>) {
        let ready = self.wiring.receive(ctx, from, msg);
        for inner in ready {
            match inner {
                // While recovering the member/core hold placeholder state:
                // protocol traffic is dropped (the group tolerates it — we
                // are the faulty minority) and replaced by the snapshot.
                Inner::Wire(wire) => {
                    if self.recovering {
                        continue;
                    }
                    let out = self.member.on_message(wire);
                    self.absorb(ctx, out);
                }
                Inner::Direct(d) => {
                    if self.recovering {
                        continue;
                    }
                    self.handle_direct(ctx, d);
                }
                Inner::Recovery(r) => self.handle_recovery(ctx, from, r),
            }
        }
        if !self.recovering {
            self.note_leadership(ctx);
            self.persist_consensus(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg<A>>, tag: u64) {
        match tag {
            timer::TICK => {
                if !self.recovering {
                    let out = self.member.tick();
                    self.absorb(ctx, out);
                    self.drain_batch_stats(ctx);
                    let now = ctx.now();
                    let effects = {
                        let metrics = ctx.metrics_mut();
                        match &mut self.role {
                            Role::Oracle(core) => core.on_tick(now, metrics),
                            Role::Partition(_) => Vec::new(),
                        }
                    };
                    if !effects.is_empty() {
                        let mut deliveries = std::collections::VecDeque::new();
                        self.apply_effects(ctx, effects, &mut deliveries);
                        debug_assert!(deliveries.is_empty());
                    }
                    if self.member.needs_state_transfer() {
                        // Fell farther behind than peers retain log for
                        // (e.g. a long partition): only a snapshot can
                        // catch this replica up.
                        self.begin_recovery(ctx);
                    } else {
                        self.note_leadership(ctx);
                        self.persist_consensus(ctx);
                    }
                }
                self.wiring.maintain(ctx);
                ctx.set_timer(self.tick, timer::TICK);
            }
            timer::RECOVER if self.recovering => {
                self.request_snapshots(ctx);
                ctx.set_timer(RECOVERY_RETRY, timer::RECOVER);
            }
            timer::PLAN => {
                if self.recovering {
                    return;
                }
                let now = ctx.now();
                let effects = {
                    let metrics = ctx.metrics_mut();
                    match &mut self.role {
                        Role::Oracle(core) => core.on_plan_timer(now, metrics),
                        Role::Partition(_) => Vec::new(),
                    }
                };
                let mut deliveries = std::collections::VecDeque::new();
                self.apply_effects(ctx, effects, &mut deliveries);
                while let Some(d) = deliveries.pop_front() {
                    let now = ctx.now();
                    let payload = Arc::try_unwrap(d.payload).unwrap_or_else(|a| (*a).clone());
                    let effects = {
                        let metrics = ctx.metrics_mut();
                        match &mut self.role {
                            Role::Partition(core) => core.on_deliver(payload, now, metrics),
                            Role::Oracle(core) => core.on_deliver(payload, now, metrics),
                        }
                    };
                    self.apply_effects(ctx, effects, &mut deliveries);
                }
            }
            timer::WAKE => {
                if self.recovering {
                    return;
                }
                let now = ctx.now();
                let effects = {
                    let metrics = ctx.metrics_mut();
                    match &mut self.role {
                        Role::Partition(core) => core.on_wake(now, metrics),
                        Role::Oracle(_) => Vec::new(),
                    }
                };
                let mut deliveries = std::collections::VecDeque::new();
                self.apply_effects(ctx, effects, &mut deliveries);
                while let Some(d) = deliveries.pop_front() {
                    let now = ctx.now();
                    let payload = Arc::try_unwrap(d.payload).unwrap_or_else(|a| (*a).clone());
                    let effects = {
                        let metrics = ctx.metrics_mut();
                        match &mut self.role {
                            Role::Partition(core) => core.on_deliver(payload, now, metrics),
                            Role::Oracle(core) => core.on_deliver(payload, now, metrics),
                        }
                    };
                    self.apply_effects(ctx, effects, &mut deliveries);
                }
            }
            _ => {}
        }
    }
}

/// A closed-loop client actor driving a [`Workload`].
pub struct ClientActor<A: Application, W: Workload<A>> {
    core: ClientCore<A>,
    workload: W,
    wiring: Wiring<A>,
    timeout: SimDuration,
    /// Uniform random delay before the first command, to de-synchronize
    /// client start-up.
    start_jitter: SimDuration,
    /// Set when the workload returns `None`.
    done: bool,
}

impl<A: Application, W: Workload<A>> ClientActor<A, W> {
    fn apply_effects(&mut self, ctx: &mut Ctx<'_, Msg<A>>, effects: Vec<Effect<A>>) {
        for eff in effects {
            match eff {
                Effect::Multicast { mid, partitions, oracle, payload } => {
                    let groups = self.wiring.mcast_groups(&partitions, oracle);
                    self.wiring.submit_as_client(ctx, mid, groups, payload);
                }
                Effect::Send { to, msg } => self.wiring.send_direct_to(ctx, to, msg),
                Effect::Wake { at } => {
                    let delay = at.saturating_duration_since(ctx.now());
                    ctx.set_timer(delay, timer::BACKOFF);
                }
                Effect::SchedulePlan { .. } => {}
            }
        }
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        if self.done || self.core.is_busy() {
            return;
        }
        let now = ctx.now();
        match self.workload.next_command(now, ctx.rng()) {
            Some(kind) => {
                let now = ctx.now();
                let effects = self.core.issue(kind, now);
                self.apply_effects(ctx, effects);
                ctx.set_timer(self.timeout, timer::TIMEOUT);
            }
            None => {
                self.done = true;
                ctx.cancel_timer(timer::TIMEOUT);
            }
        }
    }
}

impl<A: Application, W: Workload<A>> Actor<Msg<A>> for ClientActor<A, W> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        ctx.set_timer(self.start_jitter, timer::START);
        ctx.set_timer(SimDuration::from_millis(100), timer::RETX);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<A>>, from: NodeId, msg: Msg<A>) {
        let ready = self.wiring.receive(ctx, from, msg);
        for inner in ready {
            let Inner::Direct(d) = inner else { continue };
            let now = ctx.now();
            let (effects, event) = {
                let metrics = ctx.metrics_mut();
                self.core.on_direct(d, now, metrics)
            };
            self.apply_effects(ctx, effects);
            if let Some(ClientEvent::Completed { cmd, reply, ok, .. }) = event {
                ctx.cancel_timer(timer::TIMEOUT);
                let now = ctx.now();
                self.workload.on_completed(now, &cmd, if ok { reply.as_ref() } else { None });
                let think = self.workload.think_time(now, ctx.rng());
                if think == SimDuration::ZERO {
                    self.issue_next(ctx);
                } else {
                    ctx.set_timer(think, timer::THINK);
                }
            } else if self.core.is_busy() {
                // Retry dispatched: refresh the response timeout.
                ctx.set_timer(self.timeout, timer::TIMEOUT);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg<A>>, tag: u64) {
        match tag {
            timer::START | timer::THINK => self.issue_next(ctx),
            timer::TIMEOUT if self.core.is_busy() => {
                let now = ctx.now();
                let effects = {
                    let metrics = ctx.metrics_mut();
                    self.core.on_timeout(now, metrics)
                };
                self.apply_effects(ctx, effects);
                ctx.set_timer(self.timeout, timer::TIMEOUT);
            }
            timer::RETX => {
                self.wiring.maintain(ctx);
                ctx.set_timer(SimDuration::from_millis(100), timer::RETX);
            }
            timer::BACKOFF => {
                let now = ctx.now();
                let effects = self.core.on_backoff(now);
                self.apply_effects(ctx, effects);
                if self.core.is_busy() {
                    // The deferred retry is on the wire: arm the response
                    // timeout afresh so the backoff window doesn't eat it.
                    ctx.set_timer(self.timeout, timer::TIMEOUT);
                }
            }
            _ => {}
        }
    }
}

/// Deployment parameters for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of state partitions.
    pub partitions: u32,
    /// Replicas per group (partitions and oracle alike).
    pub replicas: usize,
    /// Execution mode (DynaStar / S-SMR / DS-SMR).
    pub mode: Mode,
    /// Master seed for the simulation.
    pub seed: u64,
    /// Network model.
    pub net: NetConfig,
    /// Multicast/consensus tick interval.
    pub tick: SimDuration,
    /// Partition server tunables.
    pub server: ServerConfig,
    /// Workload-graph change count that triggers repartitioning.
    pub repartition_threshold: u64,
    /// Minimum time between repartitionings.
    pub min_plan_interval: SimDuration,
    /// Modelled partitioner latency: base + per-element.
    pub compute_base: SimDuration,
    /// Modelled partitioner latency per graph element.
    pub compute_per_element: SimDuration,
    /// Modelled execution engine at partition replicas: worker count,
    /// per-command CPU time and dependency-window size. The default
    /// (serial, zero service time) models infinite-speed servers; set a
    /// service time to get saturation behaviour and raise `workers` for
    /// conflict-aware parallel execution (see [`ExecConfig`]).
    pub exec: ExecConfig,
    /// Client response timeout before re-dispatch through the oracle.
    pub client_timeout: SimDuration,
    /// Base delay clients wait before re-dispatching after a stale-routing
    /// `Retry` (exponential per attempt). Zero retries immediately — the
    /// historical behaviour; set it to absorb migration-induced retry
    /// storms as backpressure instead of load.
    pub client_retry_backoff: SimDuration,
    /// Seed client caches with the initial placement (always done for
    /// S-SMR, whose map is static).
    pub warm_client_caches: bool,
    /// Metrics time-series bucket.
    pub metrics_bucket: SimDuration,
    /// Leader-side command batching / instance pipelining, applied to
    /// every consensus group (partitions and oracle alike, unless
    /// [`ClusterConfig::oracle_batch`] overrides the oracle's). The
    /// default ([`BatchConfig::UNBATCHED`]) reproduces the unbatched
    /// pipeline.
    pub batch: BatchConfig,
    /// Maximum out-of-order frames buffered per peer in the transport's
    /// FIFO reorder buffers. Frames past the cap are dropped (and counted);
    /// the ARQ layer retransmits them, so the bound trades memory for
    /// recovery latency only.
    pub fifo_buffer_cap: usize,
    /// Oracle workload-graph vertex cap (decay-based eviction beyond it).
    pub max_graph_vertices: usize,
    /// Oracle workload-graph edge cap.
    pub max_graph_edges: usize,
    /// Oracle warm-start repartitioning (incremental `partition_from`
    /// seeded from the current plan; see `OracleConfig::warm_start`).
    pub warm_plans: bool,
    /// Warm-plan quality gate: accepted while the warm cut stays within
    /// this ratio of the last full multilevel run's.
    pub warm_quality_ratio: f64,
    /// Warm-plan churn gate: full recompute when keys created + deleted
    /// since the last plan exceed this fraction of the keyspace.
    pub warm_churn_limit: f64,
    /// Number of oracle shard groups (DESIGN.md §7). Shard `s` owns the
    /// [`crate::routing::shard_of`] slice of the key→partition map and is
    /// multicast group `partitions + s`; shard 0 is the planner. The
    /// default `1` reproduces the unsharded oracle byte-for-byte.
    pub oracle_shards: u32,
    /// Non-planner shards ship their accumulated hint delta to the planner
    /// once this many graph changes pile up (see
    /// [`OracleConfig::digest_threshold`]).
    pub oracle_digest_threshold: u64,
    /// Trickle-flush interval for sub-threshold digest deltas (see
    /// [`OracleConfig::digest_interval`]).
    pub oracle_digest_interval: SimDuration,
    /// Client-side location caching. Disabling it forces every command
    /// through an oracle `Exec` query — the cold-cache flash-crowd load
    /// the fig8 oracle benchmark measures shard scaling under.
    pub client_location_cache: bool,
    /// Ordering batch / pipelining config for the oracle shard groups
    /// alone (`None` = share [`ClusterConfig::batch`]). fig8's shard
    /// sweep pins the oracle window to one in-flight instance per leader
    /// — making each shard's leader a genuine serialization point —
    /// while the partition groups keep the unbounded default.
    pub oracle_batch: Option<BatchConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            partitions: 2,
            replicas: 3,
            mode: Mode::Dynastar,
            seed: 1,
            net: NetConfig::default(),
            tick: SimDuration::from_millis(1),
            server: ServerConfig::default(),
            repartition_threshold: 2_000,
            min_plan_interval: SimDuration::from_secs(30),
            compute_base: SimDuration::from_millis(50),
            compute_per_element: SimDuration::from_micros(1),
            exec: ExecConfig::default(),
            client_timeout: SimDuration::from_secs(10),
            client_retry_backoff: SimDuration::ZERO,
            warm_client_caches: false,
            metrics_bucket: SimDuration::from_secs(1),
            batch: BatchConfig::UNBATCHED,
            fifo_buffer_cap: 4_096,
            max_graph_vertices: 1 << 18,
            max_graph_edges: 1 << 20,
            warm_plans: true,
            warm_quality_ratio: 1.1,
            warm_churn_limit: 0.25,
            oracle_shards: 1,
            oracle_digest_threshold: 256,
            oracle_digest_interval: SimDuration::from_millis(500),
            client_location_cache: true,
            oracle_batch: None,
        }
    }
}

/// Builder for a complete simulated deployment.
///
/// # Example
///
/// See `examples/quickstart.rs`, or the crate-level docs.
pub struct ClusterBuilder<A: Application> {
    config: ClusterConfig,
    placement: BTreeMap<LocKey, PartitionId>,
    initial_vars: Vec<(VarId, A::Value)>,
}

impl<A: Application> ClusterBuilder<A> {
    /// Starts a builder from a config.
    pub fn new(config: ClusterConfig) -> Self {
        ClusterBuilder { config, placement: BTreeMap::new(), initial_vars: Vec::new() }
    }

    /// Places `key` on `partition` at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn place(&mut self, key: LocKey, partition: PartitionId) -> &mut Self {
        assert!(partition.0 < self.config.partitions, "partition {partition} out of range");
        self.placement.insert(key, partition);
        self
    }

    /// Adds an initial variable (its key must have been [placed](Self::place)).
    pub fn with_var(&mut self, var: VarId, value: A::Value) -> &mut Self {
        self.initial_vars.push((var, value));
        self
    }

    /// Bulk variant of [`Self::with_var`].
    pub fn with_vars(&mut self, vars: impl IntoIterator<Item = (VarId, A::Value)>) -> &mut Self {
        self.initial_vars.extend(vars);
        self
    }

    /// Assembles the cluster: spawns oracle and partition replicas,
    /// preloads state, and returns the handle clients are added to.
    ///
    /// # Panics
    ///
    /// Panics if an initial variable's key has no placement.
    pub fn build(&mut self) -> Cluster<A> {
        let cfg = self.config.clone();
        let k = cfg.partitions as usize;
        assert!(cfg.oracle_shards > 0, "cluster needs at least one oracle shard");
        let o = cfg.oracle_shards as usize;
        let sim_cfg = SimConfig::default()
            .seed(cfg.seed)
            .net(cfg.net.clone())
            .metrics_bucket(cfg.metrics_bucket);
        let mut sim: Simulation<Msg<A>> = Simulation::new(sim_cfg);

        let topo = Topology::uniform(k + o, cfg.replicas);
        let oracle_base = GroupId(k as u32);
        // One shared consensus config (timing + batching) for every group;
        // also stored per actor so restarted replicas reconstruct identically.
        // Oracle shard groups may pin their own batching (fig8's leader
        // serialization model) without touching the partitions'.
        let group_cfg = GroupConfig::with_timing(cfg.replicas, 600, 2).with_batching(cfg.batch);
        let oracle_group_cfg = GroupConfig::with_timing(cfg.replicas, 600, 2)
            .with_batching(cfg.oracle_batch.unwrap_or(cfg.batch));

        // Reserve node ids first so the route table is complete before any
        // actor is constructed.
        let mut groups: Vec<Vec<NodeId>> = Vec::with_capacity(k + o);
        // Node ids are assigned sequentially by add_node; precompute them.
        let mut next = 0u32;
        for _ in 0..k + o {
            let mut g = Vec::with_capacity(cfg.replicas);
            for _ in 0..cfg.replicas {
                g.push(NodeId::from_raw(next));
                next += 1;
            }
            groups.push(g);
        }
        let routes = Arc::new(RouteTable { groups, oracle_base, oracle_shards: cfg.oracle_shards });

        // Group initial variables by partition.
        let mut vars_by_part: Vec<Vec<(VarId, A::Value)>> = vec![Vec::new(); k];
        for (v, val) in self.initial_vars.drain(..) {
            let key = A::locality(v);
            let p = *self
                .placement
                .get(&key)
                // detlint::allow(P003): ClusterBuilder::build runs at test/bench setup, before any replica exists; a mis-specified fixture should fail fast
                .unwrap_or_else(|| panic!("initial var {v} has unplaced key {key}"));
            vars_by_part[p.0 as usize].push((v, val));
        }
        let mut keys_by_part: Vec<Vec<LocKey>> = vec![Vec::new(); k];
        for (&key, &p) in &self.placement {
            keys_by_part[p.0 as usize].push(key);
        }

        // Partition replicas.
        for p in 0..k {
            for r in 0..cfg.replicas {
                let mut core = ServerCore::<A>::new(
                    PartitionId(p as u32),
                    cfg.mode,
                    ServerConfig {
                        collect_hints: cfg.mode.optimizes() && cfg.server.collect_hints,
                        record_metrics: r == 0,
                        exec: cfg.exec,
                        ..cfg.server.clone()
                    },
                );
                core.preload(keys_by_part[p].iter().copied(), vars_by_part[p].iter().cloned());
                let me = MemberId::new(GroupId(p as u32), r);
                let actor = ServerActor::new(
                    McastMember::with_group_config(me, topo.clone(), group_cfg.clone()),
                    Role::Partition(core),
                    Wiring::new(Arc::clone(&routes), cfg.fifo_buffer_cap),
                    cfg.tick,
                    me,
                    topo.clone(),
                    group_cfg.clone(),
                    r == 0,
                );
                let id = sim.add_node(format!("p{p}r{r}"), actor);
                debug_assert_eq!(id, routes.groups[p][r]);
            }
        }
        // Oracle shard replicas. Every shard replicates the full map;
        // slice ownership (nok authority, location_view) comes from the
        // per-core shard index.
        for s in 0..cfg.oracle_shards {
            for r in 0..cfg.replicas {
                let mut core = OracleCore::<A>::new(OracleConfig {
                    partitions: cfg.partitions,
                    mode: cfg.mode,
                    repartition_threshold: cfg.repartition_threshold,
                    compute_base: cfg.compute_base,
                    compute_per_element: cfg.compute_per_element,
                    balance_factor: 1.2,
                    decay_hints: true,
                    min_plan_interval: cfg.min_plan_interval,
                    record_metrics: r == 0,
                    max_graph_vertices: cfg.max_graph_vertices,
                    max_graph_edges: cfg.max_graph_edges,
                    warm_start: cfg.warm_plans,
                    warm_quality_ratio: cfg.warm_quality_ratio,
                    warm_churn_limit: cfg.warm_churn_limit,
                    shards: cfg.oracle_shards,
                    shard: s,
                    digest_threshold: cfg.oracle_digest_threshold,
                    digest_interval: cfg.oracle_digest_interval,
                });
                core.preload_map(self.placement.iter().map(|(&kk, &p)| (kk, p)));
                let me = MemberId::new(GroupId(k as u32 + s), r);
                let actor = ServerActor::new(
                    McastMember::with_group_config(me, topo.clone(), oracle_group_cfg.clone()),
                    Role::Oracle(core),
                    Wiring::new(Arc::clone(&routes), cfg.fifo_buffer_cap),
                    cfg.tick,
                    me,
                    topo.clone(),
                    oracle_group_cfg.clone(),
                    r == 0,
                );
                // The single-shard name stays `oracle-r{r}`: node names feed
                // nothing deterministic, but diffable traces are nice.
                let name = if cfg.oracle_shards == 1 {
                    format!("oracle-r{r}")
                } else {
                    format!("oracle-s{s}r{r}")
                };
                let id = sim.add_node(name, actor);
                debug_assert_eq!(id, routes.groups[k + s as usize][r]);
            }
        }

        Cluster { sim, routes, config: cfg, placement: self.placement.clone(), clients: Vec::new() }
    }
}

/// One replica's key→partition location map as sorted `(key, partition)`
/// pairs: a partition replica reports the keys it owns, an oracle replica
/// the full map. See [`Cluster::location_views`].
pub type LocationView = Vec<(u64, u32)>;

/// A running simulated deployment: the simulation, its replicas, and the
/// clients added so far.
pub struct Cluster<A: Application> {
    /// The underlying simulation (exposed for metrics and time control).
    pub sim: Simulation<Msg<A>>,
    routes: Arc<RouteTable>,
    /// The configuration the cluster was built with.
    pub config: ClusterConfig,
    placement: BTreeMap<LocKey, PartitionId>,
    clients: Vec<NodeId>,
}

impl<A: Application> Cluster<A> {
    /// Starts a builder.
    pub fn builder(config: ClusterConfig) -> ClusterBuilder<A> {
        ClusterBuilder::new(config)
    }

    /// Adds a closed-loop client driving `workload`. Returns its node id.
    pub fn add_client(&mut self, workload: impl Workload<A>) -> NodeId {
        let idx = self.clients.len();
        // Pre-compute the id the simulation will assign.
        let id = NodeId::from_raw(self.sim.node_count() as u32);
        let mut core = ClientCore::new(id, self.config.mode);
        core.set_retry_backoff(self.config.client_retry_backoff);
        core.set_oracle_shards(self.config.oracle_shards);
        // S-SMR has no oracle fallback: its static map must stay cached
        // regardless of the cache knob.
        if !self.config.client_location_cache && self.config.mode != Mode::SSmr {
            core.set_location_cache(false);
        } else if self.config.warm_client_caches || self.config.mode == Mode::SSmr {
            core.preload_cache(self.placement.iter().map(|(&k, &p)| (k, p)));
        }
        let jitter_us = 1 + (idx as u64 * 137) % 5_000;
        let actor = ClientActor {
            core,
            workload,
            wiring: Wiring::new(Arc::clone(&self.routes), self.config.fifo_buffer_cap),
            timeout: self.config.client_timeout,
            start_jitter: SimDuration::from_micros(jitter_us),
            done: false,
        };
        let assigned = self.sim.add_node(format!("client{idx}"), actor);
        debug_assert_eq!(assigned, id);
        self.clients.push(assigned);
        assigned
    }

    /// Node ids of all clients.
    pub fn clients(&self) -> &[NodeId] {
        &self.clients
    }

    /// Node ids of every replica group: partitions `0..k`, then the
    /// oracle shard groups in shard order. Fault-injection harnesses use
    /// these as fault domains (at most a minority of each group may be
    /// down at once).
    pub fn groups(&self) -> &[Vec<NodeId>] {
        &self.routes.groups
    }

    /// Runs the simulation for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Runs the simulation until absolute time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Every replica's view of the key→partition location map, grouped as
    /// the cluster's groups (partitions `0..k`, then the oracle shard
    /// groups): one `Option<Vec<(key, partition)>>` per replica, `None`
    /// for a replica still recovering. Partitions report the keys they
    /// own; an oracle replica reports its shard's owned slice (the full
    /// map with one shard). Convergence tests assert that all replicas of
    /// a group agree and that the union of the partition views equals the
    /// union of the shard views.
    pub fn location_views(&self) -> Vec<Vec<Option<LocationView>>> {
        self.groups()
            .iter()
            .map(|group| group.iter().map(|&n| self.sim.location_view(n)).collect())
            .collect()
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Mutable metrics (e.g. reset after warm-up).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        self.sim.metrics_mut()
    }
}

impl<A: Application> std::fmt::Debug for Cluster<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.config.partitions)
            .field("replicas", &self.config.replicas)
            .field("mode", &self.config.mode)
            .field("clients", &self.clients.len())
            .finish()
    }
}
