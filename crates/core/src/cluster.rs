//! Cluster assembly: actors that wire the protocol cores to the
//! simulation runtime, and a builder for complete deployments.
//!
//! Topology convention: partitions `0..k` are multicast groups `0..k`; the
//! oracle is group `k`. Every group has the same replica count (the paper
//! gives the oracle the same resources as every partition).

use std::collections::BTreeMap;
use std::sync::Arc;

use dynastar_amcast::{GroupId, McastMember, McastOutput, McastWire, MemberId, MsgId, Topology};
use dynastar_runtime::fifo::{FifoLinks, Frame};
use dynastar_runtime::{
    Actor, Ctx, Metrics, NetConfig, NodeId, SimConfig, SimDuration, SimTime, Simulation,
};

use crate::client::{ClientCore, ClientEvent, Workload};
use crate::command::{Application, LocKey, Mode, PartitionId, VarId};
use crate::oracle::{OracleConfig, OracleCore};
use crate::payload::{Destination, Direct, Effect, Payload};
use crate::server::{ServerConfig, ServerCore};

/// Timer tags used by the actors.
mod timer {
    /// Periodic multicast/consensus tick.
    pub const TICK: u64 = 1;
    /// Oracle plan-compute completion.
    pub const PLAN: u64 = 2;
    /// Client response timeout.
    pub const TIMEOUT: u64 = 3;
    /// Client initial-issue stagger.
    pub const START: u64 = 4;
    /// Partition modelled-CPU wake-up.
    pub const WAKE: u64 = 5;
    /// Transport retransmission check (clients; servers piggyback on TICK).
    pub const RETX: u64 = 6;
}

/// Everything that travels between nodes: FIFO-framed wire messages plus
/// transport-level cumulative acks (the ARQ layer that makes links
/// reliable under message loss, as the paper's §2.1 channel model
/// assumes).
#[derive(Debug)]
pub enum Msg<A: Application> {
    /// A sequenced protocol frame.
    Frame(Frame<Inner<A>>),
    /// Selective ack: every frame with `seq < up_to` was received, and the
    /// listed later frames are missing (retransmit them now).
    Ack {
        /// The receiver's next expected sequence number.
        up_to: u64,
        /// Holes above `up_to` the receiver is waiting for.
        missing: Vec<u64>,
    },
}

impl<A: Application> Clone for Msg<A> {
    fn clone(&self) -> Self {
        match self {
            Msg::Frame(f) => Msg::Frame(Frame { seq: f.seq, inner: f.inner.clone() }),
            Msg::Ack { up_to, missing } => {
                Msg::Ack { up_to: *up_to, missing: missing.clone() }
            }
        }
    }
}

/// The unframed message body.
#[derive(Debug)]
pub enum Inner<A: Application> {
    /// Atomic multicast traffic. Payloads travel behind an `Arc` so the
    /// many per-replica copies share one allocation.
    Wire(McastWire<Arc<Payload<A>>>),
    /// Direct protocol messages.
    Direct(Direct<A>),
}

impl<A: Application> Clone for Inner<A> {
    fn clone(&self) -> Self {
        match self {
            Inner::Wire(w) => Inner::Wire(w.clone()),
            Inner::Direct(d) => Inner::Direct(d.clone()),
        }
    }
}

/// Node addressing shared by every actor.
#[derive(Debug)]
struct RouteTable {
    /// `groups[g][replica]` = node id.
    groups: Vec<Vec<NodeId>>,
    oracle_group: GroupId,
}

impl RouteTable {
    fn node_of(&self, m: MemberId) -> NodeId {
        self.groups[m.group.0 as usize][m.index]
    }

    fn group_nodes(&self, g: GroupId) -> &[NodeId] {
        &self.groups[g.0 as usize]
    }

    fn partition_group(&self, p: PartitionId) -> GroupId {
        GroupId(p.0)
    }
}

/// Retransmission timeout for unacknowledged frames.
const RETX_AFTER: SimDuration = SimDuration::from_millis(300);
/// Give up on a peer's unacked frames after this long (crashed peer).
const RETX_GIVE_UP: SimDuration = SimDuration::from_secs(30);
/// Ack after this many unacknowledged received frames (or lazily on the
/// periodic ack flush) — batching keeps ack traffic a small fraction of
/// data traffic.
const ACK_EVERY: u64 = 64;
/// Retransmit at most this many frames per peer per timeout-driven scan.
/// Timeout retransmission is only the fallback for stream *tails* (frames
/// with nothing after them); holes inside the stream are healed precisely
/// by the selective-repeat NACKs in [`Msg::Ack`].
const RETX_WINDOW: usize = 32;
/// Maximum holes reported per ack.
const NACK_LIMIT: usize = 64;
/// Minimum spacing of lazy ack flushes.
const ACK_FLUSH_EVERY: SimDuration = SimDuration::from_millis(100);

/// Shared actor plumbing: FIFO links + a simple ARQ (cumulative acks,
/// timeout retransmission) + message fan-out.
struct Wiring<A: Application> {
    routes: Arc<RouteTable>,
    fifo: FifoLinks<NodeId, Inner<A>>,
    /// Sent frames not yet acknowledged: per peer, seq → (frame, sent at).
    unacked: std::collections::HashMap<NodeId, std::collections::BTreeMap<u64, (Frame<Inner<A>>, SimTime)>>,
    /// Last cumulative ack value sent to each peer.
    acked_to_peer: std::collections::HashMap<NodeId, u64>,
    /// Last time lazy acks were flushed.
    last_ack_flush: SimTime,
}

impl<A: Application> Wiring<A> {
    fn new(routes: Arc<RouteTable>) -> Self {
        Wiring {
            routes,
            fifo: FifoLinks::new(),
            unacked: std::collections::HashMap::new(),
            acked_to_peer: std::collections::HashMap::new(),
            last_ack_flush: SimTime::ZERO,
        }
    }

    fn send(&mut self, ctx: &mut Ctx<'_, Msg<A>>, to: NodeId, inner: Inner<A>) {
        let frame = self.fifo.wrap(to, inner);
        self.unacked
            .entry(to)
            .or_default()
            .insert(frame.seq, (frame.clone(), ctx.now()));
        ctx.send(to, Msg::Frame(frame));
    }

    /// Accepts an incoming message; returns the in-order released inner
    /// messages (empty for acks/out-of-order frames).
    fn receive(&mut self, ctx: &mut Ctx<'_, Msg<A>>, from: NodeId, msg: Msg<A>) -> Vec<Inner<A>> {
        match msg {
            Msg::Frame(frame) => {
                let ready = self.fifo.accept(from, frame);
                if std::env::var_os("DYNASTAR_TRACE_ARQ").is_some() {
                    let buffered = self.fifo.buffered_count();
                    if buffered > 200 && buffered % 100 == 0 {
                        eprintln!(
                            "[arq] t={} node has {buffered} frames buffered behind gaps (from {from})",
                            ctx.now()
                        );
                    }
                }
                // Ack in batches: promptly once enough progress piles up,
                // otherwise lazily from the periodic flush. This keeps ack
                // traffic a small fraction of data traffic while bounding
                // the sender's retransmission buffer.
                let expected = self.fifo.expected_from(&from);
                let acked = self.acked_to_peer.get(&from).copied().unwrap_or(0);
                let missing = self.fifo.missing_from(&from, NACK_LIMIT);
                if expected >= acked + ACK_EVERY || !missing.is_empty() {
                    self.acked_to_peer.insert(from, expected);
                    ctx.send(from, Msg::Ack { up_to: expected, missing });
                }
                ready
            }
            Msg::Ack { up_to, missing } => {
                let now = ctx.now();
                let mut resends = Vec::new();
                if let Some(buf) = self.unacked.get_mut(&from) {
                    *buf = buf.split_off(&up_to);
                    // Selective repeat: resend exactly the reported holes.
                    for seq in missing {
                        if let Some((frame, sent_at)) = buf.get_mut(&seq) {
                            // Rate-limit per frame: a hole may be reported
                            // by several acks before the resend lands.
                            if now.saturating_duration_since(*sent_at)
                                >= SimDuration::from_millis(20)
                            {
                                *sent_at = now;
                                resends.push(frame.clone());
                            }
                        }
                    }
                    if buf.is_empty() {
                        self.unacked.remove(&from);
                    }
                }
                for frame in resends {
                    ctx.send(from, Msg::Frame(frame));
                }
                Vec::new()
            }
        }
    }

    /// Transport maintenance: lazy ack flush + retransmission scan, rate
    /// limited to once per [`ACK_FLUSH_EVERY`] regardless of how often the
    /// hosting actor ticks.
    fn maintain(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        let now = ctx.now();
        if now.saturating_duration_since(self.last_ack_flush) < ACK_FLUSH_EVERY {
            return;
        }
        self.last_ack_flush = now;
        self.flush_acks(ctx);
        self.retransmit_due(ctx);
    }

    /// Flushes lazy acks for peers with unacknowledged receive progress.
    fn flush_acks(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        let peers: Vec<NodeId> = self.fifo.receive_peers().copied().collect();
        for peer in peers {
            let expected = self.fifo.expected_from(&peer);
            let acked = self.acked_to_peer.get(&peer).copied().unwrap_or(0);
            let missing = self.fifo.missing_from(&peer, NACK_LIMIT);
            if expected > acked || !missing.is_empty() {
                self.acked_to_peer.insert(peer, expected);
                ctx.send(peer, Msg::Ack { up_to: expected, missing });
            }
        }
    }

    /// Retransmits frames unacknowledged past the timeout.
    fn retransmit_due(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        let now = ctx.now();
        let mut dead_peers = Vec::new();
        for (&peer, buf) in self.unacked.iter_mut() {
            let mut resends = Vec::new();
            let mut expired = false;
            for (frame, sent_at) in buf.values_mut() {
                let age = now.saturating_duration_since(*sent_at);
                if age >= RETX_GIVE_UP {
                    expired = true;
                    break;
                }
                if age >= RETX_AFTER {
                    *sent_at = now;
                    resends.push(frame.clone());
                    if resends.len() >= RETX_WINDOW {
                        // Pace the recovery: the receiver's cumulative ack
                        // will advance once the head of the stream heals,
                        // releasing the rest without retransmission.
                        break;
                    }
                } else {
                    // Frames are buffered in send order, so once one is
                    // too young the rest (sent later) are too. A refreshed
                    // prefix can hide an older suffix for at most one scan
                    // interval — an acceptable retransmission delay.
                    break;
                }
            }
            if expired {
                if std::env::var_os("DYNASTAR_TRACE_ARQ").is_some() {
                    eprintln!(
                        "[arq] t={} giving up on peer {peer}: dropping {} unacked frames",
                        now,
                        buf.len()
                    );
                }
                dead_peers.push(peer);
                continue;
            }
            for frame in resends {
                ctx.send(peer, Msg::Frame(frame));
            }
        }
        for peer in dead_peers {
            self.unacked.remove(&peer);
        }
    }

    fn send_direct_to(&mut self, ctx: &mut Ctx<'_, Msg<A>>, dest: Destination, msg: Direct<A>) {
        match dest {
            Destination::Partition(p) => {
                let g = self.routes.partition_group(p);
                for node in self.routes.group_nodes(g).to_vec() {
                    self.send(ctx, node, Inner::Direct(msg.clone()));
                }
            }
            Destination::Oracle => {
                for node in self.routes.group_nodes(self.routes.oracle_group).to_vec() {
                    self.send(ctx, node, Inner::Direct(msg.clone()));
                }
            }
            Destination::Client(node) => {
                self.send(ctx, node, Inner::Direct(msg));
            }
        }
    }

    /// Resolves a core's multicast effect into destination group ids.
    fn mcast_groups(&self, partitions: &[PartitionId], include_oracle: bool) -> Vec<GroupId> {
        let mut gs: Vec<GroupId> =
            partitions.iter().map(|&p| self.routes.partition_group(p)).collect();
        if include_oracle {
            gs.push(self.routes.oracle_group);
        }
        gs.sort_unstable();
        gs.dedup();
        gs
    }

    /// Client-side multicast: clients are not group members, they submit
    /// directly to every replica of every destination group.
    fn submit_as_client(
        &mut self,
        ctx: &mut Ctx<'_, Msg<A>>,
        mid: MsgId,
        groups: Vec<GroupId>,
        payload: Payload<A>,
    ) {
        let payload = Arc::new(payload);
        for &g in &groups {
            for node in self.routes.group_nodes(g).to_vec() {
                self.send(
                    ctx,
                    node,
                    Inner::Wire(McastWire::Submit {
                        mid,
                        dests: groups.clone(),
                        payload: Arc::clone(&payload),
                    }),
                );
            }
        }
    }
}

/// The protocol core a server actor hosts.
enum Role<A: Application> {
    Partition(ServerCore<A>),
    Oracle(OracleCore<A>),
}

/// A replica actor: one multicast member plus a partition or oracle core.
pub struct ServerActor<A: Application> {
    member: McastMember<Arc<Payload<A>>>,
    role: Role<A>,
    wiring: Wiring<A>,
    tick: SimDuration,
}

impl<A: Application> ServerActor<A> {
    /// Routes a multicast-layer output: sends wires, feeds deliveries to
    /// the core, and recursively handles the effects.
    fn absorb(&mut self, ctx: &mut Ctx<'_, Msg<A>>, out: McastOutput<Arc<Payload<A>>>) {
        // Deliveries are in total order — process FIFO.
        let mut deliveries: std::collections::VecDeque<_> = out.delivered.into();
        for (to, wire) in out.outgoing {
            let node = self.wiring.routes.node_of(to);
            self.wiring.send(ctx, node, Inner::Wire(wire));
        }
        while let Some(d) = deliveries.pop_front() {
            let now = ctx.now();
            let payload = Arc::try_unwrap(d.payload).unwrap_or_else(|a| (*a).clone());
            let effects = {
                let metrics = ctx.metrics_mut();
                match &mut self.role {
                    Role::Partition(core) => core.on_deliver(payload, now, metrics),
                    Role::Oracle(core) => core.on_deliver(payload, now, metrics),
                }
            };
            self.apply_effects(ctx, effects, &mut deliveries);
        }
    }

    fn apply_effects(
        &mut self,
        ctx: &mut Ctx<'_, Msg<A>>,
        effects: Vec<Effect<A>>,
        deliveries: &mut std::collections::VecDeque<dynastar_amcast::Delivery<Arc<Payload<A>>>>,
    ) {
        for eff in effects {
            match eff {
                Effect::Multicast { mid, partitions, include_oracle, payload } => {
                    let groups = self.wiring.mcast_groups(&partitions, include_oracle);
                    let out = self.member.submit(mid, groups, Arc::new(payload));
                    for (to, wire) in out.outgoing {
                        let node = self.wiring.routes.node_of(to);
                        self.wiring.send(ctx, node, Inner::Wire(wire));
                    }
                    deliveries.extend(out.delivered);
                }
                Effect::Send { to, msg } => self.wiring.send_direct_to(ctx, to, msg),
                Effect::SchedulePlan { after } => ctx.set_timer(after, timer::PLAN),
                Effect::Wake { at } => {
                    let delay = at.saturating_duration_since(ctx.now());
                    ctx.set_timer(delay, timer::WAKE);
                }
            }
        }
    }

    fn handle_direct(&mut self, ctx: &mut Ctx<'_, Msg<A>>, msg: Direct<A>) {
        let now = ctx.now();
        let effects = {
            let metrics = ctx.metrics_mut();
            match &mut self.role {
                Role::Partition(core) => core.on_direct(msg, now, metrics),
                Role::Oracle(core) => core.on_direct(msg, now, metrics),
            }
        };
        let mut deliveries = std::collections::VecDeque::new();
        self.apply_effects(ctx, effects, &mut deliveries);
        while let Some(d) = deliveries.pop_front() {
            let now = ctx.now();
            let payload = Arc::try_unwrap(d.payload).unwrap_or_else(|a| (*a).clone());
            let effects = {
                let metrics = ctx.metrics_mut();
                match &mut self.role {
                    Role::Partition(core) => core.on_deliver(payload, now, metrics),
                    Role::Oracle(core) => core.on_deliver(payload, now, metrics),
                }
            };
            self.apply_effects(ctx, effects, &mut deliveries);
        }
    }
}

impl<A: Application> Actor<Msg<A>> for ServerActor<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        ctx.set_timer(self.tick, timer::TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<A>>, from: NodeId, msg: Msg<A>) {
        let ready = self.wiring.receive(ctx, from, msg);
        for inner in ready {
            match inner {
                Inner::Wire(wire) => {
                    let out = self.member.on_message(wire);
                    self.absorb(ctx, out);
                }
                Inner::Direct(d) => self.handle_direct(ctx, d),
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg<A>>, tag: u64) {
        match tag {
            timer::TICK => {
                let out = self.member.tick();
                self.absorb(ctx, out);
                let now = ctx.now();
                let effects = {
                    let metrics = ctx.metrics_mut();
                    match &mut self.role {
                        Role::Oracle(core) => core.on_tick(now, metrics),
                        Role::Partition(_) => Vec::new(),
                    }
                };
                if !effects.is_empty() {
                    let mut deliveries = std::collections::VecDeque::new();
                    self.apply_effects(ctx, effects, &mut deliveries);
                    debug_assert!(deliveries.is_empty());
                }
                self.wiring.maintain(ctx);
                ctx.set_timer(self.tick, timer::TICK);
            }
            timer::PLAN => {
                let now = ctx.now();
                let effects = {
                    let metrics = ctx.metrics_mut();
                    match &mut self.role {
                        Role::Oracle(core) => core.on_plan_timer(now, metrics),
                        Role::Partition(_) => Vec::new(),
                    }
                };
                let mut deliveries = std::collections::VecDeque::new();
                self.apply_effects(ctx, effects, &mut deliveries);
                while let Some(d) = deliveries.pop_front() {
                    let now = ctx.now();
                    let payload = Arc::try_unwrap(d.payload).unwrap_or_else(|a| (*a).clone());
                    let effects = {
                        let metrics = ctx.metrics_mut();
                        match &mut self.role {
                            Role::Partition(core) => core.on_deliver(payload, now, metrics),
                            Role::Oracle(core) => core.on_deliver(payload, now, metrics),
                        }
                    };
                    self.apply_effects(ctx, effects, &mut deliveries);
                }
            }
            timer::WAKE => {
                let now = ctx.now();
                let effects = {
                    let metrics = ctx.metrics_mut();
                    match &mut self.role {
                        Role::Partition(core) => core.on_wake(now, metrics),
                        Role::Oracle(_) => Vec::new(),
                    }
                };
                let mut deliveries = std::collections::VecDeque::new();
                self.apply_effects(ctx, effects, &mut deliveries);
                while let Some(d) = deliveries.pop_front() {
                    let now = ctx.now();
                    let payload = Arc::try_unwrap(d.payload).unwrap_or_else(|a| (*a).clone());
                    let effects = {
                        let metrics = ctx.metrics_mut();
                        match &mut self.role {
                            Role::Partition(core) => core.on_deliver(payload, now, metrics),
                            Role::Oracle(core) => core.on_deliver(payload, now, metrics),
                        }
                    };
                    self.apply_effects(ctx, effects, &mut deliveries);
                }
            }
            _ => {}
        }
    }
}

/// A closed-loop client actor driving a [`Workload`].
pub struct ClientActor<A: Application, W: Workload<A>> {
    core: ClientCore<A>,
    workload: W,
    wiring: Wiring<A>,
    timeout: SimDuration,
    /// Uniform random delay before the first command, to de-synchronize
    /// client start-up.
    start_jitter: SimDuration,
    /// Set when the workload returns `None`.
    done: bool,
}

impl<A: Application, W: Workload<A>> ClientActor<A, W> {
    fn apply_effects(&mut self, ctx: &mut Ctx<'_, Msg<A>>, effects: Vec<Effect<A>>) {
        for eff in effects {
            match eff {
                Effect::Multicast { mid, partitions, include_oracle, payload } => {
                    let groups = self.wiring.mcast_groups(&partitions, include_oracle);
                    self.wiring.submit_as_client(ctx, mid, groups, payload);
                }
                Effect::Send { to, msg } => self.wiring.send_direct_to(ctx, to, msg),
                Effect::SchedulePlan { .. } | Effect::Wake { .. } => {}
            }
        }
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        if self.done || self.core.is_busy() {
            return;
        }
        let now = ctx.now();
        match self.workload.next_command(now, ctx.rng()) {
            Some(kind) => {
                let now = ctx.now();
                let effects = self.core.issue(kind, now);
                self.apply_effects(ctx, effects);
                ctx.set_timer(self.timeout, timer::TIMEOUT);
            }
            None => {
                self.done = true;
                ctx.cancel_timer(timer::TIMEOUT);
            }
        }
    }
}

impl<A: Application, W: Workload<A>> Actor<Msg<A>> for ClientActor<A, W> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg<A>>) {
        ctx.set_timer(self.start_jitter, timer::START);
        ctx.set_timer(SimDuration::from_millis(100), timer::RETX);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<A>>, from: NodeId, msg: Msg<A>) {
        let ready = self.wiring.receive(ctx, from, msg);
        for inner in ready {
            let Inner::Direct(d) = inner else { continue };
            let now = ctx.now();
            let (effects, event) = {
                let metrics = ctx.metrics_mut();
                self.core.on_direct(d, now, metrics)
            };
            self.apply_effects(ctx, effects);
            if let Some(ClientEvent::Completed { cmd, reply, ok, .. }) = event {
                ctx.cancel_timer(timer::TIMEOUT);
                let now = ctx.now();
                self.workload.on_completed(now, &cmd, if ok { reply.as_ref() } else { None });
                self.issue_next(ctx);
            } else if self.core.is_busy() {
                // Retry dispatched: refresh the response timeout.
                ctx.set_timer(self.timeout, timer::TIMEOUT);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg<A>>, tag: u64) {
        match tag {
            timer::START => self.issue_next(ctx),
            timer::TIMEOUT => {
                if self.core.is_busy() {
                    let now = ctx.now();
                    let effects = {
                        let metrics = ctx.metrics_mut();
                        self.core.on_timeout(now, metrics)
                    };
                    self.apply_effects(ctx, effects);
                    ctx.set_timer(self.timeout, timer::TIMEOUT);
                }
            }
            timer::RETX => {
                self.wiring.maintain(ctx);
                ctx.set_timer(SimDuration::from_millis(100), timer::RETX);
            }
            _ => {}
        }
    }
}

/// Deployment parameters for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of state partitions.
    pub partitions: u32,
    /// Replicas per group (partitions and oracle alike).
    pub replicas: usize,
    /// Execution mode (DynaStar / S-SMR / DS-SMR).
    pub mode: Mode,
    /// Master seed for the simulation.
    pub seed: u64,
    /// Network model.
    pub net: NetConfig,
    /// Multicast/consensus tick interval.
    pub tick: SimDuration,
    /// Partition server tunables.
    pub server: ServerConfig,
    /// Workload-graph change count that triggers repartitioning.
    pub repartition_threshold: u64,
    /// Minimum time between repartitionings.
    pub min_plan_interval: SimDuration,
    /// Modelled partitioner latency: base + per-element.
    pub compute_base: SimDuration,
    /// Modelled partitioner latency per graph element.
    pub compute_per_element: SimDuration,
    /// Modelled CPU time per command execution at partition replicas
    /// (zero = infinite-speed servers; set to get saturation behaviour).
    pub service_time: SimDuration,
    /// Client response timeout before re-dispatch through the oracle.
    pub client_timeout: SimDuration,
    /// Seed client caches with the initial placement (always done for
    /// S-SMR, whose map is static).
    pub warm_client_caches: bool,
    /// Metrics time-series bucket.
    pub metrics_bucket: SimDuration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            partitions: 2,
            replicas: 3,
            mode: Mode::Dynastar,
            seed: 1,
            net: NetConfig::default(),
            tick: SimDuration::from_millis(1),
            server: ServerConfig::default(),
            repartition_threshold: 2_000,
            min_plan_interval: SimDuration::from_secs(30),
            compute_base: SimDuration::from_millis(50),
            compute_per_element: SimDuration::from_micros(1),
            service_time: SimDuration::ZERO,
            client_timeout: SimDuration::from_secs(10),
            warm_client_caches: false,
            metrics_bucket: SimDuration::from_secs(1),
        }
    }
}

/// Builder for a complete simulated deployment.
///
/// # Example
///
/// See `examples/quickstart.rs`, or the crate-level docs.
pub struct ClusterBuilder<A: Application> {
    config: ClusterConfig,
    placement: BTreeMap<LocKey, PartitionId>,
    initial_vars: Vec<(VarId, A::Value)>,
}

impl<A: Application> ClusterBuilder<A> {
    /// Starts a builder from a config.
    pub fn new(config: ClusterConfig) -> Self {
        ClusterBuilder { config, placement: BTreeMap::new(), initial_vars: Vec::new() }
    }

    /// Places `key` on `partition` at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn place(&mut self, key: LocKey, partition: PartitionId) -> &mut Self {
        assert!(partition.0 < self.config.partitions, "partition {partition} out of range");
        self.placement.insert(key, partition);
        self
    }

    /// Adds an initial variable (its key must have been [placed](Self::place)).
    pub fn with_var(&mut self, var: VarId, value: A::Value) -> &mut Self {
        self.initial_vars.push((var, value));
        self
    }

    /// Bulk variant of [`Self::with_var`].
    pub fn with_vars(&mut self, vars: impl IntoIterator<Item = (VarId, A::Value)>) -> &mut Self {
        self.initial_vars.extend(vars);
        self
    }

    /// Assembles the cluster: spawns oracle and partition replicas,
    /// preloads state, and returns the handle clients are added to.
    ///
    /// # Panics
    ///
    /// Panics if an initial variable's key has no placement.
    pub fn build(&mut self) -> Cluster<A> {
        let cfg = self.config.clone();
        let k = cfg.partitions as usize;
        let sim_cfg = SimConfig::default()
            .seed(cfg.seed)
            .net(cfg.net.clone())
            .metrics_bucket(cfg.metrics_bucket);
        let mut sim: Simulation<Msg<A>> = Simulation::new(sim_cfg);

        let topo = Topology::uniform(k + 1, cfg.replicas);
        let oracle_group = GroupId(k as u32);

        // Reserve node ids first so the route table is complete before any
        // actor is constructed.
        let mut groups: Vec<Vec<NodeId>> = Vec::with_capacity(k + 1);
        // Node ids are assigned sequentially by add_node; precompute them.
        let mut next = 0u32;
        for _ in 0..=k {
            let mut g = Vec::with_capacity(cfg.replicas);
            for _ in 0..cfg.replicas {
                g.push(NodeId::from_raw(next));
                next += 1;
            }
            groups.push(g);
        }
        let routes = Arc::new(RouteTable { groups, oracle_group });

        // Group initial variables by partition.
        let mut vars_by_part: Vec<Vec<(VarId, A::Value)>> = vec![Vec::new(); k];
        for (v, val) in self.initial_vars.drain(..) {
            let key = A::locality(v);
            let p = *self
                .placement
                .get(&key)
                .unwrap_or_else(|| panic!("initial var {v} has unplaced key {key}"));
            vars_by_part[p.0 as usize].push((v, val));
        }
        let mut keys_by_part: Vec<Vec<LocKey>> = vec![Vec::new(); k];
        for (&key, &p) in &self.placement {
            keys_by_part[p.0 as usize].push(key);
        }

        // Partition replicas.
        for p in 0..k {
            for r in 0..cfg.replicas {
                let mut core = ServerCore::<A>::new(
                    PartitionId(p as u32),
                    cfg.mode,
                    ServerConfig {
                        collect_hints: cfg.mode.optimizes() && cfg.server.collect_hints,
                        record_metrics: r == 0,
                        service_time: cfg.service_time,
                        ..cfg.server.clone()
                    },
                );
                core.preload(keys_by_part[p].iter().copied(), vars_by_part[p].iter().cloned());
                let actor = ServerActor {
                    member: McastMember::new(MemberId::new(GroupId(p as u32), r), topo.clone()),
                    role: Role::Partition(core),
                    wiring: Wiring::new(Arc::clone(&routes)),
                    tick: cfg.tick,
                };
                let id = sim.add_node(format!("p{p}r{r}"), actor);
                debug_assert_eq!(id, routes.groups[p][r]);
            }
        }
        // Oracle replicas.
        for r in 0..cfg.replicas {
            let mut core = OracleCore::<A>::new(OracleConfig {
                partitions: cfg.partitions,
                mode: cfg.mode,
                repartition_threshold: cfg.repartition_threshold,
                compute_base: cfg.compute_base,
                compute_per_element: cfg.compute_per_element,
                balance_factor: 1.2,
                decay_hints: true,
                min_plan_interval: cfg.min_plan_interval,
                record_metrics: r == 0,
            });
            core.preload_map(self.placement.iter().map(|(&kk, &p)| (kk, p)));
            let actor = ServerActor {
                member: McastMember::new(MemberId::new(oracle_group, r), topo.clone()),
                role: Role::Oracle(core),
                wiring: Wiring::new(Arc::clone(&routes)),
                tick: cfg.tick,
            };
            let id = sim.add_node(format!("oracle-r{r}"), actor);
            debug_assert_eq!(id, routes.groups[k][r]);
        }

        Cluster {
            sim,
            routes,
            config: cfg,
            placement: self.placement.clone(),
            clients: Vec::new(),
        }
    }
}

/// A running simulated deployment: the simulation, its replicas, and the
/// clients added so far.
pub struct Cluster<A: Application> {
    /// The underlying simulation (exposed for metrics and time control).
    pub sim: Simulation<Msg<A>>,
    routes: Arc<RouteTable>,
    /// The configuration the cluster was built with.
    pub config: ClusterConfig,
    placement: BTreeMap<LocKey, PartitionId>,
    clients: Vec<NodeId>,
}

impl<A: Application> Cluster<A> {
    /// Starts a builder.
    pub fn builder(config: ClusterConfig) -> ClusterBuilder<A> {
        ClusterBuilder::new(config)
    }

    /// Adds a closed-loop client driving `workload`. Returns its node id.
    pub fn add_client(&mut self, workload: impl Workload<A>) -> NodeId {
        let idx = self.clients.len();
        // Pre-compute the id the simulation will assign.
        let id = NodeId::from_raw(self.sim.node_count() as u32);
        let mut core = ClientCore::new(id, self.config.mode);
        if self.config.warm_client_caches || self.config.mode == Mode::SSmr {
            core.preload_cache(self.placement.iter().map(|(&k, &p)| (k, p)));
        }
        let jitter_us = 1 + (idx as u64 * 137) % 5_000;
        let actor = ClientActor {
            core,
            workload,
            wiring: Wiring::new(Arc::clone(&self.routes)),
            timeout: self.config.client_timeout,
            start_jitter: SimDuration::from_micros(jitter_us),
            done: false,
        };
        let assigned = self.sim.add_node(format!("client{idx}"), actor);
        debug_assert_eq!(assigned, id);
        self.clients.push(assigned);
        assigned
    }

    /// Node ids of all clients.
    pub fn clients(&self) -> &[NodeId] {
        &self.clients
    }

    /// Runs the simulation for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Runs the simulation until absolute time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Mutable metrics (e.g. reset after warm-up).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        self.sim.metrics_mut()
    }
}

impl<A: Application> std::fmt::Debug for Cluster<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.config.partitions)
            .field("replicas", &self.config.replicas)
            .field("mode", &self.config.mode)
            .field("clients", &self.clients.len())
            .finish()
    }
}
