//! The partition server state machine (paper Algorithm 3, plus the S-SMR
//! and DS-SMR baseline behaviours).
//!
//! A `ServerCore` is driven by two inputs — atomic multicast deliveries
//! ([`ServerCore::on_deliver`]) and direct messages
//! ([`ServerCore::on_direct`]) — and produces [`Effect`]s. Every replica of
//! a partition runs an identical core; effects that would duplicate
//! (replies, variable shipments) carry dedup keys and are dropped by
//! receivers.
//!
//! Commands execute strictly in delivery order: the head of the queue may
//! *wait* (for borrowed variables, for migrating keys, for a create/delete
//! rendezvous) but nothing overtakes it. Atomic multicast's pairwise
//! consistent delivery order across partitions makes this deadlock-free.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dynastar_amcast::MsgId;
use dynastar_runtime::dedup::{RotatingMap, RotatingSet};
use dynastar_runtime::{CounterId, HistogramId, Metrics, SeriesId, SimTime};

use crate::command::{
    AccessSets, Application, Command, CommandKind, LocKey, Mode, PartitionId, VarId,
};
use crate::metric_names as mn;
use crate::migration::{MoveOutcome, PlanHistory, Settle, PLAN_HISTORY_PER_KEY};
use crate::payload::{DedupKey, Destination, Direct, Effect, OracleDest, Payload};
use crate::routing::shard_of;

/// Emits protocol-stall diagnostics to stderr when the
/// `DYNASTAR_TRACE_BLOCKED` environment variable is set.
fn trace_blocked(args: std::fmt::Arguments<'_>) {
    // Sampled once per process: this sits on executed-command paths, and
    // `env::var_os` is far too slow to re-check per call.
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    // detlint::allow(D003): opt-in diagnostic gate only — the flag toggles eprintln tracing and never feeds protocol or simulation state
    if *ON.get_or_init(|| std::env::var_os("DYNASTAR_TRACE_BLOCKED").is_some()) {
        eprintln!("{args}");
    }
}

/// Message-id origin space for partition-originated multicasts (hints);
/// clients use their node id as origin, which stays far below this.
pub const PARTITION_ORIGIN_BASE: u64 = 1_000_000_000;

/// The modelled parallel-execution engine of one replica: a P-SMR /
/// CBASE-style worker pool over the delivered command stream.
///
/// Commands still *apply* strictly in delivery order on every replica —
/// parallelism is purely a timing model deciding *when* the queue head is
/// admitted, so replicas stay bit-identical regardless of `workers` and an
/// inaccurate [`Application::classify`] can only skew modelled time, never
/// state. With `workers = 1` the schedule is exactly the classic serial
/// executor's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Modelled parallel execution workers per replica. `1` reproduces
    /// the serial executor bit-for-bit (all golden hashes unchanged).
    pub workers: u32,
    /// Modelled CPU time per command execution. A worker is busy for this
    /// long after executing; queued commands wait for a free,
    /// non-conflicting slot. Zero disables the model entirely (commands
    /// execute instantaneously). This is what bounds a partition's
    /// throughput and produces saturation behaviour.
    pub service_time: dynastar_runtime::SimDuration,
    /// Sliding dependency-window capacity: how many admitted-but-
    /// unfinished commands are tracked for conflict decisions. When the
    /// window is full, admission stalls until the earliest in-flight
    /// command finishes (counted as `exec.window_stall`).
    pub window: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { workers: 1, service_time: dynastar_runtime::SimDuration::ZERO, window: 64 }
    }
}

impl ExecConfig {
    /// The classic serial executor with the given per-command cost.
    pub fn serial(service_time: dynastar_runtime::SimDuration) -> Self {
        ExecConfig { service_time, ..Self::default() }
    }

    /// A pool of `workers` with the given per-command cost.
    pub fn pool(workers: u32, service_time: dynastar_runtime::SimDuration) -> Self {
        ExecConfig { workers: workers.max(1), service_time, ..Self::default() }
    }
}

/// Tunables for a partition server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executed commands per workload-hint batch sent to the oracle.
    pub hint_batch: u32,
    /// Whether to collect hints at all (DynaStar mode only).
    pub collect_hints: bool,
    /// Whether this replica records server-side metrics. Every replica of
    /// a partition executes every command, so exactly one replica (index
    /// 0) records, or counters would multiply by the replication factor.
    pub record_metrics: bool,
    /// The modelled execution engine: worker count, per-command cost and
    /// dependency-window size (see [`ExecConfig`]).
    pub exec: ExecConfig,
    /// Staged migration: plan-triggered key moves ship their variables in
    /// rate-limited, individually acknowledged chunks instead of one
    /// unbounded shipment. Off by default (classic single-shipment path).
    pub staged_migration: bool,
    /// Variables per staged chunk (≥ 1).
    pub migration_chunk_vars: u32,
    /// Modelled serialized size of one variable, bytes (bandwidth model).
    pub migration_var_bytes: u64,
    /// Modelled migration link bandwidth in bytes/second. `0` means
    /// unconstrained: transfers are free and charge no CPU/NIC time.
    pub migration_link_bytes_per_sec: u64,
    /// Base per-chunk ack timeout; also the starting backoff.
    pub migration_chunk_timeout: dynastar_runtime::SimDuration,
    /// Chunk retransmissions before the source gives up and reverts the
    /// key's move (falling back to the previous plan).
    pub migration_max_retries: u32,
    /// Cluster-wide migration scheduling: max staged key transfers
    /// concurrently in flight per source→destination link. Plans list
    /// moves hottest-first (oracle orders by workload-graph weight), so
    /// the cap ships the traffic-carrying keys immediately and defers the
    /// tail, releasing deferred moves as transfers settle. `0` disables
    /// the cap (every move ships at once, PR 6 behaviour).
    pub migration_max_inflight_per_link: u32,
    /// Number of oracle shard groups in the deployment. Hint batches are
    /// split by slice ownership ([`crate::routing::shard_of`]) and each
    /// slice multicast to its owner shard; `1` emits the single classic
    /// hint multicast.
    pub oracle_shards: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            hint_batch: 64,
            collect_hints: true,
            record_metrics: true,
            exec: ExecConfig::default(),
            staged_migration: false,
            migration_chunk_vars: 8,
            migration_var_bytes: 512,
            migration_link_bytes_per_sec: 0,
            migration_chunk_timeout: dynastar_runtime::SimDuration::from_millis(200),
            migration_max_retries: 5,
            migration_max_inflight_per_link: 0,
            oracle_shards: 1,
        }
    }
}

/// A command queued for in-order execution.
#[derive(Debug)]
struct Queued<A: Application> {
    cmd: Command<A>,
    attempt: u32,
    body: QueuedBody,
}

#[derive(Debug)]
enum QueuedBody {
    Access {
        expected: Vec<(VarId, PartitionId)>,
        target: PartitionId,
        keep: bool,
        /// Multi-partition non-target: we shipped our vars and await return.
        sent_vars: bool,
        /// S-SMR: we broadcast our exchange share.
        sent_exchange: bool,
    },
    Create {
        key: LocKey,
        signalled: bool,
    },
    Delete {
        key: LocKey,
        signalled: bool,
    },
    Plan {
        version: u64,
        moves: Vec<(LocKey, PartitionId, PartitionId)>,
    },
    /// Source-side rollback of a gave-up staged migration. Queued (not
    /// applied at delivery) because re-owning the key must serialize with
    /// command execution: a command delivered before the revert must see
    /// the same ownership state on every replica regardless of local pump
    /// timing.
    MigrationRevert {
        version: u64,
        key: LocKey,
    },
}

// Manual Clone impls (here and below): deriving would bound `A: Clone`,
// but only `A`'s associated types need to be cloneable.
impl<A: Application> Clone for Queued<A> {
    fn clone(&self) -> Self {
        Queued { cmd: self.cmd.clone(), attempt: self.attempt, body: self.body.clone() }
    }
}

impl Clone for QueuedBody {
    fn clone(&self) -> Self {
        match self {
            QueuedBody::Access { expected, target, keep, sent_vars, sent_exchange } => {
                QueuedBody::Access {
                    expected: expected.clone(),
                    target: *target,
                    keep: *keep,
                    sent_vars: *sent_vars,
                    sent_exchange: *sent_exchange,
                }
            }
            QueuedBody::Create { key, signalled } => {
                QueuedBody::Create { key: *key, signalled: *signalled }
            }
            QueuedBody::Delete { key, signalled } => {
                QueuedBody::Delete { key: *key, signalled: *signalled }
            }
            QueuedBody::Plan { version, moves } => {
                QueuedBody::Plan { version: *version, moves: moves.clone() }
            }
            QueuedBody::MigrationRevert { version, key } => {
                QueuedBody::MigrationRevert { version: *version, key: *key }
            }
        }
    }
}

/// Variables shipped between partitions: `(var, value-or-absent)` pairs.
type VarShipment<A> = Vec<(VarId, Option<<A as Application>::Value>)>;
/// Shipments collected per source partition.
type ShipmentsBySource<A> = BTreeMap<PartitionId, VarShipment<A>>;

/// Origin space for migration-control multicasts ([`Payload::MigrationDone`]
/// / [`Payload::MigrationRevert`]): every replica at either end of a
/// migration derives the same id from `(key, version)`, so the multicast
/// layer delivers one copy. Disjoint from client origins (node ids),
/// partition hint origins ([`PARTITION_ORIGIN_BASE`]) and the oracle's
/// plan origin (`u64::MAX - 1`).
const MIGRATION_ORIGIN_BASE: u64 = 1 << 62;
/// Derivation tag of [`Payload::MigrationDone`] ids.
const TAG_MIGRATION_DONE: u32 = 400;
/// Derivation tag of [`Payload::MigrationRevert`] ids.
const TAG_MIGRATION_REVERT: u32 = 401;

/// The shared id of a migration-control multicast for `(key, version)`.
fn migration_mid(key: LocKey, version: u64, tag: u32) -> MsgId {
    MsgId { origin: MIGRATION_ORIGIN_BASE | key.0, seq: version as u32, tag }
}

/// Clamps a busy clock forward to `now` and charges `cost` on top — the
/// single accounting primitive shared by command execution and
/// migration-transfer time, so the two models can't drift apart.
fn advance_busy(clock: &mut SimTime, now: SimTime, cost: dynastar_runtime::SimDuration) {
    if *clock < now {
        *clock = now;
    }
    *clock += cost;
}

/// The earliest-free worker; ties break to the lowest index so assignment
/// is a pure function of the clock vector (replica-deterministic).
fn earliest_free_worker(clocks: &[SimTime]) -> usize {
    let mut best = 0;
    for (i, &c) in clocks.iter().enumerate().skip(1) {
        if c < clocks[best] {
            best = i;
        }
    }
    best
}

/// One admitted-but-unfinished command in the dependency window.
#[derive(Debug, Clone)]
struct WindowEntry {
    /// Its declared read/write sets (from [`Application::classify`]).
    sets: AccessSets,
    /// When its assigned worker finishes it.
    finish: SimTime,
}

/// Marks the queue head as stalled by the scheduler so the stall is
/// counted once per `(cmd, attempt)` at admission, not once per pump.
#[derive(Debug, Clone, Copy)]
struct PendingStall {
    id: MsgId,
    attempt: u32,
    /// Gate was raised by a read/write conflict with an in-flight command.
    conflicted: bool,
    /// Gate was raised because the dependency window was at capacity.
    window_full: bool,
}

/// Modelled parallel-execution state: per-worker busy clocks plus the
/// sliding dependency window of admitted, unfinished commands.
///
/// With one worker the window stays empty and `clocks[0]` behaves exactly
/// like the old single `busy_until` field.
#[derive(Debug, Clone)]
struct ExecScheduler {
    /// One modelled busy-until clock per worker.
    clocks: Vec<SimTime>,
    /// Admitted commands whose modelled execution has not finished.
    window: VecDeque<WindowEntry>,
    /// Stall attribution for the current queue head, if any.
    pending: Option<PendingStall>,
}

impl ExecScheduler {
    fn new(workers: u32) -> Self {
        ExecScheduler {
            clocks: vec![SimTime::ZERO; workers.max(1) as usize],
            window: VecDeque::new(),
            pending: None,
        }
    }

    /// Drops window entries whose modelled execution has finished.
    fn prune(&mut self, now: SimTime) {
        self.window.retain(|e| e.finish > now);
    }

    /// Records (or merges) stall attribution for the queue head.
    fn note_stall(&mut self, stall: PendingStall) {
        match &mut self.pending {
            Some(p) if p.id == stall.id && p.attempt == stall.attempt => {
                p.conflicted |= stall.conflicted;
                p.window_full |= stall.window_full;
            }
            slot => *slot = Some(stall),
        }
    }
}

/// Modelled wire time of shipping `vars` variables over the migration link.
fn transfer_time(cfg: &ServerConfig, vars: usize) -> dynastar_runtime::SimDuration {
    if cfg.migration_link_bytes_per_sec == 0 {
        return dynastar_runtime::SimDuration::ZERO;
    }
    let bytes = (vars as u64).saturating_mul(cfg.migration_var_bytes);
    dynastar_runtime::SimDuration::from_micros(
        bytes.saturating_mul(1_000_000) / cfg.migration_link_bytes_per_sec,
    )
}

/// Source-side state of one staged key migration (`(version, key)` keyed).
/// All chunk data is retained until the migration settles, so a revert can
/// reinstall the key and a retransmit can resend any chunk.
struct OutboxEntry<A: Application> {
    /// Destination partition.
    to: PartitionId,
    /// The key's variables, pre-split into chunks.
    chunks: Vec<VarShipment<A>>,
    /// Per-chunk ack state.
    acked: Vec<bool>,
    /// Index of the chunk currently awaiting its ack, if any.
    in_flight: Option<usize>,
    /// Consecutive timeouts of the in-flight chunk.
    attempts: u32,
    /// Current (exponentially growing, capped) retransmit backoff.
    backoff: dynastar_runtime::SimDuration,
    /// When the in-flight chunk times out.
    deadline: SimTime,
    /// Rate limit: the next chunk may not ship before this.
    next_ship_at: SimTime,
    /// Retries exhausted; a revert has been requested.
    gave_up: bool,
    /// Waiting for a per-link in-flight slot; the migration pump skips the
    /// entry until [`ServerCore::release_link_slot`] promotes it.
    deferred: bool,
}

impl<A: Application> Clone for OutboxEntry<A> {
    fn clone(&self) -> Self {
        OutboxEntry {
            to: self.to,
            chunks: self.chunks.clone(),
            acked: self.acked.clone(),
            in_flight: self.in_flight,
            attempts: self.attempts,
            backoff: self.backoff,
            deadline: self.deadline,
            next_ship_at: self.next_ship_at,
            gave_up: self.gave_up,
            deferred: self.deferred,
        }
    }
}

impl<A: Application> std::fmt::Debug for OutboxEntry<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutboxEntry")
            .field("to", &self.to)
            .field("chunks", &self.chunks.len())
            .field("acked", &self.acked.iter().filter(|&&a| a).count())
            .field("in_flight", &self.in_flight)
            .field("attempts", &self.attempts)
            .field("gave_up", &self.gave_up)
            .field("deferred", &self.deferred)
            .finish()
    }
}

/// Destination-side buffer of one staged key migration. Chunks accumulate
/// here (idempotently — retransmits overwrite with identical data) and are
/// installed only once the matching [`Payload::MigrationDone`] has been
/// delivered in total order.
struct StagedKey<A: Application> {
    /// The old owner.
    from: PartitionId,
    /// Total chunk count, learned from the first chunk to arrive (a
    /// `MigrationDone` can be delivered before any chunk reaches this
    /// particular replica).
    total: Option<u32>,
    /// Received chunks by index.
    chunks: BTreeMap<u32, VarShipment<A>>,
    /// The `MigrationDone` for this migration has been delivered.
    done: bool,
    /// This replica already submitted the `MigrationDone` multicast.
    done_requested: bool,
}

impl<A: Application> Clone for StagedKey<A> {
    fn clone(&self) -> Self {
        StagedKey {
            from: self.from,
            total: self.total,
            chunks: self.chunks.clone(),
            done: self.done,
            done_requested: self.done_requested,
        }
    }
}

impl<A: Application> std::fmt::Debug for StagedKey<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedKey")
            .field("from", &self.from)
            .field("total", &self.total)
            .field("chunks", &self.chunks.len())
            .field("done", &self.done)
            .finish()
    }
}

/// The partition server protocol core. See the [module docs](self).
pub struct ServerCore<A: Application> {
    partition: PartitionId,
    mode: Mode,
    config: ServerConfig,
    /// Locality keys this partition owns.
    owned: BTreeSet<LocKey>,
    /// Values physically present.
    store: BTreeMap<VarId, A::Value>,
    queue: VecDeque<Queued<A>>,
    /// Receiver-side dedup of direct messages (bounded memory).
    seen: RotatingSet<DedupKey>,
    /// Borrowed variables received per (cmd, attempt), per source partition.
    vars_in: BTreeMap<(MsgId, u32), ShipmentsBySource<A>>,
    /// Returns received for (cmd, attempt).
    returns_in: BTreeMap<(MsgId, u32), VarShipment<A>>,
    /// Commands known aborted (stale routing at some partition).
    aborted: RotatingSet<(MsgId, u32)>,
    /// S-SMR exchange shares received.
    ssmr_in: BTreeMap<(MsgId, u32), ShipmentsBySource<A>>,
    /// Create/delete rendezvous signals received from the oracle.
    oracle_signals: dynastar_runtime::FastHashSet<MsgId>,
    /// Current plan version.
    plan_version: u64,
    /// Keys owned whose primary shipment has not arrived: key → old owner.
    awaiting_keys: BTreeMap<LocKey, PartitionId>,
    /// Individual variables still in flight (lent out during migration).
    awaiting_vars: BTreeSet<VarId>,
    /// Where keys this partition used to own have gone.
    outmigrated: BTreeMap<LocKey, PartitionId>,
    /// Variables currently lent to a target: var → (cmd, attempt).
    lent: BTreeMap<VarId, (MsgId, u32)>,
    /// Reply cache: executed commands and their replies (exactly-once
    /// within the rotation window).
    executed: RotatingMap<MsgId, A::Reply>,
    /// Workload-hint accumulators.
    hint_vertices: BTreeMap<LocKey, u64>,
    hint_edges: BTreeMap<(LocKey, LocKey), u64>,
    hint_execs: u32,
    hint_seq: u32,
    /// Key-migration shipments that arrived before the plan they belong
    /// to was processed here: `(version, key, from, vars, pending, primary)`.
    #[allow(clippy::type_complexity)]
    planvars_buffer:
        Vec<(u64, LocKey, PartitionId, Vec<(VarId, Option<A::Value>)>, Vec<VarId>, bool)>,
    /// Staged migrations this partition is the source of.
    outbox: BTreeMap<(u64, LocKey), OutboxEntry<A>>,
    /// Staged migrations this partition is the destination of.
    staging: BTreeMap<(u64, LocKey), StagedKey<A>>,
    /// Bounded per-key log of plan decisions: `MigrationDone` /
    /// `MigrationRevert` settle by replaying the key's history (a revert of
    /// move v composes with a chained move at v+1), stray chunks for
    /// decided migrations are acked and dropped, and duplicates or
    /// below-floor stragglers are ignored (default-deny).
    history: PlanHistory,
    /// Per-destination count of staged transfers holding an in-flight slot
    /// (only maintained when `migration_max_inflight_per_link > 0`).
    link_active: BTreeMap<PartitionId, u32>,
    /// Deferred outbox entries per destination, in plan (hottest-first)
    /// order, promoted as slots free up.
    link_waiting: BTreeMap<PartitionId, VecDeque<(u64, LocKey)>>,
    /// The modelled execution engine: per-worker busy clocks and the
    /// sliding dependency window (see [`ExecConfig`]).
    exec: ExecScheduler,
    /// Pre-rendered per-partition metric names (hot path).
    name_executed: String,
    name_multi: String,
    name_objects: String,
    /// Pre-rendered per-worker busy-histogram names.
    name_worker_busy: Vec<String>,
    /// Lazily interned per-worker histogram ids, tagged with the
    /// resolving registry's id (same contract as `mids`).
    worker_busy_ids: Option<(u64, Vec<HistogramId>)>,
    /// Interned metric handles, resolved lazily against the simulation's
    /// registry on first record and tagged with that registry's id so a
    /// core handed a different `Metrics` instance re-interns instead of
    /// indexing into the wrong registry (see [`ServerCore::mids`]).
    mids: Option<(u64, ServerMetricIds)>,
}

/// Dense metric ids for everything the core records per executed command —
/// index-based lookups on the delivery path instead of string-keyed ones.
#[derive(Debug, Clone, Copy)]
struct ServerMetricIds {
    objects_exchanged: CounterId,
    cmd_retry: CounterId,
    cmd_multi: CounterId,
    cmd_single: CounterId,
    migration_chunks_sent: CounterId,
    migration_chunk_retries: CounterId,
    migration_reverts: CounterId,
    migration_keys_staged: CounterId,
    migration_deferred: CounterId,
    migration_released: CounterId,
    exec_parallel: CounterId,
    exec_serialized: CounterId,
    exec_window_stall: CounterId,
    s_cmd_multi: SeriesId,
    s_cmd_single: SeriesId,
    s_executed: SeriesId,
    s_multi: SeriesId,
    s_objects: SeriesId,
}

/// Cloning a core snapshots its full protocol state — every replica of a
/// partition holds identical state at the same log position, so a peer's
/// clone is exactly what a recovering replica must install.
impl<A: Application> Clone for ServerCore<A> {
    fn clone(&self) -> Self {
        ServerCore {
            partition: self.partition,
            mode: self.mode,
            config: self.config.clone(),
            owned: self.owned.clone(),
            store: self.store.clone(),
            queue: self.queue.clone(),
            seen: self.seen.clone(),
            vars_in: self.vars_in.clone(),
            returns_in: self.returns_in.clone(),
            aborted: self.aborted.clone(),
            ssmr_in: self.ssmr_in.clone(),
            oracle_signals: self.oracle_signals.clone(),
            plan_version: self.plan_version,
            awaiting_keys: self.awaiting_keys.clone(),
            awaiting_vars: self.awaiting_vars.clone(),
            outmigrated: self.outmigrated.clone(),
            lent: self.lent.clone(),
            executed: self.executed.clone(),
            hint_vertices: self.hint_vertices.clone(),
            hint_edges: self.hint_edges.clone(),
            hint_execs: self.hint_execs,
            hint_seq: self.hint_seq,
            planvars_buffer: self.planvars_buffer.clone(),
            outbox: self.outbox.clone(),
            staging: self.staging.clone(),
            history: self.history.clone(),
            link_active: self.link_active.clone(),
            link_waiting: self.link_waiting.clone(),
            exec: self.exec.clone(),
            name_executed: self.name_executed.clone(),
            name_multi: self.name_multi.clone(),
            name_objects: self.name_objects.clone(),
            name_worker_busy: self.name_worker_busy.clone(),
            worker_busy_ids: self.worker_busy_ids.clone(),
            // Ids carry their registry tag, so a clone installed on
            // another replica of the same simulation can keep them.
            mids: self.mids,
        }
    }
}

impl<A: Application> ServerCore<A> {
    /// Creates the core of one replica of `partition`.
    pub fn new(partition: PartitionId, mode: Mode, config: ServerConfig) -> Self {
        let workers = config.exec.workers.max(1);
        ServerCore {
            partition,
            mode,
            config,
            owned: BTreeSet::new(),
            store: BTreeMap::new(),
            queue: VecDeque::new(),
            seen: RotatingSet::new(1 << 16),
            vars_in: BTreeMap::new(),
            returns_in: BTreeMap::new(),
            aborted: RotatingSet::new(1 << 14),
            ssmr_in: BTreeMap::new(),
            oracle_signals: Default::default(),
            plan_version: 0,
            awaiting_keys: BTreeMap::new(),
            awaiting_vars: BTreeSet::new(),
            outmigrated: BTreeMap::new(),
            lent: BTreeMap::new(),
            executed: RotatingMap::new(1 << 15),
            hint_vertices: BTreeMap::new(),
            hint_edges: BTreeMap::new(),
            hint_execs: 0,
            hint_seq: 0,
            planvars_buffer: Vec::new(),
            outbox: BTreeMap::new(),
            staging: BTreeMap::new(),
            history: PlanHistory::new(PLAN_HISTORY_PER_KEY),
            link_active: BTreeMap::new(),
            link_waiting: BTreeMap::new(),
            exec: ExecScheduler::new(workers),
            name_executed: mn::partition_executed(partition.0),
            name_multi: mn::partition_multi(partition.0),
            name_objects: mn::partition_objects(partition.0),
            name_worker_busy: (0..workers).map(mn::exec_worker_busy).collect(),
            worker_busy_ids: None,
            mids: None,
        }
    }

    /// The interned metric ids, resolving them on first use (and again
    /// whenever a different registry shows up).
    fn mids(&mut self, metrics: &mut Metrics) -> ServerMetricIds {
        if let Some((reg, ids)) = self.mids {
            if reg == metrics.registry_id() {
                return ids;
            }
        }
        let ids = ServerMetricIds {
            objects_exchanged: metrics.counter_id(mn::OBJECTS_EXCHANGED),
            cmd_retry: metrics.counter_id(mn::CMD_RETRY),
            cmd_multi: metrics.counter_id(mn::CMD_MULTI),
            cmd_single: metrics.counter_id(mn::CMD_SINGLE),
            migration_chunks_sent: metrics.counter_id(mn::MIGRATION_CHUNKS_SENT),
            migration_chunk_retries: metrics.counter_id(mn::MIGRATION_CHUNK_RETRIES),
            migration_reverts: metrics.counter_id(mn::MIGRATION_REVERTS),
            migration_keys_staged: metrics.counter_id(mn::MIGRATION_KEYS_STAGED),
            migration_deferred: metrics.counter_id(mn::MIGRATION_DEFERRED),
            migration_released: metrics.counter_id(mn::MIGRATION_RELEASED),
            exec_parallel: metrics.counter_id(mn::EXEC_PARALLEL),
            exec_serialized: metrics.counter_id(mn::EXEC_SERIALIZED),
            exec_window_stall: metrics.counter_id(mn::EXEC_WINDOW_STALL),
            s_cmd_multi: metrics.series_id(mn::CMD_MULTI),
            s_cmd_single: metrics.series_id(mn::CMD_SINGLE),
            s_executed: metrics.series_id(&self.name_executed),
            s_multi: metrics.series_id(&self.name_multi),
            s_objects: metrics.series_id(&self.name_objects),
        };
        self.mids = Some((metrics.registry_id(), ids));
        ids
    }

    /// The interned per-worker busy-histogram id for worker `w`, resolved
    /// lazily against the current registry (same contract as [`Self::mids`]).
    fn worker_hist(&mut self, metrics: &mut Metrics, w: usize) -> HistogramId {
        if let Some((reg, ids)) = &self.worker_busy_ids {
            if *reg == metrics.registry_id() {
                return ids[w];
            }
        }
        let ids: Vec<HistogramId> =
            self.name_worker_busy.iter().map(|n| metrics.histogram_id(n)).collect();
        let id = ids[w];
        self.worker_busy_ids = Some((metrics.registry_id(), ids));
        id
    }

    /// Re-enables or disables metric recording — used after installing a
    /// peer's state clone, which carries the *donor's* recording flag.
    pub fn set_record_metrics(&mut self, on: bool) {
        self.config.record_metrics = on;
    }

    /// Seeds initial state before the simulation starts (avoids issuing
    /// millions of create commands for benchmark datasets).
    pub fn preload(
        &mut self,
        keys: impl IntoIterator<Item = LocKey>,
        vars: impl IntoIterator<Item = (VarId, A::Value)>,
    ) {
        self.owned.extend(keys);
        self.store.extend(vars);
    }

    /// Diagnostic: the keys this partition owns, as `(key, partition)`
    /// pairs in key order. The union across partitions is the cluster's
    /// server-side location map; convergence tests compare it (and every
    /// replica's copy) against the oracle's map.
    pub fn location_view(&self) -> Vec<(u64, u32)> {
        self.owned.iter().map(|k| (k.0, self.partition.0)).collect()
    }

    /// This partition's id.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Number of locality keys currently owned.
    pub fn owned_keys(&self) -> usize {
        self.owned.len()
    }

    /// Whether `key` is currently owned here.
    pub fn owns(&self, key: LocKey) -> bool {
        self.owned.contains(&key)
    }

    /// Read access to a stored variable (test/debug aid).
    pub fn value_of(&self, var: VarId) -> Option<&A::Value> {
        self.store.get(&var)
    }

    /// Depth of the execution queue (test/debug aid).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Handles an atomic multicast delivery addressed to this partition.
    pub fn on_deliver(
        &mut self,
        payload: Payload<A>,
        now: SimTime,
        metrics: &mut Metrics,
    ) -> Vec<Effect<A>> {
        let mut eff = Vec::new();
        match payload {
            Payload::Access { cmd, attempt, expected, target, keep } => {
                self.queue.push_back(Queued {
                    cmd,
                    attempt,
                    body: QueuedBody::Access {
                        expected,
                        target,
                        keep,
                        sent_vars: false,
                        sent_exchange: false,
                    },
                });
            }
            Payload::CreateKey { cmd, dest } => {
                if dest == self.partition {
                    let key = match &cmd.kind {
                        CommandKind::CreateKey { key, .. } => *key,
                        // detlint::allow(P003): constructor pairs CreateKey payloads with CreateKey commands; a mismatch is a local logic bug, not wire input
                        _ => unreachable!("CreateKey payload without CreateKey command"),
                    };
                    self.queue.push_back(Queued {
                        cmd,
                        attempt: 0,
                        body: QueuedBody::Create { key, signalled: false },
                    });
                }
            }
            Payload::DeleteKey { cmd, dest } => {
                if dest == self.partition {
                    let key = match &cmd.kind {
                        CommandKind::DeleteKey { key } => *key,
                        // detlint::allow(P003): constructor pairs DeleteKey payloads with DeleteKey commands; a mismatch is a local logic bug, not wire input
                        _ => unreachable!("DeleteKey payload without DeleteKey command"),
                    };
                    self.queue.push_back(Queued {
                        cmd,
                        attempt: 0,
                        body: QueuedBody::Delete { key, signalled: false },
                    });
                }
            }
            Payload::Plan { version, moves } => {
                // Record every move at *delivery* (the plan itself applies
                // later, through the queue): a Done/Revert delivered after
                // this plan but before its pump must already see the chain
                // when it replays the key's history.
                for &(key, from, to) in &moves {
                    self.history.record_move(key, version, from, to);
                }
                // Dummy command for queue uniformity.
                self.queue.push_back(Queued {
                    cmd: Command {
                        id: MsgId::new(u64::MAX, 0),
                        client: dynastar_runtime::NodeId::EXTERNAL,
                        kind: CommandKind::DeleteKey { key: LocKey(u64::MAX) },
                    },
                    attempt: 0,
                    body: QueuedBody::Plan { version, moves },
                });
            }
            Payload::MigrationDone { version, key, from, to } => {
                // Safe to apply at delivery (not queued): at the
                // destination this only converts a head-of-queue *wait*
                // into an execution with the staged values, which are
                // identical on every replica; ownership itself changed at
                // the (queued) plan. Settling replays the key's plan
                // history: a duplicate or below-floor straggler is Stale
                // and a no-op (the staging entry it would create could
                // never resolve).
                let settle = self.history.settle(key, version, from, to, MoveOutcome::Done);
                if from == self.partition {
                    if let Some(e) = self.outbox.remove(&(version, key)) {
                        if !e.deferred && !e.gave_up {
                            self.release_link_slot(e.to, now, metrics);
                        }
                    }
                }
                if matches!(settle, Settle::Applied { .. }) && to == self.partition {
                    let e = self.staging.entry((version, key)).or_insert_with(|| StagedKey {
                        from,
                        total: None,
                        chunks: BTreeMap::new(),
                        done: false,
                        done_requested: true,
                    });
                    e.done = true;
                    self.try_install_staged(version, key, metrics, &mut eff);
                }
            }
            Payload::MigrationRevert { version, key, from, to } => {
                // Settle-by-replay: the revert annuls move v, and the
                // replayed `owner` is wherever the surviving history puts
                // the key — `from` in the simple case, a chained move's
                // destination otherwise. Duplicates and below-floor
                // stragglers are Stale no-ops (a late revert can never
                // flip ownership again, however long it straggles).
                if let Settle::Applied { owner } =
                    self.history.settle(key, version, from, to, MoveOutcome::Reverted)
                {
                    if to == self.partition {
                        // Destination side applies at delivery: during
                        // staging every command touching the key *waits*,
                        // so un-owning here deterministically turns those
                        // waits (and all later-delivered commands) into
                        // client retries on every replica. With a chained
                        // move back into this partition the replayed owner
                        // is us — keep ownership, the data holder ships to
                        // us via its own revert pump.
                        self.staging.remove(&(version, key));
                        if owner != self.partition && self.owned.contains(&key) {
                            self.awaiting_keys.remove(&key);
                            self.owned.remove(&key);
                            self.outmigrated.insert(key, owner);
                        }
                    }
                    if from == self.partition {
                        // Source side re-owns (or re-ships) through the
                        // queue: a command delivered before the revert must
                        // resolve against the pre-revert ownership on every
                        // replica, no matter how far its local pump has
                        // progressed.
                        self.queue.push_back(Queued {
                            cmd: Command {
                                id: MsgId::new(u64::MAX, 0),
                                client: dynastar_runtime::NodeId::EXTERNAL,
                                kind: CommandKind::DeleteKey { key: LocKey(u64::MAX) },
                            },
                            attempt: 0,
                            body: QueuedBody::MigrationRevert { version, key },
                        });
                    }
                }
            }
            Payload::Exec { .. }
            | Payload::Hint { .. }
            | Payload::Recompute { .. }
            | Payload::GraphDigest { .. }
            | Payload::DigestFlush { .. } => {
                // Oracle-only payloads; partitions are never destinations.
            }
        }
        self.pump(now, metrics, &mut eff);
        self.finalize_wakes(now, metrics, &mut eff);
        eff
    }

    /// Called by the hosting actor when the modelled CPU frees up.
    pub fn on_wake(&mut self, now: SimTime, metrics: &mut Metrics) -> Vec<Effect<A>> {
        let mut eff = Vec::new();
        self.pump(now, metrics, &mut eff);
        self.finalize_wakes(now, metrics, &mut eff);
        eff
    }

    /// Handles a direct message.
    pub fn on_direct(
        &mut self,
        msg: Direct<A>,
        now: SimTime,
        metrics: &mut Metrics,
    ) -> Vec<Effect<A>> {
        let mut eff = Vec::new();
        if let Some(key) = msg.dedup_key() {
            if !self.seen.insert(key) {
                return eff;
            }
        }
        match msg {
            Direct::VarsForCmd { cmd, attempt, from, vars } => {
                if self.aborted.contains(&(cmd, attempt)) || self.executed.contains_key(&cmd) {
                    // Command will not execute here (aborted or duplicate):
                    // bounce the variables straight back unchanged.
                    eff.push(Effect::Send {
                        to: Destination::Partition(from),
                        msg: Direct::VarsReturn { cmd, attempt, vars },
                    });
                } else {
                    self.vars_in.entry((cmd, attempt)).or_default().insert(from, vars);
                }
            }
            Direct::VarsReturn { cmd, attempt, vars } => {
                self.returns_in.insert((cmd, attempt), vars);
            }
            Direct::Abort { cmd, attempt, .. } => {
                self.aborted.insert((cmd, attempt));
                // Bounce anything already received for it.
                if let Some(received) = self.vars_in.remove(&(cmd, attempt)) {
                    for (from, vars) in received {
                        eff.push(Effect::Send {
                            to: Destination::Partition(from),
                            msg: Direct::VarsReturn { cmd, attempt, vars },
                        });
                    }
                }
            }
            Direct::Signal { cmd, from_partition } => {
                if from_partition.is_none() {
                    self.oracle_signals.insert(cmd);
                }
            }
            Direct::PlanVars { version, key, from, vars, pending, primary } => {
                self.on_plan_vars(version, key, from, vars, pending, primary, metrics, &mut eff);
            }
            Direct::PlanVarsChunk { version, key, from, chunk, total, vars } => {
                // Ack unconditionally — even duplicates and post-settle
                // strays — so a lost ack can never wedge the sender.
                eff.push(Effect::Send {
                    to: Destination::Partition(from),
                    msg: Direct::PlanVarsAck { version, key, chunk },
                });
                let k = (version, key);
                // Only buffer chunks for migrations not yet decided, or
                // with a staging entry still present (Done delivered
                // before all chunks arrived). Once decided *and*
                // dismantled the chunk is ack-only: `decided` answers true
                // for below-floor stragglers too (default-deny), so a
                // stray can never resurrect a staging entry — the
                // unconditional ack above is what terminates the sender's
                // retransmit loop.
                if !self.history.decided(version, key) || self.staging.contains_key(&k) {
                    let e = self.staging.entry(k).or_insert_with(|| StagedKey {
                        from,
                        total: None,
                        chunks: BTreeMap::new(),
                        done: false,
                        done_requested: false,
                    });
                    if e.total.is_none() {
                        e.total = Some(total);
                    }
                    e.chunks.insert(chunk, vars);
                    if e.chunks.len() as u32 >= total && !e.done_requested {
                        e.done_requested = true;
                        let to = self.partition;
                        eff.push(Effect::Multicast {
                            mid: migration_mid(key, version, TAG_MIGRATION_DONE),
                            partitions: vec![from, to],
                            // Every shard's map replica settles the move.
                            oracle: OracleDest::All,
                            payload: Payload::MigrationDone { version, key, from, to },
                        });
                    }
                    // A late chunk may complete a migration whose Done was
                    // already delivered.
                    self.try_install_staged(version, key, metrics, &mut eff);
                }
            }
            Direct::PlanVarsAck { version, key, chunk } => {
                if let Some(e) = self.outbox.get_mut(&(version, key)) {
                    let i = chunk as usize;
                    if i < e.acked.len() && !e.acked[i] {
                        e.acked[i] = true;
                        if e.in_flight == Some(i) {
                            e.in_flight = None;
                            e.attempts = 0;
                            e.backoff = self.config.migration_chunk_timeout;
                        }
                    }
                }
            }
            Direct::SsmrExchange { cmd, attempt, from, vars } => {
                self.ssmr_in.entry((cmd, attempt)).or_default().insert(from, vars);
            }
            Direct::Prophecy { .. }
            | Direct::Reply { .. }
            | Direct::Retry { .. }
            | Direct::Ack { .. } => {
                // Client-addressed; a server never receives these.
            }
        }
        self.pump(now, metrics, &mut eff);
        self.finalize_wakes(now, metrics, &mut eff);
        eff
    }

    /// Installs (or forwards) a staged migration's variables once both the
    /// `MigrationDone` has been delivered and every chunk has arrived at
    /// this replica. Any replica may reach this point later than its peers
    /// (chunks travel outside the total order); the installed values are
    /// identical regardless.
    fn try_install_staged(
        &mut self,
        version: u64,
        key: LocKey,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) {
        let ready = match self.staging.get(&(version, key)) {
            Some(e) => e.done && e.total.is_some_and(|t| e.chunks.len() as u32 >= t),
            None => return,
        };
        if !ready {
            return;
        }
        if !self.owned.contains(&key) && !self.outmigrated.contains_key(&key) {
            // The Done multicast outran the (queued) plan that makes this
            // replica the owner. Keep the staged entry; pump_plan re-runs
            // the install once that plan has been applied. Dropping the
            // vars here would leave the key owned-but-empty forever.
            return;
        }
        let e = match self.staging.remove(&(version, key)) {
            Some(e) => e,
            None => return,
        };
        let vars: Vec<(VarId, Option<A::Value>)> = e.chunks.into_values().flatten().collect();
        let count = vars.len() as u64;
        if self.owned.contains(&key) {
            for (v, val) in vars {
                match val {
                    Some(val) => {
                        self.store.insert(v, val);
                    }
                    None => {
                        self.store.remove(&v);
                    }
                }
                self.awaiting_vars.remove(&v);
            }
            self.awaiting_keys.remove(&key);
            if self.config.record_metrics {
                let ids = self.mids(metrics);
                metrics.incr(ids.objects_exchanged, count);
            }
        } else if let Some(&next) = self.outmigrated.get(&key) {
            // The key was moved away again before staging completed:
            // forward the state as a classic primary shipment along the
            // migration chain (the next owner awaits exactly this).
            eff.push(Effect::Send {
                to: Destination::Partition(next),
                msg: Direct::PlanVars {
                    version,
                    key,
                    from: e.from,
                    vars,
                    pending: Vec::new(),
                    primary: true,
                },
            });
        }
    }

    /// Applies a (primary or supplement) key migration shipment.
    ///
    /// Shipments can arrive while this partition has not yet processed the
    /// plan that makes it the owner (buffer until then), or after a later
    /// plan moved the key away again (forward along the migration chain).
    /// The carried plan version disambiguates the two, which keeps the
    /// forwarding chain loop-free: forwards only follow plans this replica
    /// has already applied.
    #[allow(clippy::too_many_arguments)]
    fn on_plan_vars(
        &mut self,
        version: u64,
        key: LocKey,
        from: PartitionId,
        vars: Vec<(VarId, Option<A::Value>)>,
        pending: Vec<VarId>,
        primary: bool,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) {
        if !self.owned.contains(&key) && !self.awaiting_keys.contains_key(&key) {
            if version > self.plan_version {
                // We have not applied the plan that concerns this shipment
                // yet; hold it until pump_plan catches up.
                self.planvars_buffer.push((version, key, from, vars, pending, primary));
            } else if let Some(&next) = self.outmigrated.get(&key) {
                // The key has already moved on; forward toward its current
                // home. `from` is preserved so the receiver's dedup key
                // still identifies the original shipment.
                eff.push(Effect::Send {
                    to: Destination::Partition(next),
                    msg: Direct::PlanVars { version, key, from, vars, pending, primary },
                });
            }
            return;
        }
        let received = vars.len() as u64;
        let _ = received;
        for (v, val) in vars {
            match val {
                Some(val) => {
                    self.store.insert(v, val);
                }
                None => {
                    self.store.remove(&v);
                }
            }
            self.awaiting_vars.remove(&v);
        }
        if primary {
            self.awaiting_keys.remove(&key);
            self.awaiting_vars.extend(pending);
        }
        if self.config.record_metrics {
            let ids = self.mids(metrics);
            metrics.incr(ids.objects_exchanged, received);
        }
    }

    // ------------------------------------------------------------------
    // Queue processing
    // ------------------------------------------------------------------

    /// Processes the queue head for as long as it can make progress. The
    /// head is popped while being worked on and pushed back if it must
    /// wait, keeping borrows of `self` free for the handlers.
    ///
    /// Commands still *apply* strictly in delivery order: the scheduler
    /// only decides when the head is admitted — once a worker is free and
    /// every conflicting in-flight predecessor has finished. With
    /// `workers = 1` the gate collapses to the single busy clock, i.e. the
    /// pre-parallel serial executor.
    fn pump(&mut self, now: SimTime, metrics: &mut Metrics, eff: &mut Vec<Effect<A>>) {
        loop {
            self.exec.prune(now);
            let gate = match self.queue.front() {
                None => return,
                Some(head) => {
                    let (gate, stall) = self.gate_for(head, now);
                    if let Some(stall) = stall {
                        self.exec.note_stall(stall);
                    }
                    gate
                }
            };
            if now < gate {
                // The modelled engine cannot admit the head yet: ask the
                // hosting actor to wake us when it can.
                eff.push(Effect::Wake { at: gate });
                return;
            }
            let Some(mut entry) = self.queue.pop_front() else { return };
            let done = match &entry.body {
                QueuedBody::Access { .. } => self.pump_access(&mut entry, now, metrics, eff),
                QueuedBody::Create { .. } => self.pump_create(&mut entry, now, metrics, eff),
                QueuedBody::Delete { .. } => self.pump_delete(&mut entry, now, metrics, eff),
                QueuedBody::Plan { .. } => self.pump_plan(&mut entry, now, metrics, eff),
                QueuedBody::MigrationRevert { .. } => {
                    self.pump_revert(&mut entry, now, metrics, eff)
                }
            };
            if !done {
                self.queue.push_front(entry);
                return;
            }
        }
    }

    /// When the modelled engine can admit the queue head, and — if that is
    /// in the future because of a conflict or a full window — stall
    /// attribution for the metrics.
    ///
    /// An `Access` head must find a free worker and wait out every
    /// in-flight command its read/write sets conflict with (CBASE rule:
    /// conflict iff one's writes intersect the other's reads∪writes).
    /// Everything else (creates, deletes, plans, reverts) is a full
    /// barrier — it waits for all workers to drain.
    fn gate_for(&self, head: &Queued<A>, now: SimTime) -> (SimTime, Option<PendingStall>) {
        let cfg = &self.config.exec;
        let clocks = &self.exec.clocks;
        if cfg.workers <= 1 {
            // Serial fast path: one clock (also charged by migration
            // transfers), no classification, no window — exactly the
            // pre-parallel `busy_until` gate.
            return (clocks[0], None);
        }
        if !matches!(head.body, QueuedBody::Access { .. }) {
            // Full barrier. Worker clocks only ever grow past window
            // finish times, so max(clocks) covers every in-flight command.
            let drained = clocks.iter().copied().max().unwrap_or(SimTime::ZERO);
            return (drained, None);
        }
        if cfg.service_time.is_zero() {
            // Execution itself is free (the window stays empty); only
            // migration-transfer charges occupy the clocks.
            let free = clocks.iter().copied().min().unwrap_or(SimTime::ZERO);
            return (free, None);
        }
        let sets = match &head.cmd.kind {
            CommandKind::Access { op, vars } => A::classify(op, vars),
            _ => AccessSets::write_all(&head.cmd.vars()),
        };
        // A worker must be free…
        let mut gate = clocks.iter().copied().min().unwrap_or(SimTime::ZERO);
        // …every conflicting predecessor must have finished…
        let mut conflicted = false;
        for e in &self.exec.window {
            if sets.conflicts_with(&e.sets) {
                conflicted = true;
                gate = gate.max(e.finish);
            }
        }
        // …and the window must have room to track the admission.
        let mut window_full = false;
        if self.exec.window.len() >= cfg.window.max(1) as usize {
            window_full = true;
            if let Some(first_out) = self.exec.window.iter().map(|e| e.finish).min() {
                gate = gate.max(first_out);
            }
        }
        let stall = (now < gate && (conflicted || window_full)).then_some(PendingStall {
            id: head.cmd.id,
            attempt: head.attempt,
            conflicted,
            window_full,
        });
        (gate, stall)
    }

    /// Whether every variable this partition must provide is resolvable:
    /// `Err(())` = stale routing, `Ok(false)` = wait, `Ok(true)` = ready.
    fn my_vars_ready(&self, expected: &[(VarId, PartitionId)]) -> Result<bool, ()> {
        for &(v, p) in expected {
            if p != self.partition {
                continue;
            }
            let key = A::locality(v);
            if !self.owned.contains(&key) {
                return Err(()); // routing was stale
            }
            if self.awaiting_keys.contains_key(&key) || self.awaiting_vars.contains(&v) {
                return Ok(false); // migration in flight
            }
        }
        Ok(true)
    }

    /// Collects this partition's (authoritative) values for its expected
    /// variables.
    fn my_var_values(&self, expected: &[(VarId, PartitionId)]) -> Vec<(VarId, Option<A::Value>)> {
        expected
            .iter()
            .filter(|&&(_, p)| p == self.partition)
            .map(|&(v, _)| (v, self.store.get(&v).cloned()))
            .collect()
    }

    fn pump_access(
        &mut self,
        entry: &mut Queued<A>,
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) -> bool {
        let (cmd_id, attempt, client) = (entry.cmd.id, entry.attempt, entry.cmd.client);
        let cmd = entry.cmd.clone();
        let QueuedBody::Access { expected, target, keep, sent_vars, sent_exchange } =
            &mut entry.body
        else {
            // detlint::allow(P003): pump_queue dispatches to this pump by matching QueuedBody::Access; other variants cannot reach here
            unreachable!("pump_access on non-access queue entry")
        };
        let target = *target;
        let keep = *keep;
        let mut dests: Vec<PartitionId> = expected.iter().map(|&(_, p)| p).collect();
        dests.sort_unstable();
        dests.dedup();
        let multi = dests.len() > 1;

        // Duplicate dispatch of an already-executed command: answer from
        // the reply cache, bounce any borrowed vars.
        if let Some(reply) = self.executed.get(&cmd_id) {
            if target == self.partition {
                eff.push(Effect::Send {
                    to: Destination::Client(client),
                    msg: Direct::Reply { cmd: cmd_id, attempt, reply: reply.clone() },
                });
                if let Some(received) = self.vars_in.remove(&(cmd_id, attempt)) {
                    for (from, vars) in received {
                        eff.push(Effect::Send {
                            to: Destination::Partition(from),
                            msg: Direct::VarsReturn { cmd: cmd_id, attempt, vars },
                        });
                    }
                }
            }
            return true;
        }

        // Known aborted: nothing to do (vars already bounced on arrival).
        if self.aborted.contains(&(cmd_id, attempt)) {
            if let Some(received) = self.vars_in.remove(&(cmd_id, attempt)) {
                for (from, vars) in received {
                    eff.push(Effect::Send {
                        to: Destination::Partition(from),
                        msg: Direct::VarsReturn { cmd: cmd_id, attempt, vars },
                    });
                }
            }
            return true;
        }

        // Staleness check for the variables expected of us.
        match self.my_vars_ready(expected) {
            Err(()) => {
                trace_blocked(format_args!(
                    "[{}] t={} cmd={} att={} stale routing: expected={:?}",
                    self.partition, now, cmd_id, attempt, expected,
                ));
                // Tell the client to retry via the oracle; tell the target
                // to abandon the command.
                eff.push(Effect::Send {
                    to: Destination::Client(client),
                    msg: Direct::Retry { cmd: cmd_id, attempt },
                });
                if target != self.partition {
                    eff.push(Effect::Send {
                        to: Destination::Partition(target),
                        msg: Direct::Abort { cmd: cmd_id, attempt, missing_at: self.partition },
                    });
                } else if let Some(received) = self.vars_in.remove(&(cmd_id, attempt)) {
                    // We are the target: lenders that already shipped their
                    // variables block until they come back — bounce them.
                    for (from, vars) in received {
                        eff.push(Effect::Send {
                            to: Destination::Partition(from),
                            msg: Direct::VarsReturn { cmd: cmd_id, attempt, vars },
                        });
                    }
                }
                self.aborted.insert((cmd_id, attempt));
                if self.config.record_metrics {
                    let ids = self.mids(metrics);
                    metrics.incr(ids.cmd_retry, 1);
                }
                return true;
            }
            Ok(false) => {
                trace_blocked(format_args!(
                    "[{}] t={} cmd={} att={} waits for in-flight migration: keys={:?} vars={:?}",
                    self.partition, now, cmd_id, attempt, self.awaiting_keys, self.awaiting_vars
                ));
                return false; // wait for in-flight migration
            }
            Ok(true) => {}
        }

        if !multi {
            // Single-partition fast path (Algorithm 3 Task 1a).
            let expected = expected.clone();
            self.execute_here(&cmd, attempt, &expected, now, metrics, eff);
            return true;
        }

        if self.mode == Mode::SSmr {
            // S-SMR: exchange shares, then everyone executes.
            if !*sent_exchange {
                *sent_exchange = true;
                let mine = self.my_var_values(expected);
                if self.config.record_metrics {
                    let ids = self.mids(metrics);
                    metrics.incr(
                        ids.objects_exchanged,
                        mine.iter().filter(|(_, v)| v.is_some()).count() as u64,
                    );
                }
                for &p in dests.iter().filter(|&&p| p != self.partition) {
                    eff.push(Effect::Send {
                        to: Destination::Partition(p),
                        msg: Direct::SsmrExchange {
                            cmd: cmd_id,
                            attempt,
                            from: self.partition,
                            vars: mine.clone(),
                        },
                    });
                }
            }
            let have = self.ssmr_in.get(&(cmd_id, attempt)).map(|m| m.len()).unwrap_or(0);
            if have + 1 < dests.len() {
                return false; // waiting for other partitions' shares
            }
            // Assemble the full variable map and execute.
            let expected = expected.clone();
            let shares = self.ssmr_in.remove(&(cmd_id, attempt)).unwrap_or_default();
            let mut borrowed = BTreeMap::new();
            for (_, vars) in shares {
                for (v, val) in vars {
                    borrowed.insert(v, val);
                }
            }
            let replies_here = self.partition == dests[0]; // lowest id replies
            self.execute_ssmr(&cmd, attempt, &expected, borrowed, now, metrics, eff, replies_here);
            return true;
        }

        // DynaStar / DS-SMR path.
        if target == self.partition {
            // Target: wait until every other involved partition shipped.
            let have = self.vars_in.get(&(cmd_id, attempt)).map(|m| m.len()).unwrap_or(0);
            if have + 1 < dests.len() {
                trace_blocked(format_args!(
                    "[{}] t={} target cmd={} att={} waits for vars: {have}/{} received",
                    self.partition,
                    now,
                    cmd_id,
                    attempt,
                    dests.len() - 1
                ));
                return false;
            }
            let expected = expected.clone();
            let shipments = self.vars_in.remove(&(cmd_id, attempt)).unwrap_or_default();
            let mut borrowed: BTreeMap<VarId, Option<A::Value>> = BTreeMap::new();
            let mut sources: BTreeMap<VarId, PartitionId> = BTreeMap::new();
            for (from, vars) in shipments {
                for (v, val) in vars {
                    sources.insert(v, from);
                    borrowed.insert(v, val);
                }
            }
            self.execute_target(
                &cmd, attempt, &expected, borrowed, sources, keep, now, metrics, eff,
            );
            true
        } else {
            // Non-target: ship our variables, then (DynaStar) await return.
            if !*sent_vars {
                *sent_vars = true;
                let mine = self.my_var_values(expected);
                if self.config.record_metrics {
                    let ids = self.mids(metrics);
                    let shipped = mine.iter().filter(|(_, v)| v.is_some()).count();
                    metrics.incr(ids.objects_exchanged, shipped as u64);
                    metrics.record_at(ids.s_objects, now, shipped as f64);
                    metrics.record_at(ids.s_multi, now, 1.0);
                }
                for (v, _) in &mine {
                    self.lent.insert(*v, (cmd_id, attempt));
                }
                // Values leave this partition while borrowed.
                for (v, _) in &mine {
                    self.store.remove(v);
                }
                eff.push(Effect::Send {
                    to: Destination::Partition(target),
                    msg: Direct::VarsForCmd {
                        cmd: cmd_id,
                        attempt,
                        from: self.partition,
                        vars: mine,
                    },
                });
                if keep {
                    // DS-SMR: ownership transfers; nothing comes back.
                    let my_keys: Vec<LocKey> = expected
                        .iter()
                        .filter(|&&(_, p)| p == self.partition)
                        .map(|&(v, _)| A::locality(v))
                        .collect();
                    for key in my_keys {
                        if self.owned.remove(&key) {
                            self.outmigrated.insert(key, target);
                        }
                    }
                    // Lent entries are moot: clear them.
                    self.lent.retain(|_, &mut (c, a)| !(c == cmd_id && a == attempt));
                    return true;
                }
            }
            // DynaStar: block until the variables come home (line 17).
            let Some(returned) = self.returns_in.remove(&(cmd_id, attempt)) else {
                trace_blocked(format_args!(
                    "[{}] t={} lender cmd={} att={} waits for return from {}",
                    self.partition, now, cmd_id, attempt, target
                ));
                return false;
            };
            for (v, val) in returned {
                self.lent.remove(&v);
                self.apply_returned_var(v, val, eff);
            }
            true
        }
    }

    /// Stores or forwards one returned variable, depending on whether its
    /// key still lives here.
    fn apply_returned_var(&mut self, v: VarId, val: Option<A::Value>, eff: &mut Vec<Effect<A>>) {
        let key = A::locality(v);
        if self.owned.contains(&key) {
            match val {
                Some(val) => {
                    self.store.insert(v, val);
                }
                None => {
                    self.store.remove(&v);
                }
            }
        } else if let Some(&next) = self.outmigrated.get(&key) {
            // The key migrated while the variable was lent: forward it as a
            // supplement so the new owner can clear its pending marker.
            eff.push(Effect::Send {
                to: Destination::Partition(next),
                msg: Direct::PlanVars {
                    version: self.plan_version,
                    key,
                    from: self.partition,
                    vars: vec![(v, val)],
                    pending: Vec::new(),
                    primary: false,
                },
            });
        }
    }

    /// Executes a single-partition command at this partition.
    fn execute_here(
        &mut self,
        cmd: &Command<A>,
        attempt: u32,
        expected: &[(VarId, PartitionId)],
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) {
        let op = match &cmd.kind {
            CommandKind::Access { op, .. } => op.clone(),
            _ => {
                // Only reached from Access handling in pump_access; on the
                // delivery path a violated invariant must not take the
                // replica down (P00x), so drop the command instead.
                debug_assert!(false, "execute_here on non-access");
                return;
            }
        };
        let mut vars: BTreeMap<VarId, Option<A::Value>> = BTreeMap::new();
        for &(v, p) in expected {
            if p == self.partition {
                vars.insert(v, self.store.get(&v).cloned());
            }
        }
        let reply = A::execute(&op, &mut vars);
        for &(v, p) in expected {
            if p == self.partition {
                match vars.get(&v).cloned().flatten() {
                    Some(val) => {
                        self.store.insert(v, val);
                    }
                    None => {
                        self.store.remove(&v);
                    }
                }
            }
        }
        self.finish_execution(cmd, attempt, reply, false, now, metrics, eff);
    }

    /// Executes a multi-partition command at the target with borrowed
    /// variables, then returns (or keeps) them.
    #[allow(clippy::too_many_arguments)]
    fn execute_target(
        &mut self,
        cmd: &Command<A>,
        attempt: u32,
        expected: &[(VarId, PartitionId)],
        mut borrowed: BTreeMap<VarId, Option<A::Value>>,
        sources: BTreeMap<VarId, PartitionId>,
        keep: bool,
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) {
        let op = match &cmd.kind {
            CommandKind::Access { op, .. } => op.clone(),
            // detlint::allow(P003): only reached from Access handling (exchange path); variant pairing is a local invariant
            _ => unreachable!("execute_target on non-access"),
        };
        for &(v, p) in expected {
            if p == self.partition {
                borrowed.insert(v, self.store.get(&v).cloned());
            }
        }
        let reply = A::execute(&op, &mut borrowed);

        // Local variables: apply in place.
        for &(v, p) in expected {
            if p == self.partition {
                match borrowed.get(&v).cloned().flatten() {
                    Some(val) => {
                        self.store.insert(v, val);
                    }
                    None => {
                        self.store.remove(&v);
                    }
                }
            }
        }
        // Borrowed variables: return home (DynaStar) or absorb (DS-SMR).
        let mut by_source: ShipmentsBySource<A> = BTreeMap::new();
        for (v, from) in &sources {
            by_source.entry(*from).or_default().push((*v, borrowed.get(v).cloned().flatten()));
        }
        if keep {
            for (_, vars) in by_source {
                for (v, val) in vars {
                    let key = A::locality(v);
                    self.owned.insert(key);
                    match val {
                        Some(val) => {
                            self.store.insert(v, val);
                        }
                        None => {
                            self.store.remove(&v);
                        }
                    }
                }
            }
        } else {
            let mut returned_objects = 0u64;
            for (from, vars) in by_source {
                returned_objects += vars.iter().filter(|(_, v)| v.is_some()).count() as u64;
                eff.push(Effect::Send {
                    to: Destination::Partition(from),
                    msg: Direct::VarsReturn { cmd: cmd.id, attempt, vars },
                });
            }
            if self.config.record_metrics {
                let ids = self.mids(metrics);
                metrics.incr(ids.objects_exchanged, returned_objects);
                metrics.record_at(ids.s_objects, now, returned_objects as f64);
            }
        }
        self.finish_execution(cmd, attempt, reply, true, now, metrics, eff);
    }

    /// S-SMR execution: full variable map available, apply only our own
    /// variables, reply only if we are the designated replier.
    #[allow(clippy::too_many_arguments)]
    fn execute_ssmr(
        &mut self,
        cmd: &Command<A>,
        attempt: u32,
        expected: &[(VarId, PartitionId)],
        mut vars: BTreeMap<VarId, Option<A::Value>>,
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
        replies_here: bool,
    ) {
        let op = match &cmd.kind {
            CommandKind::Access { op, .. } => op.clone(),
            // detlint::allow(P003): only reached from Access handling (SSMR path); variant pairing is a local invariant
            _ => unreachable!("execute_ssmr on non-access"),
        };
        for &(v, p) in expected {
            if p == self.partition {
                vars.insert(v, self.store.get(&v).cloned());
            }
        }
        let reply = A::execute(&op, &mut vars);
        for &(v, p) in expected {
            if p == self.partition {
                match vars.get(&v).cloned().flatten() {
                    Some(val) => {
                        self.store.insert(v, val);
                    }
                    None => {
                        self.store.remove(&v);
                    }
                }
            }
        }
        if self.config.record_metrics {
            let ids = self.mids(metrics);
            metrics.record_at(ids.s_multi, now, 1.0);
        }
        if replies_here {
            self.finish_execution(cmd, attempt, reply, true, now, metrics, eff);
        } else {
            // Record execution without replying (dedup for retries).
            self.admit_execution(cmd, attempt, now, metrics);
            self.executed.insert(cmd.id, reply);
            if self.config.record_metrics {
                let ids = self.mids(metrics);
                metrics.record_at(ids.s_executed, now, 1.0);
            }
        }
    }

    /// Accounts the modelled CPU cost of one execution: assigns the
    /// command to the earliest-free (lowest-index on ties) worker, charges
    /// the service time, and registers its read/write sets in the
    /// dependency window so successors conflict-check against it.
    ///
    /// Only called once the [`Self::gate_for`] gate has passed, so the
    /// chosen worker's clock is at or before `now`.
    fn admit_execution(
        &mut self,
        cmd: &Command<A>,
        attempt: u32,
        now: SimTime,
        metrics: &mut Metrics,
    ) {
        let cfg = self.config.exec;
        if cfg.service_time.is_zero() {
            return;
        }
        if cfg.workers <= 1 {
            // Serial fast path: exactly the old single-busy_until model.
            advance_busy(&mut self.exec.clocks[0], now, cfg.service_time);
            return;
        }
        let record = self.config.record_metrics;
        if !matches!(cmd.kind, CommandKind::Access { .. }) {
            // Creates/deletes executed here act as full two-sided
            // barriers: they both wait for all workers (gate) and make
            // every successor wait for them.
            let finish = now + cfg.service_time;
            for c in &mut self.exec.clocks {
                *c = finish;
            }
            self.exec.window.clear();
            self.exec.pending = None;
            if record {
                let h = self.worker_hist(metrics, 0);
                metrics.observe(h, cfg.service_time);
            }
            return;
        }
        let sets = match &cmd.kind {
            CommandKind::Access { op, vars } => A::classify(op, vars),
            _ => AccessSets::write_all(&cmd.vars()),
        };
        let w = earliest_free_worker(&self.exec.clocks);
        advance_busy(&mut self.exec.clocks[w], now, cfg.service_time);
        let finish = self.exec.clocks[w];
        let stall = self.exec.pending.take();
        if record {
            let ids = self.mids(metrics);
            if !self.exec.window.is_empty() {
                metrics.incr(ids.exec_parallel, 1);
            }
            if let Some(s) = stall {
                if s.id == cmd.id && s.attempt == attempt {
                    if s.conflicted {
                        metrics.incr(ids.exec_serialized, 1);
                    }
                    if s.window_full {
                        metrics.incr(ids.exec_window_stall, 1);
                    }
                }
            }
            let h = self.worker_hist(metrics, w);
            metrics.observe(h, cfg.service_time);
        }
        self.exec.window.push_back(WindowEntry { sets, finish });
    }

    /// Reply, reply-cache, metrics and hint bookkeeping after execution.
    #[allow(clippy::too_many_arguments)]
    fn finish_execution(
        &mut self,
        cmd: &Command<A>,
        attempt: u32,
        reply: A::Reply,
        multi: bool,
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) {
        self.admit_execution(cmd, attempt, now, metrics);
        eff.push(Effect::Send {
            to: Destination::Client(cmd.client),
            msg: Direct::Reply { cmd: cmd.id, attempt, reply: reply.clone() },
        });
        self.executed.insert(cmd.id, reply);
        if self.config.record_metrics {
            let ids = self.mids(metrics);
            metrics.record_at(ids.s_executed, now, 1.0);
            if multi {
                metrics.incr(ids.cmd_multi, 1);
                metrics.record_at(ids.s_cmd_multi, now, 1.0);
                metrics.record_at(ids.s_multi, now, 1.0);
            } else {
                metrics.incr(ids.cmd_single, 1);
                metrics.record_at(ids.s_cmd_single, now, 1.0);
            }
        }
        if self.config.collect_hints && self.mode.optimizes() {
            self.record_hint(cmd, eff);
        }
    }

    /// Accumulates workload-graph hints and flushes a batch when due
    /// (Algorithm 2 Task 4, partition side).
    fn record_hint(&mut self, cmd: &Command<A>, eff: &mut Vec<Effect<A>>) {
        /// One shard's hint slice: (vertex, weight) and (a, b, weight) lists.
        type HintSlice = (Vec<(LocKey, u64)>, Vec<(LocKey, LocKey, u64)>);
        let keys = cmd.keys();
        for &k in &keys {
            *self.hint_vertices.entry(k).or_insert(0) += 1;
        }
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                *self.hint_edges.entry((keys[i], keys[j])).or_insert(0) += 1;
            }
        }
        self.hint_execs += 1;
        if self.hint_execs >= self.config.hint_batch {
            self.hint_execs = 0;
            // Split the batch by slice ownership and multicast each
            // non-empty slice to its owner shard, in shard order: a
            // vertex goes to its key's owner, an edge to its lower key's
            // (keys are sorted within a command, so `a` is the lower).
            // Each slice consumes its own hint sequence number. With one
            // shard this emits exactly the single classic hint multicast
            // (BTreeMap iteration keeps the lists key-sorted).
            let shards = self.config.oracle_shards;
            let mut slices: Vec<HintSlice> = vec![(Vec::new(), Vec::new()); shards.max(1) as usize];
            for (&k, &w) in &self.hint_vertices {
                slices[shard_of(k, shards) as usize].0.push((k, w));
            }
            for (&(a, b), &w) in &self.hint_edges {
                slices[shard_of(a, shards) as usize].1.push((a, b, w));
            }
            self.hint_vertices.clear();
            self.hint_edges.clear();
            for (s, (vertices, edges)) in slices.into_iter().enumerate() {
                if vertices.is_empty() && edges.is_empty() {
                    continue;
                }
                let mid =
                    MsgId::new(PARTITION_ORIGIN_BASE + self.partition.0 as u64, self.hint_seq);
                self.hint_seq += 1;
                eff.push(Effect::Multicast {
                    mid,
                    partitions: Vec::new(),
                    oracle: OracleDest::Shard(s as u32),
                    payload: Payload::Hint { vertices, edges },
                });
            }
        }
    }

    fn pump_create(
        &mut self,
        entry: &mut Queued<A>,
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) -> bool {
        let (cmd_id, client) = (entry.cmd.id, entry.cmd.client);
        let QueuedBody::Create { key, signalled } = &mut entry.body else {
            // detlint::allow(P003): pump_queue dispatches to this pump by matching QueuedBody::Create; other variants cannot reach here
            unreachable!("pump_create on non-create queue entry")
        };
        let key = *key;
        if !*signalled {
            *signalled = true;
            eff.push(Effect::Send {
                to: Destination::Oracle,
                msg: Direct::Signal { cmd: cmd_id, from_partition: Some(self.partition) },
            });
        }
        // Rendezvous: wait for the oracle's signal (Algorithm 3 Task 2).
        if !self.oracle_signals.contains(&cmd_id) {
            return false;
        }
        if let CommandKind::CreateKey { vars, .. } = &entry.cmd.kind {
            self.owned.insert(key);
            for (v, val) in vars {
                self.store.insert(*v, val.clone());
            }
        }
        if self.config.record_metrics {
            let ids = self.mids(metrics);
            metrics.record_at(ids.s_executed, now, 1.0);
        }
        eff.push(Effect::Send {
            to: Destination::Client(client),
            msg: Direct::Ack { cmd: cmd_id },
        });
        true
    }

    fn pump_delete(
        &mut self,
        entry: &mut Queued<A>,
        _now: SimTime,
        _metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) -> bool {
        let (cmd_id, client) = (entry.cmd.id, entry.cmd.client);
        let QueuedBody::Delete { key, signalled } = &mut entry.body else {
            // detlint::allow(P003): pump_queue dispatches to this pump by matching QueuedBody::Delete; other variants cannot reach here
            unreachable!("pump_delete on non-delete queue entry")
        };
        let key = *key;
        if self.awaiting_keys.contains_key(&key) {
            return false; // migration inbound; wait for the state first
        }
        if !self.owned.contains(&key) {
            // Stale: the key moved away after the oracle routed the delete.
            eff.push(Effect::Send {
                to: Destination::Client(client),
                msg: Direct::Retry { cmd: cmd_id, attempt: 0 },
            });
            return true;
        }
        if !*signalled {
            *signalled = true;
            eff.push(Effect::Send {
                to: Destination::Oracle,
                msg: Direct::Signal { cmd: cmd_id, from_partition: Some(self.partition) },
            });
        }
        if !self.oracle_signals.contains(&cmd_id) {
            return false;
        }
        self.owned.remove(&key);
        let dead: Vec<VarId> =
            self.store.keys().copied().filter(|&v| A::locality(v) == key).collect();
        for v in dead {
            self.store.remove(&v);
        }
        eff.push(Effect::Send {
            to: Destination::Client(client),
            msg: Direct::Ack { cmd: cmd_id },
        });
        true
    }

    fn pump_plan(
        &mut self,
        entry: &mut Queued<A>,
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) -> bool {
        let QueuedBody::Plan { version, moves } = &entry.body else {
            // detlint::allow(P003): pump_queue dispatches to this pump by matching QueuedBody::Plan; other variants cannot reach here
            unreachable!("pump_plan on non-plan queue entry")
        };
        let (version, moves) = (*version, moves.clone());
        self.plan_version = version;
        for (key, from, to) in moves {
            // Outbound: nominally `from == self.partition`, but a revert
            // that already pumped here can have re-owned a key whose next
            // move the oracle planned from the *reverted* destination
            // (`from` is stale). The actual holder must ship it — the
            // nominal source no longer owns the key and skips below, so
            // exactly one partition ships.
            let outbound =
                to != self.partition && (from == self.partition || self.owned.contains(&key));
            if outbound {
                // Chained migration: the key may still be in flight toward
                // us from an earlier plan. We then ship what we have as a
                // supplement and let the in-flight primary be forwarded
                // through us (see on_plan_vars) once it lands.
                let was_awaiting = self.awaiting_keys.remove(&key).is_some();
                if !self.owned.remove(&key) {
                    continue; // already gone (e.g. DS-SMR moved it earlier)
                }
                self.outmigrated.insert(key, to);
                let vars: Vec<(VarId, Option<A::Value>)> = self
                    .store
                    .iter()
                    .filter(|(&v, _)| A::locality(v) == key)
                    .map(|(&v, val)| (v, Some(val.clone())))
                    .collect();
                for (v, _) in &vars {
                    self.store.remove(v);
                }
                // Stale in-flight markers move with the key.
                self.awaiting_vars.retain(|&v| A::locality(v) != key);
                let pending: Vec<VarId> =
                    self.lent.keys().copied().filter(|&v| A::locality(v) == key).collect();
                if self.config.record_metrics {
                    let ids = self.mids(metrics);
                    metrics.incr(ids.objects_exchanged, vars.len() as u64);
                    metrics.record_at(ids.s_objects, now, vars.len() as f64);
                }
                // Staged path: only for keys fully at rest here — owned
                // outright (not still awaiting an earlier migration) with
                // no variables lent out. Anything else keeps the classic
                // immediate shipment, so no supplement or returned loan
                // can ever land mid-staging.
                if self.config.staged_migration && !was_awaiting && pending.is_empty() {
                    let per = self.config.migration_chunk_vars.max(1) as usize;
                    let mut chunks: Vec<VarShipment<A>> =
                        vars.chunks(per).map(|c| c.to_vec()).collect();
                    if chunks.is_empty() {
                        // Keyless-data moves still stage one empty chunk so
                        // the destination reaches `total` and commits.
                        chunks.push(Vec::new());
                    }
                    let n = chunks.len();
                    // Per-link scheduling: moves arrive hottest-first (the
                    // oracle orders them by access weight), so when the
                    // link to `to` is at its in-flight cap this colder move
                    // parks in FIFO order and a freed slot promotes it.
                    let cap = self.config.migration_max_inflight_per_link;
                    let deferred =
                        cap > 0 && self.link_active.get(&to).copied().unwrap_or(0) >= cap;
                    if deferred {
                        self.link_waiting.entry(to).or_default().push_back((version, key));
                    } else if cap > 0 {
                        *self.link_active.entry(to).or_insert(0) += 1;
                    }
                    self.outbox.insert(
                        (version, key),
                        OutboxEntry {
                            to,
                            chunks,
                            acked: vec![false; n],
                            in_flight: None,
                            attempts: 0,
                            backoff: self.config.migration_chunk_timeout,
                            deadline: SimTime::ZERO,
                            next_ship_at: now,
                            gave_up: false,
                            deferred,
                        },
                    );
                    if self.config.record_metrics {
                        let ids = self.mids(metrics);
                        metrics.incr(ids.migration_keys_staged, 1);
                        if deferred {
                            metrics.incr(ids.migration_deferred, 1);
                        }
                    }
                    continue; // chunks ship from the migration pump
                }
                // Unthrottled path under a configured bandwidth model: the
                // whole transfer charges the link at once — this is the
                // stall baseline staged migration is measured against.
                if self.config.migration_link_bytes_per_sec > 0 {
                    let t = transfer_time(&self.config, vars.len());
                    let w = earliest_free_worker(&self.exec.clocks);
                    advance_busy(&mut self.exec.clocks[w], now, t);
                }
                if was_awaiting {
                    // Not authoritative yet: send only what we hold.
                    if !vars.is_empty() {
                        eff.push(Effect::Send {
                            to: Destination::Partition(to),
                            msg: Direct::PlanVars {
                                version,
                                key,
                                from: self.partition,
                                vars,
                                pending,
                                primary: false,
                            },
                        });
                    }
                } else {
                    eff.push(Effect::Send {
                        to: Destination::Partition(to),
                        msg: Direct::PlanVars {
                            version,
                            key,
                            from: self.partition,
                            vars,
                            pending,
                            primary: true,
                        },
                    });
                }
            } else if to == self.partition && from != self.partition {
                if self.history.reverted(version, key) {
                    // The move was annulled before this plan reached the
                    // queue head. Taking ownership would wedge the key
                    // (the source will never ship); if a later surviving
                    // move re-routes it here, that plan entry takes
                    // ownership when it pumps.
                    continue;
                }
                self.owned.insert(key);
                self.outmigrated.remove(&key);
                self.awaiting_keys.insert(key, from);
            }
        }
        // Staged shipments whose Done outran this plan in the queue can
        // resolve now that the ownership it decides is in place.
        let mut staged_done: Vec<(u64, LocKey)> =
            self.staging.iter().filter(|(_, e)| e.done).map(|(&k, _)| k).collect();
        staged_done.sort_unstable();
        for (v, key) in staged_done {
            self.try_install_staged(v, key, metrics, eff);
        }
        // Re-process shipments that arrived before this plan.
        let ready: Vec<_> = {
            let (ready, later): (Vec<_>, Vec<_>) =
                self.planvars_buffer.drain(..).partition(|&(v, ..)| v <= version);
            self.planvars_buffer = later;
            ready
        };
        for (v, key, from, vars, pending, primary) in ready {
            self.on_plan_vars(v, key, from, vars, pending, primary, metrics, eff);
        }
        true
    }

    /// Queue-ordered source-side resolution of a gave-up staged migration.
    /// Replaying the key's plan history decides where it now belongs: with
    /// no surviving later move the key comes home (re-own + reinstall the
    /// retained chunk data); with a chained move past the reverted one the
    /// cluster has already agreed the key lives at the chain's end — this
    /// partition holds the only authoritative copy, so it ships the
    /// retained state there as the primary shipment the owner awaits.
    fn pump_revert(
        &mut self,
        entry: &mut Queued<A>,
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) -> bool {
        let QueuedBody::MigrationRevert { version, key } = &entry.body else {
            // detlint::allow(P003): pump dispatches to this handler by matching QueuedBody::MigrationRevert; other variants cannot reach here
            unreachable!("pump_revert on non-revert queue entry")
        };
        let (version, key) = (*version, *key);
        let Some(e) = self.outbox.remove(&(version, key)) else {
            return true; // already dismantled (e.g. by a racing Done)
        };
        if !e.deferred && !e.gave_up {
            self.release_link_slot(e.to, now, metrics);
        }
        let owner = self.history.resolved_owner_versioned(key);
        match owner {
            Some((owner, owner_version)) if owner != self.partition => {
                if self.outmigrated.get(&key) == Some(&e.to) {
                    self.outmigrated.insert(key, owner);
                }
                if !self.owned.contains(&key) {
                    let vars: Vec<(VarId, Option<A::Value>)> =
                        e.chunks.into_iter().flatten().collect();
                    // Carry the version of the move that made `owner` the
                    // owner, so its plan-version buffering resolves the
                    // shipment against the right plan.
                    eff.push(Effect::Send {
                        to: Destination::Partition(owner),
                        msg: Direct::PlanVars {
                            version: owner_version,
                            key,
                            from: self.partition,
                            vars,
                            pending: Vec::new(),
                            primary: true,
                        },
                    });
                }
            }
            _ => {
                // Replay says the key belongs here (owner is us, or no
                // non-reverted move survives): classic rollback.
                if self.outmigrated.get(&key) == Some(&e.to) && !self.owned.contains(&key) {
                    self.outmigrated.remove(&key);
                    self.owned.insert(key);
                    for chunk in e.chunks {
                        for (v, val) in chunk {
                            match val {
                                Some(val) => {
                                    self.store.insert(v, val);
                                }
                                None => {
                                    self.store.remove(&v);
                                }
                            }
                        }
                    }
                }
            }
        }
        if self.config.record_metrics {
            let ids = self.mids(metrics);
            metrics.incr(ids.migration_reverts, 1);
        }
        true
    }

    /// Frees one in-flight slot on the link to `to` and promotes waiting
    /// deferred transfers (oldest = hottest first) into free slots.
    /// Returns whether any transfer was promoted. No-op when the per-link
    /// cap is disabled.
    fn release_link_slot(&mut self, to: PartitionId, now: SimTime, metrics: &mut Metrics) -> bool {
        let cap = self.config.migration_max_inflight_per_link;
        if cap == 0 {
            return false;
        }
        if let Some(n) = self.link_active.get_mut(&to) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.link_active.remove(&to);
            }
        }
        let mut promoted = false;
        while self.link_active.get(&to).copied().unwrap_or(0) < cap {
            let Some(k) = self.link_waiting.get_mut(&to).and_then(VecDeque::pop_front) else {
                self.link_waiting.remove(&to);
                break;
            };
            match self.outbox.get_mut(&k) {
                Some(e) if e.deferred && !e.gave_up => {
                    e.deferred = false;
                    e.next_ship_at = now;
                    *self.link_active.entry(to).or_insert(0) += 1;
                    promoted = true;
                    if self.config.record_metrics {
                        let ids = self.mids(metrics);
                        metrics.incr(ids.migration_released, 1);
                    }
                }
                // Stale waiter (entry dismantled meanwhile): keep popping.
                _ => {}
            }
        }
        promoted
    }

    /// Drives every staged migration this partition is the source of:
    /// ships the next chunk when the rate limiter allows, retransmits
    /// timed-out chunks with exponential backoff, and requests a revert
    /// once retries are exhausted. Give-ups free their link slot, and any
    /// transfer promoted into it ships in a follow-up pass. Returns the
    /// earliest future instant at which this pump needs to run again
    /// (always `> now`: past-due work was just handled).
    fn pump_migration(
        &mut self,
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
    ) -> Option<SimTime> {
        let mut next_due: Option<SimTime> = None;
        loop {
            let freed = self.pump_migration_pass(now, metrics, eff, &mut next_due);
            let mut promoted = false;
            for to in freed {
                promoted |= self.release_link_slot(to, now, metrics);
            }
            if !promoted {
                break;
            }
            // A promoted transfer has `next_ship_at = now`: re-run the
            // pass so its first chunk ships in this same batch.
        }
        next_due
    }

    /// One pass over the outbox; returns the destinations whose link slot
    /// was freed by a give-up in this pass.
    fn pump_migration_pass(
        &mut self,
        now: SimTime,
        metrics: &mut Metrics,
        eff: &mut Vec<Effect<A>>,
        next_due: &mut Option<SimTime>,
    ) -> Vec<PartitionId> {
        if self.outbox.is_empty() {
            return Vec::new();
        }
        let ids = if self.config.record_metrics { Some(self.mids(metrics)) } else { None };
        let me = self.partition;
        let backoff_cap = self.config.migration_chunk_timeout.saturating_mul(64);
        let due = |slot: &mut Option<SimTime>, at: SimTime| {
            *slot = Some(slot.map_or(at, |cur| cur.min(at)));
        };
        // Serialization/NIC time of chunk shipments charges worker clocks;
        // the vector is taken out so the outbox can stay mutably borrowed.
        let mut clocks = std::mem::take(&mut self.exec.clocks);
        let mut reverts: Vec<(u64, LocKey, PartitionId)> = Vec::new();
        for (&(version, key), e) in self.outbox.iter_mut() {
            if e.gave_up || e.deferred {
                continue;
            }
            if let Some(i) = e.in_flight {
                if now < e.deadline {
                    due(next_due, e.deadline);
                    continue;
                }
                // Ack deadline missed: retry with backoff, or give up.
                e.attempts += 1;
                if e.attempts > self.config.migration_max_retries {
                    e.gave_up = true;
                    reverts.push((version, key, e.to));
                    continue;
                }
                e.backoff = e.backoff.saturating_mul(2).min(backoff_cap);
                let transfer = transfer_time(&self.config, e.chunks[i].len());
                e.deadline = now + transfer + e.backoff;
                let w = earliest_free_worker(&clocks);
                advance_busy(&mut clocks[w], now, transfer);
                eff.push(Effect::Send {
                    to: Destination::Partition(e.to),
                    msg: Direct::PlanVarsChunk {
                        version,
                        key,
                        from: me,
                        chunk: i as u32,
                        total: e.chunks.len() as u32,
                        vars: e.chunks[i].clone(),
                    },
                });
                if let Some(ids) = ids {
                    metrics.incr(ids.migration_chunks_sent, 1);
                    metrics.incr(ids.migration_chunk_retries, 1);
                }
                due(next_due, e.deadline);
                continue;
            }
            let Some(i) = e.acked.iter().position(|&a| !a) else {
                continue; // all chunks acked; awaiting the MigrationDone
            };
            if now < e.next_ship_at {
                due(next_due, e.next_ship_at);
                continue;
            }
            let transfer = transfer_time(&self.config, e.chunks[i].len());
            e.in_flight = Some(i);
            e.next_ship_at = now + transfer;
            e.deadline = now + transfer + e.backoff;
            let w = earliest_free_worker(&clocks);
            advance_busy(&mut clocks[w], now, transfer);
            eff.push(Effect::Send {
                to: Destination::Partition(e.to),
                msg: Direct::PlanVarsChunk {
                    version,
                    key,
                    from: me,
                    chunk: i as u32,
                    total: e.chunks.len() as u32,
                    vars: e.chunks[i].clone(),
                },
            });
            if let Some(ids) = ids {
                metrics.incr(ids.migration_chunks_sent, 1);
            }
            due(next_due, e.deadline);
        }
        self.exec.clocks = clocks;
        let mut freed = Vec::with_capacity(reverts.len());
        for (version, key, to) in reverts {
            freed.push(to);
            eff.push(Effect::Multicast {
                mid: migration_mid(key, version, TAG_MIGRATION_REVERT),
                partitions: vec![me, to],
                oracle: OracleDest::All,
                payload: Payload::MigrationRevert { version, key, from: me, to },
            });
        }
        freed
    }

    /// Runs the migration pump and collapses this batch's `Wake` requests
    /// into the single earliest one. The hosting actor keeps one timer
    /// slot for wake-ups, so a later `Wake` would supersede an earlier
    /// one — the merged minimum must always include the migration pump's
    /// next deadline or a retransmit could be lost. A batch with neither
    /// wakes nor migration work leaves any previously armed timer intact.
    fn finalize_wakes(&mut self, now: SimTime, metrics: &mut Metrics, eff: &mut Vec<Effect<A>>) {
        let mut min_wake = self.pump_migration(now, metrics, eff);
        eff.retain(|e| match e {
            Effect::Wake { at } => {
                min_wake = Some(min_wake.map_or(*at, |cur| cur.min(*at)));
                false
            }
            _ => true,
        });
        if let Some(at) = min_wake {
            eff.push(Effect::Wake { at });
        }
    }
}

impl<A: Application> std::fmt::Debug for ServerCore<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCore")
            .field("partition", &self.partition)
            .field("mode", &self.mode)
            .field("owned_keys", &self.owned.len())
            .field("stored_vars", &self.store.len())
            .field("queue", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandKind;
    use dynastar_runtime::{NodeId, SimDuration};

    struct App;
    impl Application for App {
        type Op = i64; // op >= 0: add to every declared var; op < 0: pure read
        type Value = i64;
        type Reply = Vec<(VarId, i64)>;
        fn locality(var: VarId) -> LocKey {
            LocKey(var.0 / 10)
        }
        fn classify(op: &i64, vars: &[VarId]) -> AccessSets {
            if *op < 0 {
                AccessSets::read_only(vars)
            } else {
                AccessSets::write_all(vars)
            }
        }
        fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> Self::Reply {
            if *op < 0 {
                return vars.iter().map(|(&v, val)| (v, val.unwrap_or(0))).collect();
            }
            vars.iter_mut()
                .map(|(&v, val)| {
                    let next = val.unwrap_or(0) + op;
                    *val = Some(next);
                    (v, next)
                })
                .collect()
        }
    }

    fn server(p: u32, keys: &[u64], vars: &[(u64, i64)]) -> ServerCore<App> {
        let mut s = ServerCore::new(PartitionId(p), Mode::Dynastar, ServerConfig::default());
        s.preload(keys.iter().map(|&k| LocKey(k)), vars.iter().map(|&(v, x)| (VarId(v), x)));
        s
    }

    fn access_payload(seq: u32, vars: &[(u64, u32)], target: u32, attempt: u32) -> Payload<App> {
        let expected: Vec<(VarId, PartitionId)> =
            vars.iter().map(|&(v, p)| (VarId(v), PartitionId(p))).collect();
        Payload::Access {
            cmd: Command {
                id: MsgId::new(42, seq),
                client: NodeId::from_raw(99),
                kind: CommandKind::Access {
                    op: 1,
                    vars: vars.iter().map(|&(v, _)| VarId(v)).collect(),
                },
            },
            attempt,
            expected,
            target: PartitionId(target),
            keep: false,
        }
    }

    fn now() -> SimTime {
        SimTime::from_millis(5)
    }

    /// Extracts the Reply effect, if any.
    fn reply_of(eff: &[Effect<App>]) -> Option<Vec<(VarId, i64)>> {
        eff.iter().find_map(|e| match e {
            Effect::Send { msg: Direct::Reply { reply, .. }, .. } => Some(reply.clone()),
            _ => None,
        })
    }

    #[test]
    fn single_partition_access_executes_immediately() {
        let mut s = server(0, &[0], &[(0, 10)]);
        let mut m = Metrics::new();
        let eff = s.on_deliver(access_payload(0, &[(0, 0)], 0, 0), now(), &mut m);
        assert_eq!(reply_of(&eff), Some(vec![(VarId(0), 11)]));
        assert_eq!(s.value_of(VarId(0)), Some(&11));
        assert_eq!(m.counter(mn::CMD_SINGLE), 1);
    }

    #[test]
    fn borrow_execute_return_roundtrip() {
        // Partition 0 is target and owns var 0; partition 1 lends var 10.
        let mut target = server(0, &[0], &[(0, 100)]);
        let mut lender = server(1, &[1], &[(10, 200)]);
        let mut m = Metrics::new();
        let payload = access_payload(0, &[(0, 0), (10, 1)], 0, 0);

        // Target delivers first: it must wait for the lender's vars.
        let eff_t = target.on_deliver(payload.clone(), now(), &mut m);
        assert!(reply_of(&eff_t).is_none());
        assert_eq!(target.queue_len(), 1);

        // Lender delivers: ships its vars and blocks awaiting return.
        let eff_l = lender.on_deliver(payload, now(), &mut m);
        let ship = eff_l
            .iter()
            .find_map(|e| match e {
                Effect::Send {
                    to: Destination::Partition(p),
                    msg: m2 @ Direct::VarsForCmd { .. },
                } => Some((*p, m2.clone())),
                _ => None,
            })
            .expect("lender ships vars");
        assert_eq!(ship.0, PartitionId(0));
        assert_eq!(lender.value_of(VarId(10)), None, "value left the lender");
        assert_eq!(lender.queue_len(), 1, "lender blocks until return");

        // Target receives the vars → executes → replies and returns.
        let eff_t = target.on_direct(ship.1, now(), &mut m);
        assert_eq!(reply_of(&eff_t), Some(vec![(VarId(0), 101), (VarId(10), 201)]));
        let ret = eff_t
            .iter()
            .find_map(|e| match e {
                Effect::Send {
                    to: Destination::Partition(p),
                    msg: m2 @ Direct::VarsReturn { .. },
                } => Some((*p, m2.clone())),
                _ => None,
            })
            .expect("vars returned");
        assert_eq!(ret.0, PartitionId(1));
        assert_eq!(target.value_of(VarId(10)), None, "borrowed value not kept");

        // Lender stores the updated value and unblocks.
        let _ = lender.on_direct(ret.1, now(), &mut m);
        assert_eq!(lender.value_of(VarId(10)), Some(&201));
        assert_eq!(lender.queue_len(), 0);
    }

    #[test]
    fn stale_routing_at_non_target_aborts_and_retries() {
        // Partition 1 no longer owns key 1 (expected var 10): Retry+Abort.
        let mut s = server(1, &[], &[]);
        let mut m = Metrics::new();
        let eff = s.on_deliver(access_payload(0, &[(0, 0), (10, 1)], 0, 0), now(), &mut m);
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Send { to: Destination::Client(_), msg: Direct::Retry { .. } }
        )));
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Send { to: Destination::Partition(PartitionId(0)), msg: Direct::Abort { .. } }
        )));
        assert_eq!(s.queue_len(), 0, "stale command must not block the queue");
    }

    #[test]
    fn stale_routing_at_target_bounces_received_vars() {
        // Target does not own its expected key; a lender already shipped.
        let mut s = server(0, &[], &[]);
        let mut m = Metrics::new();
        let _ = s.on_direct(
            Direct::VarsForCmd {
                cmd: MsgId::new(42, 0),
                attempt: 0,
                from: PartitionId(1),
                vars: vec![(VarId(10), Some(5))],
            },
            now(),
            &mut m,
        );
        let eff = s.on_deliver(access_payload(0, &[(0, 0), (10, 1)], 0, 0), now(), &mut m);
        let bounced = eff.iter().any(|e| {
            matches!(
                e,
                Effect::Send {
                    to: Destination::Partition(PartitionId(1)),
                    msg: Direct::VarsReturn { .. }
                }
            )
        });
        assert!(bounced, "lender's vars must bounce back on target-side abort");
    }

    #[test]
    fn duplicate_dispatch_answers_from_reply_cache() {
        let mut s = server(0, &[0], &[(0, 0)]);
        let mut m = Metrics::new();
        let eff1 = s.on_deliver(access_payload(3, &[(0, 0)], 0, 0), now(), &mut m);
        assert_eq!(reply_of(&eff1), Some(vec![(VarId(0), 1)]));
        // Same command id re-dispatched (attempt 1): no re-execution.
        let eff2 = s.on_deliver(access_payload(3, &[(0, 0)], 0, 1), now(), &mut m);
        assert_eq!(reply_of(&eff2), Some(vec![(VarId(0), 1)]), "cached reply");
        assert_eq!(s.value_of(VarId(0)), Some(&1), "no double execution");
    }

    #[test]
    fn plan_migrates_key_out_and_in() {
        let mut from = server(0, &[0], &[(0, 7), (1, 8)]);
        let mut to = server(1, &[], &[]);
        let mut m = Metrics::new();
        let plan =
            Payload::Plan { version: 1, moves: vec![(LocKey(0), PartitionId(0), PartitionId(1))] };
        let eff = from.on_deliver(plan.clone(), now(), &mut m);
        assert!(!from.owns(LocKey(0)));
        assert_eq!(from.value_of(VarId(0)), None);
        let ship = eff
            .iter()
            .find_map(|e| match e {
                Effect::Send { msg: m2 @ Direct::PlanVars { .. }, .. } => Some(m2.clone()),
                _ => None,
            })
            .expect("primary shipment");
        let _ = to.on_deliver(plan, now(), &mut m);
        assert!(to.owns(LocKey(0)));
        let _ = to.on_direct(ship, now(), &mut m);
        assert_eq!(to.value_of(VarId(0)), Some(&7));
        assert_eq!(to.value_of(VarId(1)), Some(&8));
    }

    #[test]
    fn early_planvars_is_buffered_until_plan_applies() {
        let mut to = server(1, &[], &[]);
        let mut m = Metrics::new();
        // Shipment for plan v1 arrives before the plan itself.
        let _ = to.on_direct(
            Direct::PlanVars {
                version: 1,
                key: LocKey(0),
                from: PartitionId(0),
                vars: vec![(VarId(0), Some(7))],
                pending: vec![],
                primary: true,
            },
            now(),
            &mut m,
        );
        assert_eq!(to.value_of(VarId(0)), None, "must not apply before ownership");
        let _ = to.on_deliver(
            Payload::Plan { version: 1, moves: vec![(LocKey(0), PartitionId(0), PartitionId(1))] },
            now(),
            &mut m,
        );
        assert_eq!(to.value_of(VarId(0)), Some(&7), "buffered shipment applied");
        assert!(to.owns(LocKey(0)));
    }

    #[test]
    fn command_waits_for_inflight_migration() {
        let mut s = server(1, &[], &[]);
        let mut m = Metrics::new();
        // Plan makes us owner of key 0; data still in flight.
        let _ = s.on_deliver(
            Payload::Plan { version: 1, moves: vec![(LocKey(0), PartitionId(0), PartitionId(1))] },
            now(),
            &mut m,
        );
        let eff = s.on_deliver(access_payload(0, &[(0, 1)], 1, 0), now(), &mut m);
        assert!(reply_of(&eff).is_none(), "must wait for PlanVars");
        assert_eq!(s.queue_len(), 1);
        // Data arrives → the queued command executes.
        let eff = s.on_direct(
            Direct::PlanVars {
                version: 1,
                key: LocKey(0),
                from: PartitionId(0),
                vars: vec![(VarId(0), Some(5))],
                pending: vec![],
                primary: true,
            },
            now(),
            &mut m,
        );
        assert_eq!(reply_of(&eff), Some(vec![(VarId(0), 6)]));
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn create_waits_for_oracle_signal() {
        let mut s = server(0, &[], &[]);
        let mut m = Metrics::new();
        let cmd = Command::<App> {
            id: MsgId::new(5, 0),
            client: NodeId::from_raw(9),
            kind: CommandKind::CreateKey { key: LocKey(4), vars: vec![(VarId(40), 1)] },
        };
        let eff = s.on_deliver(
            Payload::CreateKey { cmd: cmd.clone(), dest: PartitionId(0) },
            now(),
            &mut m,
        );
        // Signals the oracle, but does not install yet.
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Send { to: Destination::Oracle, msg: Direct::Signal { .. } }
        )));
        assert!(!s.owns(LocKey(4)));
        // Oracle's signal arrives → install + ack.
        let eff = s.on_direct(Direct::Signal { cmd: cmd.id, from_partition: None }, now(), &mut m);
        assert!(s.owns(LocKey(4)));
        assert_eq!(s.value_of(VarId(40)), Some(&1));
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Send { to: Destination::Client(_), msg: Direct::Ack { .. } }
        )));
    }

    #[test]
    fn dssmr_keep_transfers_ownership() {
        let mut lender =
            ServerCore::<App>::new(PartitionId(1), Mode::DsSmr, ServerConfig::default());
        lender.preload([LocKey(1)], [(VarId(10), 50)]);
        let mut target =
            ServerCore::<App>::new(PartitionId(0), Mode::DsSmr, ServerConfig::default());
        target.preload([LocKey(0)], [(VarId(0), 1)]);
        let mut m = Metrics::new();
        let payload = Payload::Access {
            cmd: Command {
                id: MsgId::new(8, 0),
                client: NodeId::from_raw(9),
                kind: CommandKind::Access { op: 1, vars: vec![VarId(0), VarId(10)] },
            },
            attempt: 0,
            expected: vec![(VarId(0), PartitionId(0)), (VarId(10), PartitionId(1))],
            target: PartitionId(0),
            keep: true,
        };
        let eff_l = lender.on_deliver(payload.clone(), now(), &mut m);
        assert_eq!(lender.queue_len(), 0, "keep-mode lender does not block");
        assert!(!lender.owns(LocKey(1)), "ownership transferred away");
        let ship = eff_l
            .iter()
            .find_map(|e| match e {
                Effect::Send { msg: m2 @ Direct::VarsForCmd { .. }, .. } => Some(m2.clone()),
                _ => None,
            })
            .expect("vars shipped");
        let _ = target.on_deliver(payload, now(), &mut m);
        let eff_t = target.on_direct(ship, now(), &mut m);
        assert!(reply_of(&eff_t).is_some());
        assert!(target.owns(LocKey(1)), "target keeps the key");
        assert_eq!(target.value_of(VarId(10)), Some(&51));
    }

    #[test]
    fn ssmr_exchange_and_execute_everywhere() {
        let mk = |p: u32, keys: &[u64], vars: &[(u64, i64)]| {
            let mut s = ServerCore::<App>::new(PartitionId(p), Mode::SSmr, ServerConfig::default());
            s.preload(keys.iter().map(|&k| LocKey(k)), vars.iter().map(|&(v, x)| (VarId(v), x)));
            s
        };
        let mut a = mk(0, &[0], &[(0, 1)]);
        let mut b = mk(1, &[1], &[(10, 2)]);
        let mut m = Metrics::new();
        let payload = access_payload(0, &[(0, 0), (10, 1)], 0, 0);
        let eff_a = a.on_deliver(payload.clone(), now(), &mut m);
        let eff_b = b.on_deliver(payload, now(), &mut m);
        let ex_a = eff_a
            .iter()
            .find_map(|e| match e {
                Effect::Send { msg: m2 @ Direct::SsmrExchange { .. }, .. } => Some(m2.clone()),
                _ => None,
            })
            .expect("a exchanges");
        let ex_b = eff_b
            .iter()
            .find_map(|e| match e {
                Effect::Send { msg: m2 @ Direct::SsmrExchange { .. }, .. } => Some(m2.clone()),
                _ => None,
            })
            .expect("b exchanges");
        // Feed each the other's share: both execute; only partition 0
        // (lowest id) replies.
        let eff_a = a.on_direct(ex_b, now(), &mut m);
        let eff_b = b.on_direct(ex_a, now(), &mut m);
        assert!(reply_of(&eff_a).is_some(), "lowest-id partition replies");
        assert!(reply_of(&eff_b).is_none());
        // Each kept only its own variable's update.
        assert_eq!(a.value_of(VarId(0)), Some(&2));
        assert_eq!(a.value_of(VarId(10)), None);
        assert_eq!(b.value_of(VarId(10)), Some(&3));
    }

    // ---- staged migration -------------------------------------------------

    fn staged_config(max_retries: u32) -> ServerConfig {
        ServerConfig {
            staged_migration: true,
            migration_chunk_vars: 1,
            migration_chunk_timeout: SimDuration::from_millis(200),
            migration_max_retries: max_retries,
            record_metrics: true,
            ..ServerConfig::default()
        }
    }

    fn staged_server(
        p: u32,
        keys: &[u64],
        vars: &[(u64, i64)],
        cfg: ServerConfig,
    ) -> ServerCore<App> {
        let mut s = ServerCore::new(PartitionId(p), Mode::Dynastar, cfg);
        s.preload(keys.iter().map(|&k| LocKey(k)), vars.iter().map(|&(v, x)| (VarId(v), x)));
        s
    }

    fn chunk_of(eff: &[Effect<App>]) -> Option<Direct<App>> {
        eff.iter().find_map(|e| match e {
            Effect::Send { msg: m2 @ Direct::PlanVarsChunk { .. }, .. } => Some(m2.clone()),
            _ => None,
        })
    }

    fn ack_of(eff: &[Effect<App>]) -> Option<Direct<App>> {
        eff.iter().find_map(|e| match e {
            Effect::Send { msg: m2 @ Direct::PlanVarsAck { .. }, .. } => Some(m2.clone()),
            _ => None,
        })
    }

    fn done_of(eff: &[Effect<App>]) -> Option<Payload<App>> {
        eff.iter().find_map(|e| match e {
            Effect::Multicast { payload: p @ Payload::MigrationDone { .. }, .. } => Some(p.clone()),
            _ => None,
        })
    }

    fn revert_of(eff: &[Effect<App>]) -> Option<Payload<App>> {
        eff.iter().find_map(|e| match e {
            Effect::Multicast { payload: p @ Payload::MigrationRevert { .. }, .. } => {
                Some(p.clone())
            }
            _ => None,
        })
    }

    const PLAN_V1: u64 = 1;

    fn move_plan() -> Payload<App> {
        Payload::Plan { version: PLAN_V1, moves: vec![(LocKey(0), PartitionId(0), PartitionId(1))] }
    }

    #[test]
    fn staged_migration_chunked_roundtrip_installs_at_done() {
        let mut src = staged_server(0, &[0], &[(0, 7), (1, 8), (2, 9)], staged_config(5));
        let mut dst = staged_server(1, &[], &[], staged_config(5));
        let mut m = Metrics::new();

        let eff = src.on_deliver(move_plan(), now(), &mut m);
        assert!(!src.owns(LocKey(0)));
        assert_eq!(src.value_of(VarId(0)), None, "staged vars leave the source store");
        let mut chunk = chunk_of(&eff).expect("first chunk ships from the migration pump");
        let _ = dst.on_deliver(move_plan(), now(), &mut m);
        assert!(dst.owns(LocKey(0)));

        // A command for the moving key queues behind the staged transfer.
        let eff = dst.on_deliver(access_payload(0, &[(0, 1)], 1, 0), now(), &mut m);
        assert!(reply_of(&eff).is_none());
        assert_eq!(dst.queue_len(), 1);

        // One chunk in flight at a time: ack each to release the next.
        let mut done = None;
        for round in 0..3 {
            let eff_d = dst.on_direct(chunk.clone(), now(), &mut m);
            let ack = ack_of(&eff_d).expect("destination acks every chunk");
            if let Some(d) = done_of(&eff_d) {
                done = Some(d);
            }
            let eff_s = src.on_direct(ack, now(), &mut m);
            match chunk_of(&eff_s) {
                Some(next) => chunk = next,
                None => assert_eq!(round, 2, "a next chunk ships until all three are acked"),
            }
        }
        let done = done.expect("destination requests commit once chunks are complete");

        // Nothing installs before the totally-ordered Done delivery.
        assert_eq!(dst.value_of(VarId(0)), None);
        let eff = dst.on_deliver(done.clone(), now(), &mut m);
        // The install lands and the queued command executes on top of it in
        // the same delivery: 7 + 1.
        assert_eq!(reply_of(&eff), Some(vec![(VarId(0), 8)]));
        assert_eq!(dst.value_of(VarId(0)), Some(&8));
        assert_eq!(dst.value_of(VarId(1)), Some(&8));
        assert_eq!(dst.value_of(VarId(2)), Some(&9));
        assert_eq!(dst.queue_len(), 0);

        // The source dismantles its outbox: no further pump activity.
        let _ = src.on_deliver(done, now(), &mut m);
        let eff = src.on_wake(SimTime::from_secs(10), &mut m);
        assert!(chunk_of(&eff).is_none() && revert_of(&eff).is_none());
        assert_eq!(m.counter(mn::MIGRATION_KEYS_STAGED), 1);
        assert!(m.counter(mn::MIGRATION_CHUNKS_SENT) >= 3);
    }

    #[test]
    fn staged_migration_retransmits_unacked_chunk() {
        let mut src = staged_server(0, &[0], &[(0, 7), (1, 8)], staged_config(5));
        let mut m = Metrics::new();
        let eff = src.on_deliver(move_plan(), now(), &mut m);
        assert!(chunk_of(&eff).is_some());

        // No ack by the deadline (now + 200 ms backoff): retransmit.
        let eff = src.on_wake(now() + SimDuration::from_millis(300), &mut m);
        assert!(chunk_of(&eff).is_some(), "timed-out chunk is resent");
        assert_eq!(m.counter(mn::MIGRATION_CHUNK_RETRIES), 1);

        // The ack lands late: accepted, and the next chunk ships.
        let eff = src.on_direct(
            Direct::PlanVarsAck { version: PLAN_V1, key: LocKey(0), chunk: 0 },
            now() + SimDuration::from_millis(400),
            &mut m,
        );
        let next = chunk_of(&eff).expect("next chunk after late ack");
        let Direct::PlanVarsChunk { chunk, total, .. } = next else { unreachable!() };
        assert_eq!((chunk, total), (1, 2));
    }

    #[test]
    fn staged_migration_reverts_after_exhausted_retries() {
        let mut src = staged_server(0, &[0], &[(0, 7)], staged_config(1));
        let mut dst = staged_server(1, &[], &[], staged_config(1));
        let mut m = Metrics::new();
        let eff = src.on_deliver(move_plan(), now(), &mut m);
        let chunk = chunk_of(&eff).expect("chunk ships");
        let _ = dst.on_deliver(move_plan(), now(), &mut m);
        // The chunk reaches the destination, but every ack is "lost".
        let _ = dst.on_direct(chunk, now(), &mut m);

        // First deadline miss: one retry (max_retries = 1).
        let t1 = now() + SimDuration::from_millis(300);
        let eff = src.on_wake(t1, &mut m);
        assert!(chunk_of(&eff).is_some());
        assert!(revert_of(&eff).is_none());
        // Second miss: retries exhausted → give up and request the revert.
        let t2 = t1 + SimDuration::from_secs(2);
        let eff = src.on_wake(t2, &mut m);
        let revert = revert_of(&eff).expect("revert multicast after giving up");

        // Totally-ordered revert delivery restores the source...
        let _ = src.on_deliver(revert.clone(), t2, &mut m);
        assert!(src.owns(LocKey(0)), "source reclaims the key");
        assert_eq!(src.value_of(VarId(0)), Some(&7), "retained chunk data reinstalled");
        assert_eq!(m.counter(mn::MIGRATION_REVERTS), 1);

        // ...and un-owns the destination, so queued commands turn into
        // stale-routing retries instead of waiting forever.
        let _ = dst.on_deliver(revert, t2, &mut m);
        assert!(!dst.owns(LocKey(0)));
        let eff = dst.on_deliver(access_payload(0, &[(0, 1)], 1, 0), t2, &mut m);
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Send { to: Destination::Client(_), msg: Direct::Retry { .. } }
        )));

        // A Done for the same migration arriving after the revert settled
        // must not resurrect it at the destination.
        let done = Payload::MigrationDone {
            version: PLAN_V1,
            key: LocKey(0),
            from: PartitionId(0),
            to: PartitionId(1),
        };
        let _ = dst.on_deliver(done, t2, &mut m);
        assert_eq!(dst.value_of(VarId(0)), None);
    }

    #[test]
    fn staged_migration_of_empty_key_still_commits() {
        let mut src = staged_server(0, &[0], &[], staged_config(5));
        let mut dst = staged_server(1, &[], &[], staged_config(5));
        let mut m = Metrics::new();
        let eff = src.on_deliver(move_plan(), now(), &mut m);
        let chunk = chunk_of(&eff).expect("an empty chunk still ships");
        let Direct::PlanVarsChunk { total, ref vars, .. } = chunk else { unreachable!() };
        assert_eq!((total, vars.len()), (1, 0));
        let _ = dst.on_deliver(move_plan(), now(), &mut m);
        let eff_d = dst.on_direct(chunk, now(), &mut m);
        assert!(ack_of(&eff_d).is_some());
        let done = done_of(&eff_d).expect("empty transfer reaches total and commits");
        let _ = dst.on_deliver(done, now(), &mut m);
        // The destination is authoritative: commands execute (creating the
        // variable on first write).
        let eff = dst.on_deliver(access_payload(0, &[(0, 1)], 1, 0), now(), &mut m);
        assert_eq!(reply_of(&eff), Some(vec![(VarId(0), 1)]));
    }

    #[test]
    fn duplicate_chunks_are_reacked_but_not_restaged() {
        let mut dst = staged_server(1, &[], &[], staged_config(5));
        let mut m = Metrics::new();
        let _ = dst.on_deliver(move_plan(), now(), &mut m);
        let chunk = Direct::PlanVarsChunk {
            version: PLAN_V1,
            key: LocKey(0),
            from: PartitionId(0),
            chunk: 0,
            total: 2,
            vars: vec![(VarId(0), Some(7))],
        };
        let eff1 = dst.on_direct(chunk.clone(), now(), &mut m);
        assert!(ack_of(&eff1).is_some());
        assert!(done_of(&eff1).is_none(), "1 of 2 chunks is not complete");
        // A retransmitted duplicate is acked again (the first ack may have
        // been lost) without double-counting toward completion.
        let eff2 = dst.on_direct(chunk, now(), &mut m);
        assert!(ack_of(&eff2).is_some());
        assert!(done_of(&eff2).is_none());
    }

    #[test]
    fn done_outrunning_queued_plan_retains_staged_vars() {
        // Regression: a busy destination CPU leaves the plan sitting in
        // the command queue while the (later-ordered) Done applies at
        // delivery. The staged vars must survive until the plan pump
        // makes this replica the owner — dropping them would leave the
        // key owned-but-empty, with every command for it waiting forever.
        let cfg = ServerConfig {
            exec: ExecConfig::serial(SimDuration::from_millis(10)),
            ..staged_config(5)
        };
        let mut dst = staged_server(1, &[1], &[(10, 0)], cfg);
        let mut m = Metrics::new();
        let t0 = now();
        // An unrelated command occupies the modelled CPU...
        let eff = dst.on_deliver(access_payload(0, &[(10, 1)], 1, 0), t0, &mut m);
        assert!(reply_of(&eff).is_some());
        // ...so the move plan delivered next stays queued, unpumped.
        let _ = dst.on_deliver(move_plan(), t0, &mut m);
        assert!(!dst.owns(LocKey(0)));
        // The staged transfer still completes around it: chunks travel
        // outside the total order, and the Done applies at delivery.
        let chunk = Direct::PlanVarsChunk {
            version: PLAN_V1,
            key: LocKey(0),
            from: PartitionId(0),
            chunk: 0,
            total: 1,
            vars: vec![(VarId(0), Some(7))],
        };
        let _ = dst.on_direct(chunk, t0, &mut m);
        let done = Payload::MigrationDone {
            version: PLAN_V1,
            key: LocKey(0),
            from: PartitionId(0),
            to: PartitionId(1),
        };
        let _ = dst.on_deliver(done, t0, &mut m);
        // Nothing installs while the plan is still queued.
        assert_eq!(dst.value_of(VarId(0)), None);
        // The CPU frees up: the plan pumps and the retained staging
        // entry resolves in the same wake.
        let _ = dst.on_wake(t0 + SimDuration::from_millis(10), &mut m);
        assert!(dst.owns(LocKey(0)));
        assert_eq!(dst.value_of(VarId(0)), Some(&7), "staged vars install once the plan lands");
        // The key is fully authoritative: commands execute immediately.
        let eff = dst.on_deliver(
            access_payload(1, &[(0, 1)], 1, 0),
            t0 + SimDuration::from_millis(20),
            &mut m,
        );
        assert_eq!(reply_of(&eff), Some(vec![(VarId(0), 8)]));
    }

    /// Runs one full staged migration of key 0 between `src` and `dst` at
    /// `version` (plan → chunk → ack → totally-ordered Done on both).
    fn migrate_key0(
        version: u64,
        src: &mut ServerCore<App>,
        dst: &mut ServerCore<App>,
        m: &mut Metrics,
    ) {
        let plan =
            Payload::Plan { version, moves: vec![(LocKey(0), src.partition(), dst.partition())] };
        let eff = src.on_deliver(plan.clone(), now(), m);
        let chunk = chunk_of(&eff).expect("chunk ships");
        let _ = dst.on_deliver(plan, now(), m);
        let eff_d = dst.on_direct(chunk, now(), m);
        let ack = ack_of(&eff_d).expect("destination acks");
        let done = done_of(&eff_d).expect("single-chunk transfer completes");
        let _ = src.on_direct(ack, now(), m);
        let _ = src.on_deliver(done.clone(), now(), m);
        let _ = dst.on_deliver(done, now(), m);
    }

    #[test]
    fn straggling_revert_never_flips_ownership_however_late() {
        // Regression for the bounded-memory amnesia bug: the old
        // first-decision-wins set forgot a migration's Done once enough
        // later decisions rotated it out, so a duplicate MigrationRevert
        // straggling in long after (a give-up retransmission that lost
        // its race) was mistaken for a fresh decision and flipped
        // ownership back. The plan history's monotone floor answers
        // default-deny for any version at or below it, no matter how
        // many records have been folded away since.
        let mut a = staged_server(0, &[0], &[(0, 7)], staged_config(5));
        let mut b = staged_server(1, &[], &[], staged_config(5));
        let mut m = Metrics::new();

        // v1 moves key 0 from partition 0 to partition 1 and commits.
        migrate_key0(1, &mut a, &mut b, &mut m);
        assert!(!a.owns(LocKey(0)) && b.owns(LocKey(0)));

        // Bounce the key back and forth through far more committed
        // decisions than the per-key history retains verbatim.
        for v in 2..=24u64 {
            if v % 2 == 0 {
                migrate_key0(v, &mut b, &mut a, &mut m);
            } else {
                migrate_key0(v, &mut a, &mut b, &mut m);
            }
        }
        assert!(a.owns(LocKey(0)) && !b.owns(LocKey(0)), "v24 parked the key at partition 0");
        assert_eq!(a.value_of(VarId(0)), Some(&7), "value survives the round trips");

        // The straggler: a duplicate revert of the long-settled v1.
        let revert = Payload::MigrationRevert {
            version: 1,
            key: LocKey(0),
            from: PartitionId(0),
            to: PartitionId(1),
        };
        let _ = a.on_deliver(revert.clone(), now(), &mut m);
        let _ = b.on_deliver(revert, now(), &mut m);
        assert!(a.owns(LocKey(0)) && !b.owns(LocKey(0)), "stale revert must not flip ownership");
        assert_eq!(a.value_of(VarId(0)), Some(&7));
        assert_eq!(m.counter(mn::MIGRATION_REVERTS), 0, "no revert was ever applied");
    }

    #[test]
    fn done_outrunning_every_chunk_still_installs_and_acks_strays() {
        // A MigrationDone (submitted by a faster peer replica of the
        // destination group) can be delivered before any chunk reaches
        // this replica over the direct channel. The staging entry must
        // wait for the late chunk, install on its arrival, and from then
        // on treat retransmitted duplicates as ack-only strays — the ack
        // is what terminates the sender's retransmit loop, and a stray
        // must never resurrect a dismantled staging entry.
        let mut src = staged_server(0, &[0], &[(0, 7)], staged_config(5));
        let mut dst = staged_server(1, &[], &[], staged_config(5));
        let mut m = Metrics::new();

        let eff = src.on_deliver(move_plan(), now(), &mut m);
        let chunk = chunk_of(&eff).expect("chunk ships");
        let _ = dst.on_deliver(move_plan(), now(), &mut m);

        // The Done lands first; nothing can install yet.
        let done = Payload::MigrationDone {
            version: PLAN_V1,
            key: LocKey(0),
            from: PartitionId(0),
            to: PartitionId(1),
        };
        let _ = dst.on_deliver(done.clone(), now(), &mut m);
        assert_eq!(dst.value_of(VarId(0)), None, "no chunk, nothing to install");

        // The source's Done delivery dismantles its outbox even though no
        // ack ever arrived: the retransmit ladder must fall silent.
        let _ = src.on_deliver(done, now(), &mut m);
        let eff = src.on_wake(now() + SimDuration::from_secs(30), &mut m);
        assert!(
            chunk_of(&eff).is_none() && revert_of(&eff).is_none(),
            "no retransmission or give-up after the Done settled"
        );

        // The chunk finally arrives: acked, and the staged value installs.
        let eff = dst.on_direct(chunk.clone(), now(), &mut m);
        assert!(ack_of(&eff).is_some());
        assert_eq!(dst.value_of(VarId(0)), Some(&7), "late chunk completes the install");

        // A retransmitted duplicate is now a stray: ack it (the sender
        // may still be waiting) but change nothing.
        let eff = dst.on_direct(chunk, now(), &mut m);
        assert!(ack_of(&eff).is_some(), "strays are re-acked to stop the sender");
        assert!(done_of(&eff).is_none(), "a stray must not re-request the commit");
        assert_eq!(dst.value_of(VarId(0)), Some(&7));

        // The stray's ack reaching a dismantled outbox is a no-op.
        let eff = src.on_direct(
            Direct::PlanVarsAck { version: PLAN_V1, key: LocKey(0), chunk: 0 },
            now(),
            &mut m,
        );
        assert!(chunk_of(&eff).is_none());
    }

    /// Drives one `ServerCore` through a fixed delivered sequence of mixed
    /// read/write commands, processing `Wake` effects at their due times.
    /// Returns `(replies in emission order, final store)` — the two things
    /// the worker-pool width must never change.
    type MixedOutcome = (Vec<(u32, Vec<(VarId, i64)>)>, Vec<(u64, i64)>);

    fn run_mixed_stream(workers: u32) -> MixedOutcome {
        use rand::{Rng, SeedableRng};
        use std::collections::BTreeSet;

        const VARS: u64 = 40;
        const CMDS: u32 = 400;

        let mut s = ServerCore::new(
            PartitionId(0),
            Mode::Dynastar,
            ServerConfig {
                exec: ExecConfig::pool(workers, SimDuration::from_micros(100)),
                ..ServerConfig::default()
            },
        );
        s.preload((0..4).map(LocKey), (0..VARS).map(|v| (VarId(v), 0i64)));
        let mut m = Metrics::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15C);
        let mut wakes: BTreeSet<SimTime> = BTreeSet::new();
        let mut replies: Vec<(u32, Vec<(VarId, i64)>)> = Vec::new();

        fn collect(
            eff: Vec<Effect<App>>,
            wakes: &mut BTreeSet<SimTime>,
            replies: &mut Vec<(u32, Vec<(VarId, i64)>)>,
        ) {
            for e in eff {
                match e {
                    Effect::Wake { at } => {
                        wakes.insert(at);
                    }
                    Effect::Send { msg: Direct::Reply { cmd, reply, .. }, .. } => {
                        replies.push((cmd.seq, reply));
                    }
                    _ => {}
                }
            }
        }

        for seq in 0..CMDS {
            // Deliveries outpace the 100 us service time, so the queue
            // stays deep enough for wide pools to matter.
            let now = SimTime::from_micros(u64::from(seq) * 37);
            while let Some(&at) = wakes.iter().next() {
                if at > now {
                    break;
                }
                wakes.remove(&at);
                collect(s.on_wake(at, &mut m), &mut wakes, &mut replies);
            }
            // ~30% reads; writes add a small random amount. Var sets of
            // 1-3 random vars give a mix of conflicting and independent
            // commands.
            let op: i64 = if rng.gen_range(0..100) < 30 { -1 } else { rng.gen_range(1..5) };
            let n = rng.gen_range(1..=3usize);
            let mut vars: Vec<VarId> = Vec::new();
            while vars.len() < n {
                let v = VarId(rng.gen_range(0..VARS));
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            let expected: Vec<(VarId, PartitionId)> =
                vars.iter().map(|&v| (v, PartitionId(0))).collect();
            let payload = Payload::Access {
                cmd: Command {
                    id: MsgId::new(42, seq),
                    client: NodeId::from_raw(99),
                    kind: CommandKind::Access { op, vars },
                },
                attempt: 0,
                expected,
                target: PartitionId(0),
                keep: false,
            };
            collect(s.on_deliver(payload, now, &mut m), &mut wakes, &mut replies);
        }
        while let Some(&at) = wakes.iter().next() {
            wakes.remove(&at);
            collect(s.on_wake(at, &mut m), &mut wakes, &mut replies);
        }
        let store: Vec<(u64, i64)> =
            (0..VARS).map(|v| (v, *s.value_of(VarId(v)).expect("var present"))).collect();
        assert_eq!(replies.len(), CMDS as usize, "every delivered command must reply");
        if workers > 1 {
            assert!(
                m.counter(mn::EXEC_PARALLEL) > 0,
                "wide pools must actually overlap some commands"
            );
        }
        (replies, store)
    }

    /// The tentpole invariant: the worker pool is a *timing* model layered
    /// on a FIFO execution queue, so pool width must change neither one
    /// reply nor one stored value — only completion times. A seeded random
    /// stream of mixed reads/writes over overlapping var sets must come
    /// out bit-identical at every width.
    #[test]
    fn parallel_scheduler_preserves_replies_and_state_at_any_width() {
        let serial = run_mixed_stream(1);
        for workers in [2, 4, 8] {
            let wide = run_mixed_stream(workers);
            assert_eq!(
                serial.0, wide.0,
                "replies diverged between serial and {workers}-worker execution"
            );
            assert_eq!(
                serial.1, wide.1,
                "final state diverged between serial and {workers}-worker execution"
            );
        }
    }
}
