//! Linearizability of full-cluster executions (the paper's §2.3
//! correctness criterion), checked with the Wing–Gong checker over
//! histories recorded from concurrent simulated clients.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar_core::linearizability::{check, OpRecord, Spec};
use dynastar_core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, LocKey, Mode, PartitionId,
    VarId, Workload,
};
use dynastar_runtime::{NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Add-and-report counters (same app as the sequential spec below).
struct Counters;

impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = Vec<(VarId, i64)>;

    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }

    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> Self::Reply {
        vars.iter_mut()
            .map(|(&v, val)| {
                let next = val.unwrap_or(0) + op;
                *val = Some(next);
                (v, next)
            })
            .collect()
    }
}

/// Sequential specification for the checker.
struct CounterSpec;

impl Spec for CounterSpec {
    type State = BTreeMap<u64, i64>;
    type Op = Vec<u64>; // vars incremented by 1
    type Ret = Vec<(u64, i64)>;

    fn apply(state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        let mut next = state.clone();
        let mut ret = Vec::new();
        let mut sorted = op.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for v in sorted {
            let val = next.get(&v).copied().unwrap_or(0) + 1;
            next.insert(v, val);
            ret.push((v, val));
        }
        (next, ret)
    }
}

type Records = Vec<OpRecord<Vec<u64>, Vec<(u64, i64)>>>;
type History = Arc<Mutex<Records>>;

/// Random increments over a small var set, recording an op history.
struct Recorder {
    vars: u64,
    remaining: u32,
    multi_pct: u32,
    history: History,
    issued_at: SimTime,
}

impl Workload<Counters> for Recorder {
    fn next_command(&mut self, now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.issued_at = now;
        let a = rng.gen_range(0..self.vars);
        let mut vars = vec![VarId(a)];
        if rng.gen_range(0..100u32) < self.multi_pct {
            let b = rng.gen_range(0..self.vars);
            if b != a {
                vars.push(VarId(b));
            }
        }
        Some(CommandKind::Access { op: 1, vars })
    }

    fn on_completed(
        &mut self,
        now: SimTime,
        cmd: &Command<Counters>,
        reply: Option<&Vec<(VarId, i64)>>,
    ) {
        let Some(reply) = reply else { return };
        let CommandKind::Access { vars, .. } = &cmd.kind else { return };
        self.history.lock().unwrap().push(OpRecord {
            invoke: self.issued_at,
            response: now,
            op: vars.iter().map(|v| v.0).collect(),
            ret: reply.iter().map(|&(v, n)| (v.0, n)).collect(),
        });
    }
}

fn run_history(
    seed: u64,
    clients: usize,
    cmds_per_client: u32,
    multi_pct: u32,
    repartition: bool,
    crash: bool,
) -> Records {
    const VARS: u64 = 6;
    let config = ClusterConfig {
        partitions: 2,
        replicas: 3,
        mode: Mode::Dynastar,
        seed,
        repartition_threshold: if repartition { 20 } else { u64::MAX },
        min_plan_interval: SimDuration::from_secs(1),
        server: dynastar_core::server::ServerConfig { hint_batch: 4, ..Default::default() },
        warm_client_caches: true,
        client_timeout: SimDuration::from_secs(3),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..VARS {
        b.place(LocKey(v), PartitionId((v % 2) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let history: History = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..clients {
        cluster.add_client(Recorder {
            vars: VARS,
            remaining: cmds_per_client,
            multi_pct,
            history: Arc::clone(&history),
            issued_at: SimTime::ZERO,
        });
    }
    if crash {
        // Crash one replica of partition 0 (its initial leader) mid-run.
        cluster.sim.schedule_crash(SimTime::from_millis(500), NodeId::from_raw(0));
    }
    cluster.run_for(SimDuration::from_secs(120));
    let recorded = history.lock().unwrap().clone();
    assert_eq!(
        recorded.len(),
        clients * cmds_per_client as usize,
        "not all commands completed (seed {seed})"
    );
    recorded
}

#[test]
fn single_partition_histories_are_linearizable() {
    for seed in 0..4 {
        let h = run_history(seed, 3, 4, 0, false, false);
        assert!(check::<CounterSpec>(&h, BTreeMap::new()), "seed {seed} not linearizable");
    }
}

#[test]
fn multi_partition_histories_are_linearizable() {
    for seed in 10..14 {
        let h = run_history(seed, 3, 4, 60, false, false);
        assert!(check::<CounterSpec>(&h, BTreeMap::new()), "seed {seed} not linearizable");
    }
}

#[test]
fn histories_across_repartitioning_are_linearizable() {
    for seed in 20..23 {
        let h = run_history(seed, 3, 5, 50, true, false);
        assert!(check::<CounterSpec>(&h, BTreeMap::new()), "seed {seed} not linearizable");
    }
}

#[test]
fn histories_across_leader_crash_are_linearizable() {
    for seed in 30..32 {
        let h = run_history(seed, 2, 5, 40, false, true);
        assert!(check::<CounterSpec>(&h, BTreeMap::new()), "seed {seed} not linearizable");
    }
}
