//! Chained migration under a mid-run link brownout: moves A→B→C where the
//! A→B transfer gives up and reverts while a later plan has already
//! chained the key onward — the plan-history replay path end to end.
//!
//! The scenario mirrors `fig9_migration_interference --scenario
//! chained_move` at test scale: three partitions with contiguous key
//! blocks, a hot spot that rotates between blocks every plan interval
//! (single-key commands, so the foreground never crosses the degraded
//! mesh), and a pure-delay brownout of every link between the
//! partition-0 and partition-1 replica groups, slower round trip than
//! the chunk retry ladder tolerates. Transfers crossing 0 ↔ 1 inside
//! the window exhaust their retries and revert even though their chunks
//! eventually land, so `MigrationDone` and `MigrationRevert` race in
//! the total order; plans keep landing meanwhile and chain the same hot
//! keys onward.
//!
//! Assertions: every replica of every group converges to a byte-identical
//! key→partition view, the union of the partition views equals the
//! oracle's map, no client-visible command error surfaces, and the whole
//! execution is deterministic (same seed → same delivered-command hash).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar_core::linearizability::{check, OpRecord, Spec};
use dynastar_core::metric_names as mn;
use dynastar_core::server::ServerConfig;
use dynastar_core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, LocKey, LocationView, Mode,
    PartitionId, VarId, Workload,
};
use dynastar_runtime::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Add-and-report counters, one variable per locality key.
struct Counters;

impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = i64;

    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }

    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
        let mut last = 0;
        for v in vars.values_mut() {
            last = v.unwrap_or(0) + op;
            *v = Some(last);
        }
        last
    }
}

const DOMAIN: u64 = 60;
const PARTITIONS: u32 = 3;
/// The hot block advances one partition-sized stride per period, so each
/// plan finds the keys the previous plan just placed hot somewhere else.
const ROT_PERIOD: SimDuration = SimDuration::from_secs(2);
const STRIDE: u64 = DOMAIN / PARTITIONS as u64;

/// Single-key commands against a rotating hot block: at any instant all
/// traffic lands on `STRIDE` consecutive keys, and the window slides by
/// `STRIDE` every [`ROT_PERIOD`]. Single keys keep every command
/// single-partition, so the blackout never blocks the foreground.
struct RotatingHot;

impl Workload<Counters> for RotatingHot {
    fn next_command(&mut self, now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        let offset = (now.as_micros() / ROT_PERIOD.as_micros()) * STRIDE % DOMAIN;
        let rank = (offset + rng.gen_range(0..STRIDE)) % DOMAIN;
        Some(CommandKind::Access { op: 1, vars: vec![VarId(rank)] })
    }
}

struct RunOutcome {
    views: Vec<Vec<Option<LocationView>>>,
    completed: u64,
    failed: u64,
    reverts: u64,
    chunk_retries: u64,
    released: u64,
}

fn run_chained(seed: u64, secs: u64, trace: bool) -> RunOutcome {
    run_chained_sharded(seed, secs, trace, 1)
}

fn run_chained_sharded(seed: u64, secs: u64, trace: bool, shards: u32) -> RunOutcome {
    let config = ClusterConfig {
        partitions: PARTITIONS,
        replicas: 3,
        mode: Mode::Dynastar,
        seed,
        repartition_threshold: 60,
        min_plan_interval: ROT_PERIOD,
        warm_client_caches: true,
        oracle_shards: shards,
        server: ServerConfig {
            staged_migration: true,
            migration_chunk_vars: 4,
            migration_var_bytes: 1024,
            migration_link_bytes_per_sec: 1024 * 1024,
            migration_chunk_timeout: SimDuration::from_millis(100),
            migration_max_retries: 3,
            migration_max_inflight_per_link: 2,
            hint_batch: 4,
            ..ServerConfig::default()
        },
        client_retry_backoff: SimDuration::from_millis(2),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..DOMAIN {
        b.place(LocKey(v), PartitionId((v / STRIDE) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    for _ in 0..3 {
        cluster.add_client(RotatingHot);
    }
    // Brownout of the partition-0 ↔ partition-1 mesh from 4 s to 12 s:
    // pure delay, zero loss. The 2 s one-way penalty means a chunk's ack
    // returns ~4 s after the send — far past the give-up point of the
    // retry ladder (~1.5 s at 100 ms timeout × 3 retries) — so sources
    // crossing the mesh mid-window exhaust their retries and multicast
    // `MigrationRevert`, while the destination (which still receives
    // every chunk, late but never lost) completes staging and multicasts
    // `MigrationDone`. Both race in the total order and the plan-history
    // replay settles whichever lands second as stale. Zero loss keeps
    // the atomic-multicast timestamp exchange (and thus both groups'
    // delivery pipelines) alive, merely slowed.
    let (ga, gb) = {
        let groups = cluster.groups();
        (groups[0].clone(), groups[1].clone())
    };
    let (brown_start, brown_end) = (SimTime::from_secs(4), SimTime::from_secs(12));
    for &x in &ga {
        for &y in &gb {
            for (from, to) in [(x, y), (y, x)] {
                cluster.sim.schedule_link_degrade(
                    brown_start,
                    from,
                    to,
                    SimDuration::from_secs(2),
                    0,
                );
                cluster.sim.schedule_link_repair(brown_end, from, to);
            }
        }
    }
    if trace {
        for s in 1..=secs {
            cluster.run_for(SimDuration::from_secs(1));
            let m = cluster.metrics();
            eprintln!(
                "t={s:>2}s plans={} staged={} sent={} rtx={} reverts={} defer={} rel={} done={} failed={}",
                m.counter(mn::PLANS_PUBLISHED),
                m.counter(mn::MIGRATION_KEYS_STAGED),
                m.counter(mn::MIGRATION_CHUNKS_SENT),
                m.counter(mn::MIGRATION_CHUNK_RETRIES),
                m.counter(mn::MIGRATION_REVERTS),
                m.counter(mn::MIGRATION_DEFERRED),
                m.counter(mn::MIGRATION_RELEASED),
                m.counter(mn::CMD_COMPLETED),
                m.counter(mn::CMD_FAILED),
            );
        }
    } else {
        cluster.run_for(SimDuration::from_secs(secs));
    }
    let m = cluster.metrics();
    RunOutcome {
        completed: m.counter(mn::CMD_COMPLETED),
        failed: m.counter(mn::CMD_FAILED),
        reverts: m.counter(mn::MIGRATION_REVERTS),
        chunk_retries: m.counter(mn::MIGRATION_CHUNK_RETRIES),
        released: m.counter(mn::MIGRATION_RELEASED),
        views: cluster.location_views(),
    }
}

#[test]
fn chained_moves_with_giveup_reverts_converge() {
    let out = run_chained(7, 20, std::env::var("CHAINED_TRACE").is_ok());
    assert!(out.completed > 0, "workload must make progress");
    assert_eq!(out.failed, 0, "blackout must never surface client-visible errors");
    assert!(out.chunk_retries > 0, "blackout must force chunk retries");
    assert!(out.reverts > 0, "blackout must force give-up reverts");
    assert!(out.released > 0, "the link scheduler must cycle slots");

    // Group convergence: within each group every live replica reports the
    // same key→partition view, byte for byte.
    let mut partition_union: BTreeMap<u64, u32> = BTreeMap::new();
    let oracle_group = out.views.len() - 1;
    for (gi, group) in out.views.iter().enumerate() {
        let views: Vec<&Vec<(u64, u32)>> = group.iter().filter_map(|v| v.as_ref()).collect();
        assert!(!views.is_empty(), "group {gi}: no live replica reported a view");
        for v in &views[1..] {
            assert_eq!(*v, views[0], "group {gi}: replicas diverge");
        }
        if gi != oracle_group {
            for &(k, p) in views[0] {
                assert_eq!(p, gi as u32, "group {gi} claims key {k} it does not own");
                let prev = partition_union.insert(k, p);
                assert_eq!(prev, None, "key {k} owned by two partitions");
            }
        }
    }
    // The union of what the partitions own is exactly the oracle's map.
    let oracle: BTreeMap<u64, u32> =
        out.views[oracle_group][0].as_ref().unwrap().iter().copied().collect();
    assert_eq!(partition_union, oracle, "partition ownership diverges from the oracle map");
}

/// The convergence invariant at four oracle shards, after plans and
/// racing migrations: every shard group converges internally, each shard
/// reports only keys its hash slice owns, the shard views are pairwise
/// disjoint, and their union is exactly the union of the partition views
/// — the sliced map is still the one authoritative map.
#[test]
fn sharded_views_union_to_authoritative_map() {
    const SHARDS: u32 = 4;
    let out = run_chained_sharded(7, 20, false, SHARDS);
    assert!(out.completed > 0, "workload must make progress");
    assert_eq!(out.failed, 0, "sharding must never surface client-visible errors");
    assert!(out.reverts > 0, "blackout must still force give-up reverts");

    let k = PARTITIONS as usize;
    assert_eq!(out.views.len(), k + SHARDS as usize, "one group per partition and per shard");

    let mut partition_union: BTreeMap<u64, u32> = BTreeMap::new();
    for (gi, group) in out.views[..k].iter().enumerate() {
        let views: Vec<&Vec<(u64, u32)>> = group.iter().filter_map(|v| v.as_ref()).collect();
        assert!(!views.is_empty(), "partition {gi}: no live replica reported a view");
        for v in &views[1..] {
            assert_eq!(*v, views[0], "partition {gi}: replicas diverge");
        }
        for &(key, p) in views[0] {
            assert_eq!(p, gi as u32, "partition {gi} claims key {key} it does not own");
            assert_eq!(partition_union.insert(key, p), None, "key {key} owned by two partitions");
        }
    }

    let mut shard_union: BTreeMap<u64, u32> = BTreeMap::new();
    for (si, group) in out.views[k..].iter().enumerate() {
        let views: Vec<&Vec<(u64, u32)>> = group.iter().filter_map(|v| v.as_ref()).collect();
        assert!(!views.is_empty(), "shard {si}: no live replica reported a view");
        for v in &views[1..] {
            assert_eq!(*v, views[0], "shard {si}: replicas diverge");
        }
        for &(key, p) in views[0] {
            assert_eq!(
                dynastar_core::shard_of(LocKey(key), SHARDS),
                si as u32,
                "key {key} reported by a shard that does not own its hash slice"
            );
            assert_eq!(shard_union.insert(key, p), None, "key {key} reported by two shards");
        }
    }
    assert_eq!(
        partition_union, shard_union,
        "union of shard slices diverges from partition ownership"
    );
}

#[test]
fn chained_runs_are_deterministic() {
    let a = run_chained(7, 20, false);
    let b = run_chained(7, 20, false);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.reverts, b.reverts);
    assert_eq!(a.chunk_retries, b.chunk_retries);
    assert_eq!(a.views, b.views);
}

// ---------------------------------------------------------------------------
// Linearizability across the brownout (Wing–Gong over a paced history).
// ---------------------------------------------------------------------------

/// Sequential specification: each op increments one counter by 1 and
/// returns its new value.
struct ChainedSpec;

impl Spec for ChainedSpec {
    type State = BTreeMap<u64, i64>;
    type Op = u64;
    type Ret = i64;

    fn apply(state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        let mut next = state.clone();
        let val = next.get(op).copied().unwrap_or(0) + 1;
        next.insert(*op, val);
        (next, val)
    }
}

type Records = Vec<OpRecord<u64, i64>>;
type History = Arc<Mutex<Records>>;

/// [`RotatingHot`] paced by think time, recording an op history: the
/// bounded command budget stretches across the whole run (and thus the
/// brownout window) instead of draining in the first milliseconds of a
/// closed loop.
struct PacedRecorder {
    remaining: u32,
    history: History,
    issued_at: SimTime,
}

impl Workload<Counters> for PacedRecorder {
    fn next_command(&mut self, now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.issued_at = now;
        RotatingHot.next_command(now, rng)
    }

    fn on_completed(&mut self, now: SimTime, cmd: &Command<Counters>, reply: Option<&i64>) {
        let Some(&reply) = reply else { return };
        let CommandKind::Access { vars, .. } = &cmd.kind else { return };
        self.history.lock().unwrap().push(OpRecord {
            invoke: self.issued_at,
            response: now,
            op: vars[0].0,
            ret: reply,
        });
    }

    fn think_time(&mut self, _now: SimTime, rng: &mut StdRng) -> SimDuration {
        if self.remaining == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis(300 + rng.gen_range(0..300u64))
        }
    }
}

#[test]
fn chained_histories_across_brownout_are_linearizable() {
    // 3 × 20 = 60 ops keeps the history under the checker's 64-op cap.
    const CLIENTS: usize = 3;
    const OPS: u32 = 20;
    let config = ClusterConfig {
        partitions: PARTITIONS,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: 11,
        // The paced history is the only load (~6 ops/s), so the plan
        // trigger must be far more sensitive than in the throughput runs.
        repartition_threshold: 12,
        min_plan_interval: ROT_PERIOD,
        warm_client_caches: true,
        server: ServerConfig {
            staged_migration: true,
            migration_chunk_vars: 4,
            migration_var_bytes: 1024,
            migration_link_bytes_per_sec: 1024 * 1024,
            migration_chunk_timeout: SimDuration::from_millis(100),
            migration_max_retries: 3,
            migration_max_inflight_per_link: 2,
            hint_batch: 1,
            ..ServerConfig::default()
        },
        client_timeout: SimDuration::from_secs(3),
        client_retry_backoff: SimDuration::from_millis(2),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..DOMAIN {
        b.place(LocKey(v), PartitionId((v / STRIDE) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let history: History = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..CLIENTS {
        cluster.add_client(PacedRecorder {
            remaining: OPS,
            history: Arc::clone(&history),
            issued_at: SimTime::ZERO,
        });
    }
    // Same brownout topology as the throughput run, shifted to cover the
    // middle of the slower paced timeline.
    let (ga, gb) = {
        let groups = cluster.groups();
        (groups[0].clone(), groups[1].clone())
    };
    for &x in &ga {
        for &y in &gb {
            for (from, to) in [(x, y), (y, x)] {
                cluster.sim.schedule_link_degrade(
                    SimTime::from_secs(4),
                    from,
                    to,
                    SimDuration::from_secs(2),
                    0,
                );
                cluster.sim.schedule_link_repair(SimTime::from_secs(12), from, to);
            }
        }
    }
    cluster.run_for(SimDuration::from_secs(60));
    assert!(
        cluster.metrics().counter(mn::PLANS_PUBLISHED) > 1,
        "the paced load must still trigger repartitioning"
    );
    assert_eq!(cluster.metrics().counter(mn::CMD_FAILED), 0);
    let recorded = history.lock().unwrap().clone();
    assert_eq!(recorded.len(), CLIENTS * OPS as usize, "every paced command must complete");
    assert!(check::<ChainedSpec>(&recorded, BTreeMap::new()), "history is not linearizable");
}
