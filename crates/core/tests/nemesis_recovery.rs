//! Crash-recovery under randomized fault injection.
//!
//! The seed tests cover crash-stop (a crashed replica stays down); these
//! cover the crash-recovery extensions: restarted replicas rebuild from a
//! quorum of peer snapshots, transport streams resynchronize across
//! incarnation epochs, abandoned frames heal with explicit gaps, and a
//! seeded nemesis run — crashes, restarts, disconnects, reconnects — keeps
//! every client history linearizable and is bit-for-bit reproducible.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar_core::linearizability::{check, OpRecord, Spec};
use dynastar_core::{
    metric_names, Application, BatchConfig, ClusterBuilder, ClusterConfig, Command, CommandKind,
    LocKey, Mode, PartitionId, VarId, Workload,
};
use dynastar_runtime::nemesis::{NemesisConfig, NemesisPlan};
use dynastar_runtime::{NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Add-and-report counters (same app as the seed linearizability tests).
struct Counters;

impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = Vec<(VarId, i64)>;

    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }

    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> Self::Reply {
        vars.iter_mut()
            .map(|(&v, val)| {
                let next = val.unwrap_or(0) + op;
                *val = Some(next);
                (v, next)
            })
            .collect()
    }
}

/// Sequential specification for the checker.
struct CounterSpec;

impl Spec for CounterSpec {
    type State = BTreeMap<u64, i64>;
    type Op = Vec<u64>; // vars incremented by 1
    type Ret = Vec<(u64, i64)>;

    fn apply(state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        let mut next = state.clone();
        let mut ret = Vec::new();
        let mut sorted = op.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for v in sorted {
            let val = next.get(&v).copied().unwrap_or(0) + 1;
            next.insert(v, val);
            ret.push((v, val));
        }
        (next, ret)
    }
}

type Records = Vec<OpRecord<Vec<u64>, Vec<(u64, i64)>>>;
type History = Arc<Mutex<Records>>;

/// Random increments over a small var set, recording an op history.
struct Recorder {
    vars: u64,
    remaining: u32,
    multi_pct: u32,
    history: History,
    issued_at: SimTime,
}

impl Workload<Counters> for Recorder {
    fn next_command(&mut self, now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.issued_at = now;
        let a = rng.gen_range(0..self.vars);
        let mut vars = vec![VarId(a)];
        if rng.gen_range(0..100u32) < self.multi_pct {
            let b = rng.gen_range(0..self.vars);
            if b != a {
                vars.push(VarId(b));
            }
        }
        Some(CommandKind::Access { op: 1, vars })
    }

    fn on_completed(
        &mut self,
        now: SimTime,
        cmd: &Command<Counters>,
        reply: Option<&Vec<(VarId, i64)>>,
    ) {
        let Some(reply) = reply else { return };
        let CommandKind::Access { vars, .. } = &cmd.kind else { return };
        self.history.lock().unwrap().push(OpRecord {
            invoke: self.issued_at,
            response: now,
            op: vars.iter().map(|v| v.0).collect(),
            ret: reply.iter().map(|&(v, n)| (v.0, n)).collect(),
        });
    }
}

const VARS: u64 = 6;

/// `service_ms` sets the modelled per-command CPU time — the knob that
/// stretches a bounded op count (the checker caps at 64) across the fault
/// windows, so commands are genuinely in flight when faults land.
fn build_cluster(
    seed: u64,
    repartition: bool,
    service_ms: u64,
) -> dynastar_core::Cluster<Counters> {
    build_cluster_batched(seed, repartition, service_ms, BatchConfig::UNBATCHED)
}

fn build_cluster_batched(
    seed: u64,
    repartition: bool,
    service_ms: u64,
    batch: BatchConfig,
) -> dynastar_core::Cluster<Counters> {
    let config = ClusterConfig {
        batch,
        partitions: 2,
        replicas: 3,
        mode: Mode::Dynastar,
        seed,
        repartition_threshold: if repartition { 20 } else { u64::MAX },
        min_plan_interval: SimDuration::from_secs(1),
        server: dynastar_core::server::ServerConfig { hint_batch: 4, ..Default::default() },
        exec: dynastar_core::ExecConfig::serial(SimDuration::from_millis(service_ms)),
        warm_client_caches: true,
        client_timeout: SimDuration::from_secs(3),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..VARS {
        b.place(LocKey(v), PartitionId((v % 2) as u32));
        b.with_var(VarId(v), 0);
    }
    b.build()
}

fn add_recorders(
    cluster: &mut dynastar_core::Cluster<Counters>,
    clients: usize,
    cmds_per_client: u32,
    multi_pct: u32,
) -> History {
    let history: History = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..clients {
        cluster.add_client(Recorder {
            vars: VARS,
            remaining: cmds_per_client,
            multi_pct,
            history: Arc::clone(&history),
            issued_at: SimTime::ZERO,
        });
    }
    history
}

/// A crashed replica restarts, rebuilds from a quorum of peer snapshots,
/// and the cluster keeps serving a linearizable history throughout.
#[test]
fn restarted_replica_rejoins_via_peer_snapshots() {
    let mut cluster = build_cluster(71, false, 50);
    // 60 ops at ~50 ms modelled service each: traffic spans the
    // crash/restart window.
    let history = add_recorders(&mut cluster, 3, 20, 40);
    // Node 0 = partition 0, replica 0: its group's initial leader.
    let victim = NodeId::from_raw(0);
    cluster.sim.schedule_crash(SimTime::from_millis(200), victim);
    cluster.sim.schedule_restart(SimTime::from_millis(900), victim);
    cluster.run_for(SimDuration::from_secs(120));

    assert_eq!(cluster.sim.incarnation(victim), 1);
    let m = cluster.metrics();
    assert!(
        m.counter(metric_names::RECOVERY_COMPLETIONS) >= 1,
        "restarted replica never completed recovery"
    );
    // A quorum (2 of its 2 peers) donated snapshots.
    assert!(m.counter(metric_names::RECOVERY_SNAPSHOTS) >= 2);
    // Streams to/from the restarted incarnation were resynchronized.
    assert!(m.counter(metric_names::NET_STREAM_RESETS) > 0);

    let recorded = history.lock().unwrap().clone();
    assert_eq!(recorded.len(), 3 * 20, "not all commands completed");
    assert!(check::<CounterSpec>(&recorded, BTreeMap::new()), "history not linearizable");
}

/// Replicas disconnected across a repartitioning rejoin cleanly and the
/// history stays linearizable (migration tolerates a faulty minority).
#[test]
fn disconnect_during_migration_is_linearizable() {
    for seed in [81u64, 82] {
        let mut cluster = build_cluster(seed, true, 20);
        // Enough multi-partition traffic to cross the repartition
        // threshold of 20 graph changes.
        let history = add_recorders(&mut cluster, 3, 20, 50);
        // One partition replica and one oracle replica drop out across the
        // window where the low threshold forces repartitioning plans.
        let part_victim = NodeId::from_raw(1); // partition 0, replica 1
        let oracle_victim = cluster.groups().last().unwrap()[2];
        cluster.sim.schedule_disconnect(SimTime::from_millis(600), part_victim);
        cluster.sim.schedule_reconnect(SimTime::from_secs(6), part_victim);
        cluster.sim.schedule_disconnect(SimTime::from_secs(2), oracle_victim);
        cluster.sim.schedule_reconnect(SimTime::from_secs(8), oracle_victim);
        cluster.run_for(SimDuration::from_secs(120));

        let m = cluster.metrics();
        assert!(m.counter(metric_names::PLANS_PUBLISHED) >= 1, "no repartitioning happened");
        let recorded = history.lock().unwrap().clone();
        assert_eq!(recorded.len(), 3 * 20, "not all commands completed (seed {seed})");
        assert!(check::<CounterSpec>(&recorded, BTreeMap::new()), "seed {seed} not linearizable");
    }
}

/// A disconnection longer than the transport's retransmission give-up
/// (30 s) abandons frames; the explicit jump announcement heals the
/// stream when the peer returns instead of stalling it forever, and the
/// loss is visible in the abandonment counter.
#[test]
fn long_disconnect_heals_with_explicit_stream_gap() {
    let mut cluster = build_cluster(91, false, 0);
    // Ops spread over the run so traffic exists both before and after the
    // outage window.
    let history = add_recorders(&mut cluster, 2, 10, 30);
    let victim = NodeId::from_raw(4); // partition 1, replica 1
    cluster.sim.schedule_disconnect(SimTime::from_secs(2), victim);
    cluster.sim.schedule_reconnect(SimTime::from_secs(40), victim);
    cluster.run_for(SimDuration::from_secs(150));

    let m = cluster.metrics();
    assert!(
        m.counter(metric_names::NET_FRAMES_ABANDONED) > 0,
        "a 38s outage must outlive the 30s retransmission give-up"
    );
    let recorded = history.lock().unwrap().clone();
    assert_eq!(recorded.len(), 2 * 10, "not all commands completed");
    assert!(check::<CounterSpec>(&recorded, BTreeMap::new()), "history not linearizable");
}

/// One full nemesis run: seeded random crashes/restarts and
/// disconnects/reconnects (at most one faulty replica per group at a
/// time). Returns the recorded history plus the counters the assertions
/// need.
fn nemesis_run(cluster_seed: u64, nemesis_seed: u64) -> (Records, u64, u64) {
    nemesis_run_batched(cluster_seed, nemesis_seed, BatchConfig::UNBATCHED)
}

fn nemesis_run_batched(
    cluster_seed: u64,
    nemesis_seed: u64,
    batch: BatchConfig,
) -> (Records, u64, u64) {
    // ~400 ms modelled service keeps 63 ops (just under the checker's
    // 64-op cap) in flight deep into the 2–30 s fault window.
    let mut cluster = build_cluster_batched(cluster_seed, false, 400, batch);
    let history = add_recorders(&mut cluster, 3, 21, 40);
    let cfg = NemesisConfig {
        seed: nemesis_seed,
        start: SimTime::from_secs(2),
        end: SimTime::from_secs(30),
        mean_interval: SimDuration::from_secs(6),
        min_downtime: SimDuration::from_millis(400),
        max_downtime: SimDuration::from_secs(3),
        grace: SimDuration::from_secs(3),
        crash_pct: 50,
        ..NemesisConfig::default()
    };
    let plan = NemesisPlan::generate(&cfg, cluster.groups());
    assert!(plan.crash_count() >= 1, "schedule exercises no restarts");
    assert!(plan.disconnect_count() >= 1, "schedule exercises no disconnects");
    plan.apply(&mut cluster.sim);
    cluster.sim.metrics_mut().incr_counter(metric_names::FAULT_CRASHES, plan.crash_count());
    cluster.sim.metrics_mut().incr_counter(metric_names::FAULT_RESTARTS, plan.crash_count());
    cluster
        .sim
        .metrics_mut()
        .incr_counter(metric_names::FAULT_DISCONNECTS, plan.disconnect_count());
    cluster.sim.metrics_mut().incr_counter(metric_names::FAULT_RECONNECTS, plan.disconnect_count());
    cluster.run_for(SimDuration::from_secs(150));

    let recoveries = cluster.metrics().counter(metric_names::RECOVERY_COMPLETIONS);
    let crashes = plan.crash_count();
    let recorded = history.lock().unwrap().clone();
    (recorded, recoveries, crashes)
}

/// The tentpole acceptance check: under a full randomized fault schedule
/// every client op completes, the history is linearizable, every crashed
/// replica recovered via snapshots, and the whole run is deterministic —
/// two runs from the same seeds produce identical histories.
#[test]
fn randomized_nemesis_run_is_linearizable_and_deterministic() {
    let (h1, recoveries, crashes) = nemesis_run(7, 7);
    assert_eq!(h1.len(), 3 * 21, "not all commands completed under faults");
    assert!(check::<CounterSpec>(&h1, BTreeMap::new()), "nemesis history not linearizable");
    assert!(
        recoveries >= crashes,
        "every crash must recover via snapshot install ({recoveries} recoveries, {crashes} crashes)"
    );

    let (h2, recoveries2, _) = nemesis_run(7, 7);
    assert_eq!(recoveries, recoveries2, "recovery count differs between same-seed runs");
    let key = |h: &Records| {
        h.iter().map(|r| (r.invoke, r.response, r.op.clone(), r.ret.clone())).collect::<Vec<_>>()
    };
    assert_eq!(key(&h1), key(&h2), "same-seed nemesis runs diverged");
}

/// The batched ordering pipeline under the same randomized fault schedule:
/// batches flush, leaders change mid-batch, buffered commands are
/// forwarded — and the histories stay exactly as linearizable and
/// seed-deterministic as the unbatched pipeline's (the unbatched
/// configuration is covered by
/// [`randomized_nemesis_run_is_linearizable_and_deterministic`]).
#[test]
fn batched_nemesis_run_is_linearizable_and_deterministic() {
    let batch = BatchConfig { max_batch: 8, max_batch_delay_ticks: 2, window: 2 };
    let (h1, recoveries, crashes) = nemesis_run_batched(7, 7, batch);
    assert_eq!(h1.len(), 3 * 21, "not all commands completed under faults (batched)");
    assert!(check::<CounterSpec>(&h1, BTreeMap::new()), "batched nemesis history not linearizable");
    assert!(
        recoveries >= crashes,
        "every crash must recover via snapshot install ({recoveries} recoveries, {crashes} crashes)"
    );

    let (h2, recoveries2, _) = nemesis_run_batched(7, 7, batch);
    assert_eq!(recoveries, recoveries2, "recovery count differs between same-seed batched runs");
    let key = |h: &Records| {
        h.iter().map(|r| (r.invoke, r.response, r.op.clone(), r.ret.clone())).collect::<Vec<_>>()
    };
    assert_eq!(key(&h1), key(&h2), "same-seed batched nemesis runs diverged");
}

/// A synchronized crash wave plus a degraded link, landing while the low
/// repartition threshold keeps staged migrations in flight: every wave
/// crash rebuilds from peer snapshots, all commands complete, and the
/// history stays linearizable — recovery converges even when the faults
/// overlap chunked state transfer.
#[test]
fn crash_wave_mid_migration_converges() {
    let config = ClusterConfig {
        partitions: 2,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: 17,
        repartition_threshold: 20,
        min_plan_interval: SimDuration::from_secs(1),
        server: dynastar_core::server::ServerConfig {
            hint_batch: 4,
            staged_migration: true,
            migration_chunk_vars: 2,
            migration_var_bytes: 8 * 1024,
            migration_link_bytes_per_sec: 1024 * 1024,
            migration_chunk_timeout: SimDuration::from_millis(100),
            migration_max_retries: 6,
            ..Default::default()
        },
        exec: dynastar_core::ExecConfig::serial(SimDuration::from_millis(100)),
        warm_client_caches: true,
        client_timeout: SimDuration::from_secs(3),
        client_retry_backoff: SimDuration::from_millis(2),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..VARS {
        b.place(LocKey(v), PartitionId((v % 2) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    // 60 multi-heavy ops at ~100 ms modelled service each: traffic (and
    // the migrations it triggers) spans the wave window.
    let history = add_recorders(&mut cluster, 3, 20, 50);
    let cfg = NemesisConfig {
        seed: 5,
        start: SimTime::from_secs(2),
        end: SimTime::from_secs(14),
        // A quiet random schedule: the synchronized wave and the degraded
        // link are the whole event.
        mean_interval: SimDuration::from_secs(3600),
        crash_waves: 1,
        wave_downtime: SimDuration::from_secs(2),
        link_faults: 1,
        link_extra_delay: SimDuration::from_millis(5),
        link_loss_pm: 100_000,
        ..NemesisConfig::default()
    };
    let plan = NemesisPlan::generate(&cfg, cluster.groups());
    let wave_crashes = plan.crash_count();
    assert_eq!(wave_crashes, 3, "one wave must crash a replica in every group");
    plan.apply(&mut cluster.sim);
    cluster.run_for(SimDuration::from_secs(120));

    let m = cluster.metrics();
    assert!(m.counter(metric_names::PLANS_PUBLISHED) >= 1, "no repartitioning happened");
    assert!(
        m.counter(metric_names::RECOVERY_COMPLETIONS) >= wave_crashes,
        "every wave crash must recover via peer snapshots ({} recoveries, {} crashes)",
        m.counter(metric_names::RECOVERY_COMPLETIONS),
        wave_crashes
    );
    let recorded = history.lock().unwrap().clone();
    assert_eq!(recorded.len(), 3 * 20, "not all commands completed");
    assert!(check::<CounterSpec>(&recorded, BTreeMap::new()), "history not linearizable");
}

/// Fixed seed, no faults: every batch size yields a complete linearizable
/// history and two runs of the same configuration are identical — batching
/// changes scheduling, never determinism or safety.
#[test]
fn fault_free_histories_deterministic_across_batch_sizes() {
    let run = |batch: BatchConfig| {
        let mut cluster = build_cluster_batched(11, false, 20, batch);
        let history = add_recorders(&mut cluster, 3, 15, 40);
        cluster.run_for(SimDuration::from_secs(60));
        let recorded = history.lock().unwrap().clone();
        recorded
    };
    for batch in
        [BatchConfig::UNBATCHED, BatchConfig { max_batch: 8, max_batch_delay_ticks: 2, window: 1 }]
    {
        let h1 = run(batch);
        assert_eq!(h1.len(), 3 * 15, "not all commands completed (max_batch {})", batch.max_batch);
        assert!(
            check::<CounterSpec>(&h1, BTreeMap::new()),
            "history not linearizable (max_batch {})",
            batch.max_batch
        );
        let h2 = run(batch);
        let key = |h: &Records| {
            h.iter()
                .map(|r| (r.invoke, r.response, r.op.clone(), r.ret.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&h1), key(&h2), "same-seed runs diverged (max_batch {})", batch.max_batch);
    }
}
